"""Figure 6 — response time vs. write rate (Section 4.1).

Panel (a): per-protocol read/write/overall response time at the paper's
target 5 % write ratio (the TPC-W profile-object update rate), full
access locality.

Panel (b): sensitivity of the overall response time to the write ratio.

Expected shape (the paper's findings):

* DQVL's read time is within a small factor of ROWA / ROWA-Async
  (local reads) and **at least 6x better** than primary/backup and
  majority quorum;
* as writes dominate, DQVL's overall response time approaches the
  majority quorum's (both pay two client-WAN rounds per write) and
  exceeds primary/backup and ROWA (one round each).
"""

import dataclasses

import pytest

from repro.harness import ExperimentConfig, format_series, format_table, run_sweep
from repro.harness.experiment import run_response_time
from repro.obs import format_budget

PROTOCOLS = ["dqvl", "majority", "primary_backup", "rowa", "rowa_async"]
OPS = 150
WARMUP = 10
SEED = 2005


def _config(protocol: str, write_ratio: float, locality: float = 1.0):
    return ExperimentConfig(
        protocol=protocol,
        write_ratio=write_ratio,
        locality=locality,
        ops_per_client=OPS,
        warmup_ops=WARMUP,
        seed=SEED,
    )


def test_fig6a_write_rate_5pct(benchmark, emit):
    """Figure 6(a): response times at the 5 % write rate."""

    def experiment():
        points = run_sweep([_config(p, 0.05) for p in PROTOCOLS])
        return dict(zip(PROTOCOLS, points))

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for name, res in results.items():
        s = res.summary
        rows.append(
            [name, s.overall.mean, s.reads.mean, s.writes.mean,
             s.read_hit_rate if s.read_hit_rate is not None else "-"]
        )
    emit(
        "fig6a_response_time_w005",
        format_table(
            ["protocol", "overall ms", "read ms", "write ms", "hit rate"],
            rows,
            title="Fig 6(a): response time at write ratio 0.05, locality 1.0",
        ),
    )

    dqvl = results["dqvl"].summary
    majority = results["majority"].summary
    pb = results["primary_backup"].summary
    rowa = results["rowa"].summary
    rowa_async = results["rowa_async"].summary

    # The paper's headline: >= 6x read improvement over the strong
    # baselines.  DQVL's read distribution is bimodal (LAN hits, rare
    # renewal misses), so the common-case comparison uses the median;
    # the mean still shows a large factor.
    assert majority.reads.median >= 6.0 * dqvl.reads.median
    assert pb.reads.median >= 6.0 * dqvl.reads.median
    assert majority.reads.mean >= 4.0 * dqvl.reads.mean
    assert pb.reads.mean >= 3.0 * dqvl.reads.mean
    # ... and read time comparable to the ROWA family.
    assert dqvl.reads.mean <= 2.0 * rowa.reads.mean
    assert dqvl.reads.mean <= 2.0 * rowa_async.reads.mean
    # Overall at 5% writes: DQVL beats the strong baselines.
    assert dqvl.overall.mean < majority.overall.mean
    assert dqvl.overall.mean < pb.overall.mean


def test_fig6b_write_rate_sweep(benchmark, emit):
    """Figure 6(b): overall response time vs. write ratio."""
    ratios = [0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]

    def experiment():
        points = iter(run_sweep(
            [_config(p, w) for p in PROTOCOLS for w in ratios]
        ))
        return {
            p: [next(points).summary.overall.mean for _ in ratios]
            for p in PROTOCOLS
        }

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "fig6b_write_rate_sweep",
        format_series(
            "write_ratio",
            ratios,
            [(p, table[p]) for p in PROTOCOLS],
            title="Fig 6(b): overall response time (ms) vs write ratio",
        ),
    )

    dqvl, majority = table["dqvl"], table["majority"]
    pb, rowa = table["primary_backup"], table["rowa"]
    # Read-dominated end: DQVL far below majority and primary/backup.
    assert dqvl[0] < majority[0] / 4
    assert dqvl[0] < pb[0] / 4
    # Write-dominated end: DQVL approaches majority (same two-round
    # write path) and exceeds primary/backup and ROWA (one round each).
    assert dqvl[-1] == pytest.approx(majority[-1], rel=0.15)
    assert dqvl[-1] > pb[-1]
    assert dqvl[-1] > rowa[-1]
    # DQVL response time trends upward with the write ratio.  Small dips
    # are legitimate: at high write ratios consecutive writes suppress
    # invalidations, cutting the per-write cost from three rounds to two.
    assert dqvl[0] < dqvl[-1]
    assert all(a <= b + 40.0 for a, b in zip(dqvl, dqvl[1:]))


def test_fig6_phase_budget(emit):
    """Latency budget decomposition of the Fig 6(a) scenario.

    The paper's local-read story as a measured decomposition: DQVL
    local-hit reads carry ~zero quorum straggler wait (one LAN round
    trip, no stragglers), while writes and renewal misses pay the
    quorum cost.  Traced runs bypass the sweep cache — the span tracer
    does not survive the result-reduction boundary.
    """
    budgets = {}
    for protocol in ("dqvl", "majority"):
        config = dataclasses.replace(_config(protocol, 0.05), trace=True)
        result = run_response_time(config)
        assert result.obs is not None
        budgets[protocol] = result.obs.latency_budget()

    emit(
        "fig6_phase_budget",
        "".join(
            format_budget(
                budgets[p],
                title=f"Fig 6 latency budget — {p} (write ratio 0.05)",
            )
            for p in budgets
        ),
    )

    dqvl = budgets["dqvl"].groups
    hits = dqvl["read[hit]"]
    writes = dqvl["write"]
    # Local hits: pure network, no straggler wait, no lease detour.
    assert hits["quorum_wait"].mean < 1.0
    assert hits["lease"].mean < 1.0
    # Writes pay the quorum cost (two IQS rounds + invalidation waits).
    assert writes["quorum_wait"].mean > 10.0 * max(hits["quorum_wait"].mean, 0.1)
    # Renewal misses, when present, carry the lease detour.
    misses = dqvl.get("read[miss]")
    if misses is not None and misses["total"].count:
        assert misses["lease"].mean + misses["quorum_wait"].mean > 1.0
    # Conservation holds group by group: phase means sum to the total mean.
    for group, phases in dqvl.items():
        phase_sum = sum(
            h.mean for name, h in phases.items() if name != "total"
        )
        assert phase_sum == pytest.approx(phases["total"].mean, abs=1e-6), group
