"""Figure 7 — response time vs. access locality (Section 4.1).

Panel (a): per-protocol response time at 5 % writes and 90 % access
locality (10 % of requests served by a distant replica — the paper's
pessimistic bound for edge services).

Panel (b): overall response time as locality sweeps 0 → 1.

Expected shape:

* DQVL outperforms primary/backup and majority at 90 % locality while
  keeping the same consistency guarantees;
* DQVL's response time improves monotonically with locality; majority
  and primary/backup are flat (they cannot exploit locality);
* ROWA-Async is the floor (optimal response time, weak consistency);
* the DQVL-vs-strong-baseline crossover sits around 70 % locality,
  matching the paper's deployment guidance.
"""

import dataclasses

import pytest

from repro.harness import ExperimentConfig, format_series, format_table, run_sweep
from repro.harness.experiment import run_response_time
from repro.obs import format_budget

PROTOCOLS = ["dqvl", "majority", "primary_backup", "rowa", "rowa_async"]
OPS = 150
WARMUP = 10
SEED = 77


def _config(protocol: str, locality: float, write_ratio: float = 0.05):
    return ExperimentConfig(
        protocol=protocol,
        write_ratio=write_ratio,
        locality=locality,
        ops_per_client=OPS,
        warmup_ops=WARMUP,
        seed=SEED,
    )


def test_fig7a_locality_90pct(benchmark, emit):
    """Figure 7(a): response time at 5 % writes, 90 % locality."""

    def experiment():
        points = run_sweep([_config(p, locality=0.9) for p in PROTOCOLS])
        return dict(zip(PROTOCOLS, points))

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name, res in results.items():
        s = res.summary
        rows.append([name, s.overall.mean, s.reads.mean, s.writes.mean])
    emit(
        "fig7a_locality_090",
        format_table(
            ["protocol", "overall ms", "read ms", "write ms"],
            rows,
            title="Fig 7(a): response time at write ratio 0.05, locality 0.9",
        ),
    )

    overall = {p: results[p].summary.overall.mean for p in PROTOCOLS}
    # DQVL still beats both strong baselines at 90% locality...
    assert overall["dqvl"] < overall["majority"]
    assert overall["dqvl"] < overall["primary_backup"]
    # ...and ROWA-Async remains the (weakly consistent) floor.
    assert overall["rowa_async"] <= min(overall.values()) + 1.0


def test_fig7b_locality_sweep(benchmark, emit):
    """Figure 7(b): overall response time vs. access locality."""
    localities = [0.0, 0.25, 0.5, 0.7, 0.9, 1.0]

    def experiment():
        points = iter(run_sweep(
            [_config(p, locality=l) for p in PROTOCOLS for l in localities]
        ))
        return {
            p: [next(points).summary.overall.mean for _ in localities]
            for p in PROTOCOLS
        }

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "fig7b_locality_sweep",
        format_series(
            "locality",
            localities,
            [(p, table[p]) for p in PROTOCOLS],
            title="Fig 7(b): overall response time (ms) vs access locality, w=0.05",
        ),
    )

    dqvl = table["dqvl"]
    majority = table["majority"]
    pb = table["primary_backup"]

    # DQVL improves monotonically with locality (modulo sim noise).
    assert dqvl[0] > dqvl[-1]
    assert all(a >= b - 12.0 for a, b in zip(dqvl, dqvl[1:]))
    # Majority and primary/backup are locality-insensitive (flat).
    assert max(majority) - min(majority) < 0.15 * max(majority)
    assert max(pb) - min(pb) < 0.15 * max(pb)
    # The paper's guidance: at >= 70% locality DQVL is preferable to
    # the strong baselines; at 0% it is not.
    assert dqvl[3] < majority[3] and dqvl[3] <= pb[3] * 1.05  # locality 0.7
    assert dqvl[0] > pb[0]  # locality 0.0: DQVL loses


def test_fig7_phase_budget_90pct(emit):
    """Latency budget at 90 % locality: where the remote 10 % goes.

    Remote reads miss the local OQS lease and pay the renewal detour;
    the budget table makes that visible as lease + quorum-wait mass in
    the read[miss] row while read[hit] stays pure LAN network time.
    """
    config = dataclasses.replace(_config("dqvl", locality=0.9), trace=True)
    result = run_response_time(config)
    assert result.obs is not None
    budget = result.obs.latency_budget()
    emit(
        "fig7_phase_budget_l090",
        format_budget(
            budget,
            title="Fig 7 latency budget — dqvl (locality 0.9, write ratio 0.05)",
        ),
    )

    groups = budget.groups
    hits = groups["read[hit]"]
    # Hits never pay a renewal or straggler wait, even at 90% locality.
    assert hits["quorum_wait"].mean < 1.0
    assert hits["lease"].mean < 1.0
    # At 90% locality misses exist and their latency is dominated by the
    # lease renewal detour plus the quorum wait it entails.
    misses = groups["read[miss]"]
    assert misses["total"].count > 0
    detour = misses["lease"].mean + misses["quorum_wait"].mean
    assert detour > 0.5 * misses["total"].mean
