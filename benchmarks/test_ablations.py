"""Ablation benchmarks — the design choices DESIGN.md calls out.

A1  volume-lease length vs. write latency when an OQS replica is
    unreachable (the lease is the write's escape hatch);
A2  objects-per-volume amortisation of lease renewals;
A3  OQS read-quorum size > 1 (the paper's future-work configuration);
A4  grid-quorum IQS vs. majority IQS (future work: reduce system load);
A5  read/write burst length vs. hit and suppression rates (the locality
    assumption that makes DQVL's common case cheap).
"""

import warnings

import pytest

from repro.analysis import (
    grid_messages_per_request,
    majority_messages_per_request,
)
from repro.consistency import History
from repro.core import DqvlConfig, build_dqvl_cluster
from repro.core.volumes import HashVolumeMap
from repro.harness import ExperimentConfig, format_series, format_table, run_sweep
from repro.quorum import GridQuorumSystem, MajorityQuorumSystem
from repro.sim import ConstantDelay, Network, Simulator
from repro.workload import BernoulliOpStream, UniformKeyChooser, closed_loop


def _small_cluster(lease_ms, seed=0, n=3, oqs_system=None, iqs_system=None,
                   volume_map=None):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(10.0))
    kwargs = dict(
        lease_length_ms=lease_ms,
        inval_initial_timeout_ms=100.0,
        qrpc_initial_timeout_ms=100.0,
    )
    if volume_map is not None:
        kwargs["volume_map"] = volume_map
    config = DqvlConfig(**kwargs)
    cluster = build_dqvl_cluster(
        sim, net,
        [f"iqs{i}" for i in range(n)],
        [f"oqs{i}" for i in range(n)],
        config,
        oqs_system=oqs_system,
        iqs_system=iqs_system,
    )
    return sim, net, cluster


def test_a1_lease_length_vs_write_latency(benchmark, emit):
    """A1: the volume lease bounds how long an unreachable OQS replica
    can block a write — latency scales with the lease, not with the
    outage."""
    lease_lengths = [250.0, 500.0, 1000.0, 2000.0, 4000.0]

    def experiment():
        latencies = []
        for lease in lease_lengths:
            sim, net, cluster = _small_cluster(lease)
            client = cluster.client("c0", prefer_oqs="oqs0")

            def scenario():
                yield from client.write("x", "v0")
                yield from client.read("x")  # oqs0 takes leases
                cluster.oqs_node("oqs0").crash()
                w = yield from client.write("x", "v1")
                return w.latency

            latencies.append(sim.run_process(scenario(), until=600_000.0))
        return latencies

    latencies = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a1_lease_vs_write_latency",
        format_series(
            "lease_ms", lease_lengths, [("write_latency_ms", latencies)],
            title="A1: write latency with an unreachable lease holder",
        ),
    )
    # Write latency tracks the lease length (within protocol rounds)...
    for lease, latency in zip(lease_lengths, latencies):
        assert latency <= lease + 600.0
    # ...and grows with it.
    assert latencies[0] < latencies[-1]


def test_a2_volume_size_amortisation(benchmark, emit):
    """A2: grouping objects into fewer volumes amortises volume-lease
    renewals across the working set."""
    num_objects = 32
    volume_counts = [1, 4, 16, 32]

    def experiment():
        rows = []
        for volumes in volume_counts:
            sim, net, cluster = _small_cluster(
                lease_ms=2_000.0, volume_map=HashVolumeMap(volumes)
            )
            client = cluster.client("c0", prefer_oqs="oqs0")
            keys = [f"obj{i}" for i in range(num_objects)]
            history = History()
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(keys), write_ratio=0.02
            )

            def scenario():
                # touch every object once to populate
                for key in keys:
                    yield from client.write(key, "init")
                net.reset_counters()
                yield from closed_loop(sim, client, stream, history, num_ops=400)

            sim.run_process(scenario(), until=3_600_000.0)
            renewals = (
                net.stats.by_kind["vl_renew"] + net.stats.by_kind["vlobj_renew"]
            )
            rows.append(renewals / max(len(history), 1))
        return rows

    renewal_rates = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a2_volume_amortisation",
        format_series(
            "num_volumes", volume_counts,
            [("volume_renewals_per_op", renewal_rates)],
            title="A2: volume-lease renewals per operation vs volume count",
        ),
    )
    # Renewal traffic grows with the number of volumes.
    assert renewal_rates[0] <= renewal_rates[-1]
    assert renewal_rates[-1] > 0


def test_a3_oqs_read_quorum_size(benchmark, emit):
    """A3 (future work): OQS read quorums larger than one trade read
    latency for invalidation tolerance — with orq = 2, a write can
    invalidate without waiting for a crashed replica's lease."""

    def experiment():
        rows = []
        for orq in (1, 2):
            n = 3
            oqs_ids = [f"oqs{i}" for i in range(n)]
            if orq == 1:
                oqs_system = None  # default read-one/write-all
            else:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    oqs_system = MajorityQuorumSystem(
                        oqs_ids, read_size=orq, write_size=n - orq + 1
                    )
            sim, net, cluster = _small_cluster(
                lease_ms=5_000.0, oqs_system=oqs_system
            )
            client = cluster.client("c0", prefer_oqs="oqs0")

            def scenario():
                yield from client.write("x", "v0")
                r1 = yield from client.read("x")
                r2 = yield from client.read("x")
                # a lease-holding OQS replica becomes unreachable: with
                # orq = 1 the write must wait out its volume lease; with
                # orq = 2 (owq = 2) it can invalidate the other two.
                cluster.oqs_node("oqs0").crash()
                w = yield from client.write("x", "v1")
                return (r2.latency, w.latency)

            read_lat, write_lat = sim.run_process(scenario(), until=600_000.0)
            rows.append([orq, read_lat, write_lat])
        return rows

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a3_oqs_read_quorum",
        format_table(
            ["orq", "read hit ms", "write ms (1 OQS node down)"],
            rows,
            title="A3: OQS read-quorum size trade-off",
        ),
    )
    (orq1_read, orq1_write) = rows[0][1], rows[0][2]
    (orq2_read, orq2_write) = rows[1][1], rows[1][2]
    # Larger read quorums cost read latency...
    assert orq2_read >= orq1_read
    # ...but let writes dodge the lease wait when a replica is down.
    assert orq2_write < orq1_write


def test_a4_grid_iqs(benchmark, emit):
    """A4 (future work): a grid-quorum IQS lowers per-write quorum sizes
    (message load) at an availability cost, vs. the majority IQS."""

    def experiment():
        n = 9
        iqs_ids = [f"iqs{i}" for i in range(n)]
        rows = []
        for name in ("majority", "grid"):
            system = (
                GridQuorumSystem(iqs_ids, rows=3, cols=3)
                if name == "grid"
                else MajorityQuorumSystem(iqs_ids)
            )
            sim, net, cluster = _small_cluster(lease_ms=5_000.0, n=9, iqs_system=system)
            client = cluster.client("c0", prefer_oqs="oqs0")
            history = History()
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(["x"]), write_ratio=0.5
            )

            def scenario():
                yield from closed_loop(sim, client, stream, history, num_ops=100)

            sim.run_process(scenario(), until=3_600_000.0)
            msgs = net.stats.total_messages / len(history)
            avail = 1 - system.write_availability(0.01)
            rows.append([name, system.read_quorum_size, system.write_quorum_size,
                         round(msgs, 2), avail])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a4_grid_iqs",
        format_table(
            ["iqs", "rq", "wq", "msgs/op (sim)", "write unavailability"],
            rows,
            title="A4: grid vs majority IQS at n=9, w=0.5",
        ),
    )
    majority_row, grid_row = rows
    # Grid read quorums are smaller (3 vs 5): fewer messages per op.
    assert grid_row[1] < majority_row[1]
    assert grid_row[3] < majority_row[3]
    # The price: worse write availability.
    assert grid_row[4] > majority_row[4]


def test_a6_atomic_semantics_cost(benchmark, emit):
    """A6 (paper's future work, Section 6): what does upgrading DQVL
    from regular to atomic semantics cost?  Atomic reads add an
    ABD-style write-back of the selected value to an IQS write quorum."""
    from repro.core import DqvlAtomicClient

    def experiment():
        rows = []
        for semantics in ("regular", "atomic"):
            sim, net, cluster = _small_cluster(lease_ms=5_000.0)
            if semantics == "atomic":
                client = DqvlAtomicClient(
                    sim, net, "c0", cluster.iqs_system, cluster.oqs_system,
                    cluster.config, prefer_oqs="oqs0",
                )
            else:
                client = cluster.client("c0", prefer_oqs="oqs0")
            history = History()
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(["x"]), write_ratio=0.05
            )

            def scenario():
                yield from client.write("x", "init")
                net.reset_counters()
                yield from closed_loop(sim, client, stream, history, num_ops=200)

            sim.run_process(scenario(), until=3_600_000.0)
            from repro.harness import summarize

            s = summarize(history)
            msgs = net.stats.total_messages / len(history)
            rows.append(
                [semantics, round(s.reads.mean, 1), round(s.writes.mean, 1),
                 round(msgs, 2)]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a6_atomic_cost",
        format_table(
            ["semantics", "read ms", "write ms", "msgs/op"],
            rows,
            title="A6: regular vs atomic DQVL (w=0.05, 3+3 nodes, 10 ms links)",
        ),
    )
    regular, atomic = rows
    # Atomic reads pay roughly one extra quorum round...
    assert atomic[1] > regular[1] + 15.0
    # ...and more messages; writes are unchanged.
    assert atomic[3] > regular[3]
    assert atomic[2] == pytest.approx(regular[2], rel=0.3)


def test_a8_bytes_vs_messages(benchmark, emit):
    """A8: byte-weighted traffic.  Figure 9 counts messages with equal
    weight; the paper's related-work argument, though, is that
    invalidations carry no data.  With realistic sizes (1 KiB values,
    64 B control messages) DQVL's wire cost drops below ROWA's at the
    interleaved 50 % write ratio despite sending MORE messages."""
    from repro.analysis import EdgeServiceSizeModel
    from repro.core import build_dqvl_cluster
    from repro.protocols import build_rowa_async_cluster, build_rowa_cluster

    def run_one(kind: str, write_ratio: float):
        sim = Simulator(seed=33)
        net = Network(
            sim, ConstantDelay(10.0), size_model=EdgeServiceSizeModel()
        )
        n = 9
        clients = []
        if kind == "dqvl":
            config = DqvlConfig(
                lease_length_ms=30_000.0,
                inval_initial_timeout_ms=100.0,
                qrpc_initial_timeout_ms=100.0,
            )
            cluster = build_dqvl_cluster(
                sim, net,
                [f"iqs{i}" for i in range(n)], [f"oqs{i}" for i in range(n)],
                config,
            )
            clients = [
                cluster.client(f"c{k}", prefer_oqs=f"oqs{k}") for k in range(3)
            ]
        elif kind == "rowa":
            cluster = build_rowa_cluster(sim, net, [f"s{i}" for i in range(n)])
            clients = [cluster.client(f"c{k}", prefer=f"s{k}") for k in range(3)]
        else:
            cluster = build_rowa_async_cluster(
                sim, net, [f"s{i}" for i in range(n)], gossip_interval_ms=0.0
            )
            clients = [cluster.client(f"c{k}", prefer=f"s{k}") for k in range(3)]

        history = History()
        procs = []
        for k, client in enumerate(clients):
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser([f"obj{k}"]), write_ratio,
                label=f"c{k}-",
            )
            procs.append(
                sim.spawn(closed_loop(sim, client, stream, history, 120))
            )
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        ops = len(history)
        return (
            net.stats.total_messages / ops,
            net.stats.total_bytes / ops / 1024.0,
        )

    def experiment():
        rows = []
        for kind in ("dqvl", "rowa", "rowa_async"):
            for w in (0.05, 0.5):
                msgs, kib = run_one(kind, w)
                rows.append([kind, w, round(msgs, 2), round(kib, 2)])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a8_bytes_vs_messages",
        format_table(
            ["protocol", "write_ratio", "msgs/op", "KiB/op"],
            rows,
            title="A8: byte-weighted traffic (1 KiB values, 64 B control)",
        ),
    )
    table = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    # At w=0.5: ROWA ships the value to all 9 replicas; DQVL ships it to
    # the 5-member IQS write quorum and sends tiny invalidations — fewer
    # bytes even if more messages.
    dq_msgs, dq_kib = table[("dqvl", 0.5)]
    rowa_msgs, rowa_kib = table[("rowa", 0.5)]
    assert dq_kib < rowa_kib
    # the epidemic baseline also ships values everywhere
    _, ra_kib = table[("rowa_async", 0.5)]
    assert dq_kib < ra_kib


def test_a7_object_lease_modes(benchmark, emit):
    """A7 (footnote 4 / the paper's [9]): infinite callbacks vs fixed
    finite object leases vs adaptive lengths — the state/traffic
    trade-off on a mixed read-hot/write-hot workload."""

    def experiment():
        rows = []
        modes = [
            ("infinite", {}),
            ("fixed-1s", {"object_lease_ms": 1_000.0}),
            ("fixed-8s", {"object_lease_ms": 8_000.0}),
            ("adaptive", {
                "adaptive_object_leases": True,
                "object_lease_min_ms": 1_000.0,
                "object_lease_max_ms": 16_000.0,
            }),
        ]
        for name, extra in modes:
            sim = Simulator(seed=21)
            net = Network(sim, ConstantDelay(10.0))
            config = DqvlConfig(
                lease_length_ms=120_000.0,
                inval_initial_timeout_ms=100.0,
                qrpc_initial_timeout_ms=100.0,
                **extra,
            )
            cluster = build_dqvl_cluster(
                sim, net, [f"iqs{i}" for i in range(3)],
                [f"oqs{i}" for i in range(3)], config,
            )
            client = cluster.client("c0", prefer_oqs="oqs0")
            history = History()
            cold_keys = [f"cold{i}" for i in range(60)]

            def scenario():
                # phase 1: a scan touches 60 objects once each — each
                # read installs a callback at the IQS servers
                for key in cold_keys:
                    yield from client.write(key, "init")
                    r = yield from client.read(key)
                    history.record_read(r)
                # phase 2: interest moves to one hot object; the cold
                # callbacks linger (or expire, depending on the mode)
                yield from client.write("hot", "init")
                net.reset_counters()
                for i in range(100):
                    r = yield from client.read("hot")
                    history.record_read(r)
                    yield sim.sleep(300.0)

            sim.run_process(scenario(), until=3_600_000.0)
            renewals = (
                net.stats.by_kind["obj_renew"] + net.stats.by_kind["vlobj_renew"]
            )
            callbacks = max(n.live_callback_count() for n in cluster.iqs_nodes)
            rows.append([name, renewals, callbacks])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a7_object_lease_modes",
        format_table(
            ["mode", "hot-phase renewals", "live callbacks after scan"],
            rows,
            title="A7: object-lease modes (60-object scan, then one hot object)",
        ),
    )
    by_name = {r[0]: r for r in rows}
    # Infinite callbacks never decay: every scanned object's callback
    # still binds the IQS (a write to any of them must invalidate).
    assert by_name["infinite"][2] >= 60
    # Finite leases shed the abandoned callbacks on their own...
    assert by_name["fixed-1s"][2] <= 2
    # ...at the price of renewal traffic on the hot object, which the
    # adaptive policy then claws back (longer leases where reads recur).
    assert by_name["fixed-1s"][1] > by_name["fixed-8s"][1]
    assert by_name["adaptive"][1] <= by_name["fixed-1s"][1]
    assert by_name["adaptive"][2] < by_name["infinite"][2]


def _collect_write_suppression(result):
    """Worker-side collector: sweep points do not carry the deployment."""
    cluster = result.deployment.cluster
    return {
        "writes_through": cluster.total_writes_through,
        "writes_suppressed": cluster.total_writes_suppressed,
    }


def test_a5_burst_length_vs_hit_rate(benchmark, emit):
    """A5: the paper's workload assumption quantified — longer read/write
    bursts raise the hit and suppression rates that make DQVL cheap."""
    bursts = [1.0, 2.0, 4.0, 8.0, 16.0]

    def experiment():
        points = run_sweep(
            [
                ExperimentConfig(
                    protocol="dqvl",
                    write_ratio=0.5,
                    mean_write_burst=burst,
                    ops_per_client=200,
                    warmup_ops=10,
                    seed=13,
                )
                for burst in bursts
            ],
            collect=_collect_write_suppression,
        )
        hit_rates = [p.summary.read_hit_rate for p in points]
        suppression_rates = []
        for p in points:
            through = p.extras["writes_through"]
            suppressed = p.extras["writes_suppressed"]
            suppression_rates.append(suppressed / max(through + suppressed, 1))
        return hit_rates, suppression_rates

    hit_rates, suppression_rates = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_a5_burst_vs_hit_rate",
        format_series(
            "mean_write_burst", bursts,
            [("read_hit_rate", hit_rates), ("write_suppression_rate", suppression_rates)],
            title="A5: burstiness vs hit/suppression rates (w=0.5)",
        ),
    )
    # Longer bursts help both rates substantially.
    assert hit_rates[-1] > hit_rates[0] + 0.2
    assert suppression_rates[-1] > suppression_rates[0] + 0.2
