"""Figure 9 — communication overhead (Section 4.3).

Panel (a): average messages per client request (log scale) vs. write
ratio, for the interleaved single-object worst case, n = 9 replicas.

Panel (b): messages per request vs. OQS size with the IQS fixed at a
moderate size (5), showing that the deployment knob keeps DQVL's
overhead comparable to the majority protocol as the read tier scales
out.

Expected shape:

* DQVL peaks near w = 0.5 (interleaving makes most reads misses and
  most writes write-throughs) and there exceeds the traditional quorum
  protocols — the paper's stated worst case;
* at the read-dominated end DQVL approaches 2 messages/request (pure
  read hits), far below majority;
* a simulation cross-check: measured messages per request from the
  harness match the analytic model at the extremes and show the bursty
  workload escaping the worst case.
"""

import pytest

from repro.analysis import protocol_messages_per_request
from repro.harness import ExperimentConfig, format_series, run_sweep

PROTOCOLS = ["dqvl", "majority", "grid", "rowa", "rowa_async", "primary_backup"]


def test_fig9a_messages_vs_write_ratio(benchmark, emit):
    """Figure 9(a): messages/request vs. write ratio, n = 9."""
    ratios = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]

    def experiment():
        return {
            p: [protocol_messages_per_request(p, w, 9) for w in ratios]
            for p in PROTOCOLS
        }

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "fig9a_messages_vs_write_ratio",
        format_series(
            "write_ratio", ratios, [(p, table[p]) for p in PROTOCOLS],
            title="Fig 9(a): messages per request, n=9 (interleaved worst case)",
        ),
    )

    dqvl, majority = table["dqvl"], table["majority"]
    # worst case in the interleaving regime (mid-range write ratios):
    # DQVL exceeds the majority protocol there, and the peak is interior
    # (both endpoints are cheap: pure hits / pure suppression).
    mid = ratios.index(0.5)
    assert dqvl[mid] > majority[mid]
    peak = max(dqvl)
    assert peak > dqvl[0] and peak > dqvl[-1]
    assert dqvl.index(peak) in (ratios.index(0.5), ratios.index(0.75))
    # read-dominated end: DQVL near 2 messages (hits), way below majority
    assert dqvl[0] == pytest.approx(2.0)
    assert dqvl[0] < majority[0] / 3


def test_fig9b_messages_vs_oqs_size(benchmark, emit):
    """Figure 9(b): messages/request vs. OQS size, IQS fixed at 5."""
    sizes = [5, 9, 15, 21, 27]
    w = 0.5

    def experiment():
        dqvl = [
            protocol_messages_per_request("dqvl", w, n, n_iqs=5, n_oqs=n)
            for n in sizes
        ]
        majority = [protocol_messages_per_request("majority", w, n) for n in sizes]
        rowa = [protocol_messages_per_request("rowa", w, n) for n in sizes]
        return {"dqvl_iqs5": dqvl, "majority": majority, "rowa": rowa}

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "fig9b_messages_vs_oqs_size",
        format_series(
            "n_oqs", sizes,
            [(k, v) for k, v in table.items()],
            title="Fig 9(b): messages per request vs OQS size (IQS=5, w=0.5)",
        ),
    )

    # With a moderate fixed IQS, DQVL stays within a small factor of the
    # majority protocol at every OQS size (the paper's Figure 9(b) point).
    for dq, mj in zip(table["dqvl_iqs5"], table["majority"]):
        assert dq < 3.0 * mj


def test_fig9_simulation_cross_check(benchmark, emit):
    """Measured per-request message counts from the simulator, compared
    against the analytic model's regimes."""

    def experiment():
        grid = [(0.0, None), (0.5, None), (0.5, 8.0), (1.0, None)]
        points = run_sweep([
            ExperimentConfig(
                protocol="dqvl",
                write_ratio=w,
                mean_write_burst=burst,
                ops_per_client=150,
                warmup_ops=10,
                seed=9,
            )
            for w, burst in grid
        ])
        return {
            f"w={w}" + (f" burst={burst}" if burst else " iid"):
                point.messages_per_request
            for (w, burst), point in zip(grid, points)
        }

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [f"{k:18s} {v:8.2f} msgs/request" for k, v in rows.items()]
    emit("fig9_sim_cross_check", "\n".join(lines))

    # Read-only: pure hits, ~2 messages + lease-keeper noise.
    assert rows["w=0.0 iid"] < 4.0
    # The iid 50/50 workload is the worst case; bursts escape it.
    assert rows["w=0.5 burst=8.0"] < rows["w=0.5 iid"]
    # Write-only: pure suppression, exactly the two IQS quorum rounds
    # (2*ir + 2*iw = 20 for a majority-of-9 IQS).
    assert rows["w=1.0 iid"] == pytest.approx(20.0, abs=2.0)
    # The measured 50/50 cost stays below the analytic worst case (26
    # for n=9): the workload has one reader per object, so only one OQS
    # replica holds callbacks, where the model pessimistically assumes
    # reads arrive everywhere.
    worst = protocol_messages_per_request("dqvl", 0.5, 9)
    assert rows["w=0.5 iid"] < worst
