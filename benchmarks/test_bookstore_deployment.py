"""Edge deployment vs. centralized service — the paper's Figure 1 claim.

The paper's opening argument: moving service logic (and the right
replication protocol per object class) to the edge improves latency for
the dominant, read-heavy interactions.  This bench runs the bookstore's
TPC-W-style mix (95 % browsing/profile reads, 5 % purchases) in two
deployments:

* **centralized** — all service logic at the origin site; an
  application client reaches it over the client-WAN (86 ms one way)
  unless it happens to live next door (one of three does);
* **edge** — the full `repro.apps.bookstore` deployment: every customer
  served by their closest edge (8 ms), catalog cached locally, inventory
  escrowed, orders streamed, profiles on DQVL.

Expected shape: browsing collapses from a WAN round trip to a LAN one;
purchases get *slower* at the edge (the DQVL profile write pays quorum
rounds that the centralized design gets for free locally) — and the
workload mean still drops by several x, because reads dominate.  That
asymmetry is the paper's thesis in one table.
"""

import pytest

from repro.apps.bookstore import build_bookstore
from repro.edge import EdgeTopology, EdgeTopologyConfig
from repro.harness import format_table
from repro.sim import Simulator

NUM_EDGES = 9
NUM_CUSTOMERS = 3
OPS = 120
WRITE_RATIO = 0.05  # purchase probability per interaction


def run_deployment(centralized: bool, seed: int = 6):
    sim = Simulator(seed=seed)
    # A centralized service is ONE site hosting everything — including
    # the profile store, which then needs no cross-site quorums at all.
    num_sites = 1 if centralized else NUM_EDGES
    topology = EdgeTopology(
        sim, EdgeTopologyConfig(num_edges=num_sites, num_clients=NUM_CUSTOMERS)
    )
    store = build_bookstore(
        topology, stock={"book": 10_000}, inventory_batch=50,
        order_flush_ms=500.0,
    )
    store.catalog_origin.publish("book", {"price": 12})

    # app-level hop, computed against the real geography (the paper's
    # 8 ms LAN / 86 ms client-WAN): customer c lives next to city c; the
    # centralized site is city 0.
    def hop_ms(customer: int) -> float:
        served_at = 0 if centralized else customer
        return 2 * (8.0 if served_at == customer else 86.0)

    latencies = {"read": [], "write": []}
    procs = []
    for c in range(NUM_CUSTOMERS):
        svc = store.service_for_edge(0 if centralized else c)

        def session(c=c, svc=svc):
            yield sim.sleep(200.0)
            for i in range(OPS):
                start = sim.now
                if sim.rng.random() < WRITE_RATIO:
                    result = yield from svc.purchase(f"cust{c}", "book")
                    assert result.ok
                    latencies["write"].append(sim.now - start + hop_ms(c))
                else:
                    if i % 2 == 0:
                        yield from svc.browse("book")
                    else:
                        yield from svc.get_profile(f"cust{c}")
                    latencies["read"].append(sim.now - start + hop_ms(c))

        procs.append(sim.spawn(session()))
    sim.run(until=3_600_000.0)
    assert all(p.done for p in procs)

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    overall = latencies["read"] + latencies["write"]
    return mean(latencies["read"]), mean(latencies["write"]), mean(overall)


def test_edge_vs_centralized(benchmark, emit):
    def experiment():
        rows = []
        for name, centralized in (("centralized", True), ("edge", False)):
            read_ms, write_ms, overall_ms = run_deployment(centralized)
            rows.append([name, round(read_ms, 1), round(write_ms, 1),
                         round(overall_ms, 1)])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "bookstore_edge_vs_centralized",
        format_table(
            ["deployment", "read ms", "purchase ms", "overall ms"],
            rows,
            title=(
                "Bookstore, TPC-W mix (95% reads): centralized origin vs "
                "edge deployment"
            ),
        ),
    )
    central, edge = rows
    # Reads collapse to the LAN at the edge...
    assert edge[1] < central[1] / 3
    # ...purchases pay for their consistency (DQVL quorum writes)...
    assert edge[2] > central[2]
    # ...and the read-dominated mean still wins by a wide margin.
    assert edge[3] < central[3] / 2
