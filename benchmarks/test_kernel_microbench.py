"""Kernel micro-benchmark — events/sec and per-event overhead.

Measures the simulation kernel's raw event throughput on three
workloads and compares it, in the same process on the same hardware,
against ``LegacySimulator`` — a faithful copy of the pre-fast-lane
kernel (single ``(time, seq)`` heap, one ``Timer`` allocation per
event) kept here as the permanent "before" baseline:

* ``soon_storm``   — bursts of ``call_soon`` no-ops: the pure
  zero-delay lane (future callbacks, process trampolining);
* ``trampoline``   — each event schedules the next via ``call_soon``:
  the generator micro-step pattern;
* ``timer_wheel``  — positive random delays: the heap path both
  kernels share (bounds how much of a sim the fast lane can touch).

Results are written to ``BENCH_kernel.json`` at the repo root so the
perf trajectory is tracked across PRs.  The headline assertion is the
zero-delay speedup (≥ 3×).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs a smaller event
count, does not rewrite the baseline file, and fails if the measured
speedup ratio degrades more than 20 % against the committed
``BENCH_kernel.json``.  The ratio — not absolute events/sec — is the
regression metric because it is measured against the legacy kernel on
the *same* machine in the *same* run, so it transfers across hardware;
absolute numbers are recorded for trajectory plots only.
"""

import heapq
import json
import os
import random
import time

from repro.sim.kernel import Simulator

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
BENCH_FILE = os.path.join(REPO_ROOT, "BENCH_kernel.json")

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SCALE = 0.5 if SMOKE else 1.0
ROUNDS = 3

MIN_SPEEDUP = 3.0
REGRESSION_TOLERANCE = 0.20


# -- the pre-change kernel, kept verbatim as the measurement baseline ---------

class _LegacyTimer:
    __slots__ = ("_cancelled", "when")

    def __init__(self, when):
        self.when = when
        self._cancelled = False

    def cancel(self):
        self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled


class LegacySimulator:
    """The kernel before the fast lane: one heap, a Timer per event."""

    def __init__(self, seed=0):
        self._now = 0.0
        self._queue = []
        self._sequence = 0
        self.rng = random.Random(seed)
        self._events_processed = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, fn, *args):
        timer = _LegacyTimer(self._now + delay)
        self._sequence += 1
        heapq.heappush(self._queue, (timer.when, self._sequence, timer, fn, args))
        return timer

    def call_soon(self, fn, *args):
        return self.schedule(0.0, fn, *args)

    def run(self):
        while self._queue:
            when, _seq, timer, fn, args = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self._now = when
            self._events_processed += 1
            fn(*args)
        return self._now


# -- workloads ----------------------------------------------------------------

def _noop():
    pass


def _soon_storm(sim, total_events):
    """Repeated bursts of 1000 pre-loaded zero-delay no-ops."""
    burst = 1000
    rounds = max(1, total_events // burst)
    start = time.perf_counter()
    for _ in range(rounds):
        for _ in range(burst):
            sim.call_soon(_noop)
        sim.run()
    return rounds * burst / (time.perf_counter() - start)


def _trampoline(sim, total_events):
    """A chain where each event schedules the next (generator stepping)."""
    remaining = [total_events]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_soon(step)

    sim.call_soon(step)
    start = time.perf_counter()
    sim.run()
    return total_events / (time.perf_counter() - start)


def _timer_wheel(sim, total_events):
    """Random positive delays: the heap path (shared by both kernels)."""
    rng = random.Random(7)
    burst = 1000
    rounds = max(1, total_events // burst)
    start = time.perf_counter()
    for _ in range(rounds):
        for _ in range(burst):
            sim.schedule(rng.uniform(0.001, 100.0), _noop)
        sim.run()
    return rounds * burst / (time.perf_counter() - start)


WORKLOADS = {
    "soon_storm": (_soon_storm, 200_000),
    "trampoline": (_trampoline, 200_000),
    "timer_wheel": (_timer_wheel, 100_000),
}


def _measure(make_sim):
    """Best-of-N events/sec per workload (max filters scheduler noise)."""
    rates = {}
    for name, (workload, events) in WORKLOADS.items():
        n = max(1000, int(events * SCALE))
        rates[name] = max(workload(make_sim(), n) for _ in range(ROUNDS))
    return rates


def test_kernel_events_per_second(emit):
    fast = _measure(Simulator)
    legacy = _measure(LegacySimulator)
    speedup = {k: fast[k] / legacy[k] for k in WORKLOADS}

    rows = [
        [name, round(legacy[name]), round(fast[name]),
         round(speedup[name], 2),
         round(1e9 / fast[name]), round(1e9 / legacy[name])]
        for name in WORKLOADS
    ]
    from repro.harness import format_table

    emit(
        "kernel_microbench",
        format_table(
            ["workload", "legacy ev/s", "fast ev/s", "speedup",
             "fast ns/ev", "legacy ns/ev"],
            rows,
            title="Kernel fast lane: events/sec vs the pre-change kernel",
        ),
    )

    payload = {
        "smoke": SMOKE,
        "events_per_sec": {"fast": fast, "legacy": legacy},
        "speedup": speedup,
        "per_event_overhead_ns": {k: 1e9 / fast[k] for k in WORKLOADS},
    }

    if SMOKE:
        # CI regression gate against the committed baseline.
        if os.path.exists(BENCH_FILE):
            with open(BENCH_FILE) as fh:
                baseline = json.load(fh)
            for name in ("soon_storm", "trampoline"):
                base = baseline.get("speedup", {}).get(name)
                if base:
                    floor = base * (1.0 - REGRESSION_TOLERANCE)
                    assert speedup[name] >= floor, (
                        f"{name}: speedup {speedup[name]:.2f}x regressed >20% "
                        f"below the BENCH_kernel.json baseline {base:.2f}x"
                    )
    else:
        with open(BENCH_FILE, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # The tentpole target: ≥3× on the zero-delay lane.
    assert speedup["soon_storm"] >= MIN_SPEEDUP
    assert speedup["trampoline"] >= MIN_SPEEDUP
    # The heap path must not have gotten materially slower in the
    # bargain (typically ~0.9-1.0x; the loose floor absorbs timing
    # noise when the suite shares the machine with other work).
    assert speedup["timer_wheel"] >= 0.6


def test_fast_lane_semantics_match_legacy():
    """Both kernels execute an identical interleaving (spot check)."""

    def scripted(sim):
        order = []
        sim.schedule(5.0, order.append, "t5-a")
        sim.schedule(1.0, order.append, "t1")
        sim.schedule(5.0, order.append, "t5-b")
        cancelled = sim.schedule(3.0, order.append, "t3")
        cancelled.cancel()

        def chain(n):
            order.append(f"c{n}")
            if n < 2:
                sim.call_soon(chain, n + 1)

        sim.schedule(5.0, chain, 0)
        sim.schedule(5.0, order.append, "t5-c")
        sim.run()
        return order

    assert scripted(Simulator(seed=0)) == scripted(LegacySimulator(seed=0))


def test_process_pingpong_throughput():
    """End-to-end micro-step cost (generator + future + kernel), fast
    kernel only — the legacy baseline cannot host Process objects."""
    sim = Simulator(seed=0)
    n = max(1000, int(50_000 * SCALE))

    def proc():
        for _ in range(n):
            yield sim.sleep(0.0)

    sim.spawn(proc())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    rate = sim.events_processed / elapsed
    # Loose sanity floor: a micro-step should stay deep in sub-10µs land.
    assert rate > 100_000, f"process micro-steps too slow: {rate:,.0f} ev/s"
