"""Kernel micro-benchmark — events/sec and per-event overhead.

Measures the simulation kernel's raw event throughput on four
workloads and compares it, in the same process on the same hardware,
against ``LegacySimulator`` — a faithful copy of the pre-fast-lane
kernel (single ``(time, seq)`` heap, one ``Timer`` allocation per
event) kept here as the permanent "before" baseline:

* ``soon_storm``   — bursts of ``call_soon`` no-ops: the pure
  zero-delay lane (future callbacks, process trampolining);
* ``trampoline``   — each event schedules the next via ``call_soon``:
  the generator micro-step pattern;
* ``timer_wheel``  — the steady-state timer mix of a running protocol
  sim: a large standing lease population, with rounds of short-delay
  deliveries, scheduled-then-cancelled retransmissions, and lease
  renewals replacing cancelled standing timers.  The hierarchical
  wheel + staged batches make each round O(events touched); the legacy
  heap pays O(log population) per operation on a 100k+ heap;
* ``lease_churn``  — cancel-heavy keeper renewal: every operation
  cancels a pending timer and schedules its replacement.  Exercises
  tombstone compaction (the wheel's pending set stays bounded; the
  legacy heap accumulates every tombstone until its deadline).

Results are written to ``BENCH_kernel.json`` at the repo root so the
perf trajectory is tracked across PRs.  Headline assertions: ≥ 3× on
the zero-delay lane, ≥ 4× on ``timer_wheel``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs a smaller event
count, does not rewrite the baseline file, and fails if any workload's
measured speedup ratio degrades more than 20 % against the committed
``BENCH_kernel.json``.  The ratio — not absolute events/sec — is the
regression metric because it is measured against the legacy kernel on
the *same* machine in the *same* run, so it transfers across hardware;
absolute numbers are recorded for trajectory plots only.
"""

import heapq
import json
import os
import random
import subprocess
import sys
import time

from repro.sim.kernel import Simulator

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
BENCH_FILE = os.path.join(REPO_ROOT, "BENCH_kernel.json")

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SCALE = 0.25 if SMOKE else 1.0
# Smoke runs gate a ratio against a committed floor, so they need the
# tighter best-of estimate more than they need the wall-clock; at 0.25
# scale the extra rounds are still cheap.
ROUNDS = 7 if SMOKE else 3

MIN_SPEEDUP_READY = 3.0
MIN_SPEEDUP_WHEEL = 4.0
REGRESSION_TOLERANCE = 0.20


# -- the pre-change kernel, kept verbatim as the measurement baseline ---------

class _LegacyTimer:
    __slots__ = ("_cancelled", "when")

    def __init__(self, when):
        self.when = when
        self._cancelled = False

    def cancel(self):
        self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled


class LegacySimulator:
    """The kernel before the fast lane: one heap, a Timer per event."""

    def __init__(self, seed=0):
        self._now = 0.0
        self._queue = []
        self._sequence = 0
        self.rng = random.Random(seed)
        self._events_processed = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, fn, *args):
        timer = _LegacyTimer(self._now + delay)
        self._sequence += 1
        heapq.heappush(self._queue, (timer.when, self._sequence, timer, fn, args))
        return timer

    def call_soon(self, fn, *args):
        return self.schedule(0.0, fn, *args)

    def run(self, until=None):
        queue = self._queue
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return self._now
            when, _seq, timer, fn, args = heapq.heappop(queue)
            if timer.cancelled:
                continue
            self._now = when
            self._events_processed += 1
            fn(*args)
        if until is not None and until > self._now:
            self._now = until
        return self._now


# -- workloads ----------------------------------------------------------------

def _noop():
    pass


def _soon_storm(make_sim, total_events):
    """Repeated bursts of 1000 pre-loaded zero-delay no-ops."""
    sim = make_sim()
    burst = 1000
    rounds = max(1, total_events // burst)
    start = time.perf_counter()
    for _ in range(rounds):
        for _ in range(burst):
            sim.call_soon(_noop)
        sim.run()
    return rounds * burst / (time.perf_counter() - start)


def _trampoline(make_sim, total_events):
    """A chain where each event schedules the next (generator stepping)."""
    sim = make_sim()
    remaining = [total_events]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_soon(step)

    sim.call_soon(step)
    start = time.perf_counter()
    sim.run()
    return total_events / (time.perf_counter() - start)


def _timer_wheel(make_sim, total_events):
    """Steady-state timer mix over a large standing lease population.

    Each round: 400 short-delay deliveries (no cancellation handle
    needed), 500 retransmission timers that are scheduled and then
    immediately cancelled (the reply-arrived pattern), and 100 lease
    renewals that replace cancelled standing timers; then the sim runs
    10 ms forward.  The new kernel uses the batch APIs
    (``schedule_many``); the legacy kernel pays one heap push per
    timer.  The pre-built standing population is untimed setup.
    """
    rng = random.Random(7)
    pop = max(1000, int(200_000 * SCALE))
    rounds = max(10, total_events // 1000)
    lease_pre = [rng.uniform(30_000.0, 100_000.0) for _ in range(pop)]
    deliver_d = [[rng.uniform(8.0, 200.0) for _ in range(400)] for _ in range(rounds)]
    retrans_d = [[rng.uniform(100.0, 900.0) for _ in range(500)] for _ in range(rounds)]
    renew_d = [[rng.uniform(30_000.0, 100_000.0) for _ in range(100)] for _ in range(rounds)]

    sim = make_sim()
    batched = hasattr(sim, "schedule_many")
    if batched:
        standing = sim.schedule_many(lease_pre, _noop)
    else:
        standing = [sim.schedule(d, _noop) for d in lease_pre]
    si = 0
    start = time.perf_counter()
    for r in range(rounds):
        if batched:
            sim.schedule_many(deliver_d[r], _noop, handles=False)
            retrans = sim.schedule_many(retrans_d[r], _noop)
            renewed = sim.schedule_many(renew_d[r], _noop)
        else:
            sched = sim.schedule
            for d in deliver_d[r]:
                sched(d, _noop)
            retrans = [sched(d, _noop) for d in retrans_d[r]]
            renewed = [sched(d, _noop) for d in renew_d[r]]
        for t in retrans:
            t.cancel()
        retrans = None
        for k in range(100):
            standing[si].cancel()
            standing[si] = renewed[k]
            si += 1
            if si == pop:
                si = 0
        renewed = None
        sim.run(until=sim.now + 10.0)
    return rounds * 1000 / (time.perf_counter() - start)


def _lease_churn(make_sim, total_events):
    """Cancel-heavy keeper renewal: every operation cancels a pending
    timer and schedules its replacement, then the sim creeps forward.

    Almost nothing ever fires — the workload is pure schedule/cancel
    churn.  The wheel's tombstone compaction keeps its pending set
    bounded near the live keeper count; the legacy heap retains every
    tombstone until its deadline would have arrived.
    """
    keepers = max(100, int(2_000 * SCALE))
    rounds = max(1, total_events // keepers)
    rng = random.Random(11)
    delays = [rng.uniform(300.0, 500.0) for _ in range(4096)]

    sim = make_sim()
    pending = [sim.schedule(delays[i & 4095], _noop) for i in range(keepers)]
    di = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for i in range(keepers):
            pending[i].cancel()
            pending[i] = sim.schedule(delays[di & 4095], _noop)
            di += 1
        sim.run(until=sim.now + 1.0)
    return rounds * keepers / (time.perf_counter() - start)


WORKLOADS = {
    "soon_storm": (_soon_storm, 200_000),
    "trampoline": (_trampoline, 200_000),
    "timer_wheel": (_timer_wheel, 300_000),
    "lease_churn": (_lease_churn, 100_000),
}


_CHILD = """\
import json, sys
sys.path.insert(0, sys.argv[1])
sys.path.insert(0, sys.argv[2])
import test_kernel_microbench as bench
from repro.sim.kernel import Simulator
kernel, name = sys.argv[3], sys.argv[4]
workload, events = bench.WORKLOADS[name]
n = max(1000, int(events * bench.SCALE))
if kernel == "both":
    # Interleave fast/legacy rounds so CPU-clock drift on a shared host
    # hits both sides of the ratio and cancels; used by the smoke gate,
    # where the *ratio* is the gated quantity.
    f = l = 0.0
    for _ in range(bench.ROUNDS):
        f = max(f, workload(Simulator, n))
        l = max(l, workload(bench.LegacySimulator, n))
    print(json.dumps([f, l]))
else:
    make_sim = Simulator if kernel == "fast" else bench.LegacySimulator
    print(json.dumps(max(workload(make_sim, n) for _ in range(bench.ROUNDS))))
"""


def _measure(kernel, smoke_scale=SMOKE):
    """Best-of-N events/sec per workload, each (kernel, workload) pair in
    a fresh subprocess.

    Isolation matters on both axes: the 200k-timer workload fragments
    the allocator enough to skew whatever is measured after it in the
    same process, and GC stays *enabled* — it is part of the cost under
    measurement (the legacy heap retains every tombstone until its
    deadline, and that garbage taxes every collection pass; disabling
    GC would hide a real cost of the legacy design).  Best-of-N (max)
    filters scheduler noise within each subprocess.
    """
    env = dict(os.environ)
    if smoke_scale:
        env["REPRO_BENCH_SMOKE"] = "1"
    else:
        env.pop("REPRO_BENCH_SMOKE", None)
    rates = {}
    for name in WORKLOADS:
        out = subprocess.run(
            [sys.executable, "-c", _CHILD,
             os.path.join(REPO_ROOT, "src"), os.path.dirname(__file__),
             kernel, name],
            capture_output=True, text=True, check=True, cwd=REPO_ROOT,
            env=env,
        )
        rates[name] = json.loads(out.stdout)
    return rates


def _measure_smoke_ratios():
    """Smoke-scale speedup ratios, one paired subprocess per workload.

    Fast and legacy rounds are interleaved inside the same child (the
    ``both`` child mode) so frequency scaling and host contention move
    both sides of the ratio together; measuring the two kernels in
    subprocesses half a minute apart makes the ratio swing ±40% on a
    busy host even at best-of-7.
    """
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    fast, legacy = {}, {}
    for name in WORKLOADS:
        out = subprocess.run(
            [sys.executable, "-c", _CHILD,
             os.path.join(REPO_ROOT, "src"), os.path.dirname(__file__),
             "both", name],
            capture_output=True, text=True, check=True, cwd=REPO_ROOT,
            env=env,
        )
        fast[name], legacy[name] = json.loads(out.stdout)
    return fast, legacy


def test_kernel_events_per_second(emit):
    if SMOKE:
        fast, legacy = _measure_smoke_ratios()
    else:
        fast = _measure("fast")
        legacy = _measure("legacy")
    speedup = {k: fast[k] / legacy[k] for k in WORKLOADS}

    rows = [
        [name, round(legacy[name]), round(fast[name]),
         round(speedup[name], 2),
         round(1e9 / fast[name]), round(1e9 / legacy[name])]
        for name in WORKLOADS
    ]
    from repro.harness import format_table

    table = format_table(
        ["workload", "legacy ev/s", "fast ev/s", "speedup",
         "fast ns/ev", "legacy ns/ev"],
        rows,
        title="Kernel two-lane wheel: events/sec vs the pre-change kernel",
    )
    if SMOKE:
        # Show the numbers in the CI log, but leave the committed
        # results/ table alone — it records the full-scale run.
        print(f"\n=== kernel_microbench (smoke) ===\n{table}")
    else:
        emit("kernel_microbench", table)

    if SMOKE:
        # Leave the committed baseline untouched, but record what this
        # run measured next to it — CI uploads both as the bench
        # artifact, so a regression report always carries its numbers.
        with open(BENCH_FILE + ".smoke", "w") as fh:
            json.dump(
                {
                    "smoke": True,
                    "events_per_sec": {"fast": fast, "legacy": legacy},
                    "speedup": speedup,
                },
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        # CI regression gate against the committed baseline: every
        # workload present in both runs must hold its ratio.  Smoke runs
        # compare against the baseline's *smoke-scale* ratios — the
        # speedups are scale-dependent (at smoke scale the legacy heap
        # never grows enough for its O(log n) and GC costs to bite), so
        # full-scale ratios are not the right reference.
        if os.path.exists(BENCH_FILE):
            with open(BENCH_FILE) as fh:
                baseline = json.load(fh)
            reference = baseline.get("speedup_smoke", baseline.get("speedup", {}))
            for name, base in reference.items():
                if name not in speedup or not base:
                    continue
                floor = base * (1.0 - REGRESSION_TOLERANCE)
                assert speedup[name] >= floor, (
                    f"{name}: speedup {speedup[name]:.2f}x regressed >20% "
                    f"below the BENCH_kernel.json smoke baseline {base:.2f}x"
                )
    else:
        # Also record smoke-scale ratios so CI smoke runs have a
        # like-for-like reference.  The reference is the per-workload
        # *minimum* over independent passes: ratios on the near-parity
        # workloads (lease_churn is parity by design) swing run to run
        # with GC/allocator timing, so a single lucky pass would set a
        # baseline the gate can never reliably hold.  A conservative
        # floor trips on real regressions, not measurement noise.
        smoke_ratios = []
        for _ in range(3):
            smoke_fast, smoke_legacy = _measure_smoke_ratios()
            smoke_ratios.append(
                {k: smoke_fast[k] / smoke_legacy[k] for k in WORKLOADS})
        payload = {
            "smoke": False,
            "events_per_sec": {"fast": fast, "legacy": legacy},
            "speedup": speedup,
            "speedup_smoke": {
                k: min(r[k] for r in smoke_ratios) for k in WORKLOADS},
            "per_event_overhead_ns": {k: 1e9 / fast[k] for k in WORKLOADS},
        }
        with open(BENCH_FILE, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # Tentpole targets: ≥3× on the zero-delay lane, ≥4× on the
    # steady-state wheel workload.  Full scale only — the ratios are
    # scale-dependent, so smoke mode is covered by the like-for-like
    # regression gate above instead.
    if not SMOKE:
        assert speedup["soon_storm"] >= MIN_SPEEDUP_READY
        assert speedup["trampoline"] >= MIN_SPEEDUP_READY
        assert speedup["timer_wheel"] >= MIN_SPEEDUP_WHEEL
        # lease_churn is the wheel's worst case: almost nothing ever
        # fires, so the legacy side is a raw C heappush per operation,
        # while the wheel pays Python-level slot placement plus periodic
        # tombstone compaction to keep its pending set bounded (the
        # legacy heap retains every tombstone until its deadline; see
        # test_cancel_heavy_pending_set_stays_bounded).  The two land
        # near parity — the legacy heap's retained garbage taxes GC as
        # its heap grows — so require parity within noise, not a
        # speedup.
        assert speedup["lease_churn"] >= 0.7


def test_fast_lane_semantics_match_legacy():
    """Both kernels execute an identical interleaving (spot check)."""

    def scripted(sim):
        order = []
        sim.schedule(5.0, order.append, "t5-a")
        sim.schedule(1.0, order.append, "t1")
        sim.schedule(5.0, order.append, "t5-b")
        cancelled = sim.schedule(3.0, order.append, "t3")
        cancelled.cancel()

        def chain(n):
            order.append(f"c{n}")
            if n < 2:
                sim.call_soon(chain, n + 1)

        sim.schedule(5.0, chain, 0)
        sim.schedule(5.0, order.append, "t5-c")
        sim.run()
        return order

    assert scripted(Simulator(seed=0)) == scripted(LegacySimulator(seed=0))


def test_steady_state_workload_equivalence():
    """The timer_wheel workload dispatches the same events at the same
    times on both kernels (locks the benchmark itself as a fair
    comparison, batch APIs included)."""

    def scripted(sim):
        fired = []
        batched = hasattr(sim, "schedule_many")
        rng = random.Random(3)
        delays = [rng.uniform(1.0, 50.0) for _ in range(64)]
        if batched:
            standing = sim.schedule_many(delays, fired.append, "lease")
            sim.schedule_many([d + 0.5 for d in delays], fired.append,
                              "deliver", handles=False)
        else:
            standing = [sim.schedule(d, fired.append, "lease") for d in delays]
            for d in delays:
                sim.schedule(d + 0.5, fired.append, "deliver")
        for t in standing[::2]:
            t.cancel()
        sim.run(until=25.0)
        mid = len(fired)
        sim.run()
        return fired, mid, sim.now

    assert scripted(Simulator(seed=0)) == scripted(LegacySimulator(seed=0))


def test_process_pingpong_throughput():
    """End-to-end micro-step cost (generator + future + kernel), fast
    kernel only — the legacy baseline cannot host Process objects."""
    sim = Simulator(seed=0)
    n = max(1000, int(50_000 * SCALE))

    def proc():
        for _ in range(n):
            yield sim.sleep(0.0)

    sim.spawn(proc())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    rate = sim.events_processed / elapsed
    # Loose sanity floor: a micro-step should stay deep in sub-10µs land.
    assert rate > 100_000, f"process micro-steps too slow: {rate:,.0f} ev/s"
