"""Edge-CDN scale benchmarks: Fig 6-style comparisons at populations
the paper could never reach.

The paper's evaluation (Figures 6-7) drives each edge server with a
handful of closed-loop clients.  With aggregate client populations
(:mod:`repro.workload.population`) the same protocol stacks serve
**millions of modeled users**: kernel cost scales with the aggregate
arrival rate, not the population, so a million-user multi-PoP scenario
runs in seconds.

Three panels:

* protocol comparison at one million users — DQVL keeps its local-read
  advantage over majority/primary-backup at population scale;
* population-independence — the same aggregate rate costs the same
  kernel events whether it models 10^5 or 10^8 users;
* a flash crowd against DQVL with the latency-attribution engine on,
  emitting the per-phase budget table.
"""

import pytest

from repro.edge.cdn import CdnScenarioConfig, run_cdn
from repro.harness import format_table
from repro.obs import attribute_trace, format_budget, latency_budget

SEED = 2005
USERS = 1_000_000
#: per-user rate chosen so the aggregate (200 req/s over 4 PoPs) keeps
#: the slowest protocol's issuer pools below saturation
RATE = 0.0002


def _config(protocol: str, **overrides) -> CdnScenarioConfig:
    kwargs = dict(
        protocol=protocol,
        seed=SEED,
        regions=2,
        pops_per_region=2,
        users=USERS,
        ops_per_user_per_s=RATE,
        # Read-heavy Zipf content, as a CDN serves: enough skew that the
        # hot volumes stay leased at every PoP once the run warms up.
        write_ratio=0.01,
        num_objects=100_000,
        num_volumes=64,
        zipf_s=1.3,
        issuers_per_pop=16,
        queue_limit=512,
        horizon_ms=2_000.0,
    )
    kwargs.update(overrides)
    return CdnScenarioConfig(**kwargs)


def test_cdn_million_user_protocols(benchmark, emit):
    """Fig 6 at one million users: response time per protocol."""
    protocols = ["dqvl", "majority", "primary_backup"]

    def experiment():
        return {p: run_cdn(_config(p, horizon_ms=8_000.0))
                for p in protocols}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for name, res in results.items():
        s = res.summary
        rows.append([
            name, res.stats.arrivals, res.stats.completed,
            s.reads.median, s.writes.median, s.overall.p95,
            s.read_hit_rate if s.read_hit_rate is not None else "-",
            res.events_processed, round(res.events_per_arrival, 1),
        ])
    emit(
        "cdn_million_user_protocols",
        format_table(
            ["protocol", "arrivals", "done", "read p50 ms", "write p50 ms",
             "p95 ms", "hit rate", "events", "events/arrival"],
            rows,
            title=(f"CDN: {USERS:,} modeled users, 2 regions x 2 PoPs, "
                   f"{USERS * RATE:.0f} req/s aggregate"),
        ),
    )

    dqvl = results["dqvl"].summary
    majority = results["majority"].summary
    pb = results["primary_backup"].summary
    # The paper's headline survives the million-user population: DQVL
    # serves reads from the local volume lease while the strong quorum
    # baselines pay WAN rounds.  (Primary/backup's median is softer than
    # the paper's closed-loop 6x because the PoP co-located with the
    # primary reads at LAN cost.)
    assert majority.reads.median >= 6.0 * dqvl.reads.median
    assert pb.reads.median >= 2.0 * dqvl.reads.median
    # Open-loop sanity: nothing was dropped at this provisioning.
    for res in results.values():
        assert res.stats.dropped == 0


def test_cdn_population_independence(benchmark, emit):
    """Kernel events track the aggregate arrival rate, not the number of
    modeled users: 10^5..10^8 users at the same total rate cost the
    same events and produce the same latency summary."""
    populations = [100_000, 1_000_000, 10_000_000, 100_000_000]
    total_rate = USERS * RATE  # hold the aggregate constant

    def experiment():
        return [
            run_cdn(_config("dqvl", users=n, ops_per_user_per_s=total_rate / n))
            for n in populations
        ]

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [f"{n:,}", res.stats.arrivals, res.events_processed,
         round(res.events_per_arrival, 1), res.summary.overall.median]
        for n, res in zip(populations, results)
    ]
    emit(
        "cdn_population_independence",
        format_table(
            ["modeled users", "arrivals", "events", "events/arrival",
             "p50 ms"],
            rows,
            title=(f"Population independence at {total_rate:.0f} req/s "
                   "aggregate (dqvl)"),
        ),
    )

    baseline = results[0]
    for res in results[1:]:
        assert res.events_processed == baseline.events_processed
        assert res.stats.arrivals == baseline.stats.arrivals
        assert res.summary.overall.count == baseline.summary.overall.count
        # The per-user rate is total/n, so region rates can differ by a
        # float ulp across populations; latencies agree to tolerance.
        assert res.summary.overall.mean == pytest.approx(
            baseline.summary.overall.mean
        )
        assert res.summary.overall.p95 == pytest.approx(
            baseline.summary.overall.p95
        )


def test_cdn_flash_crowd_budget(benchmark, emit):
    """A 5x flash crowd at one million users, with the attribution
    engine on: where does the latency go, phase by phase?"""

    def experiment():
        return run_cdn(_config(
            "dqvl",
            trace=True,
            flash_start_ms=500.0,
            flash_peak_multiplier=5.0,
            flash_ramp_ms=200.0,
            flash_hold_ms=500.0,
            flash_decay_ms=300.0,
        ))

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)

    budget = latency_budget(attribute_trace(result.obs.tracer))
    stats_line = (
        f"arrivals={result.stats.arrivals} completed={result.stats.completed} "
        f"dropped={result.stats.dropped} queue_peak={result.stats.queue_peak} "
        f"p50={result.summary.overall.median:.1f}ms "
        f"p95={result.summary.overall.p95:.1f}ms"
    )
    emit(
        "cdn_flash_crowd_budget",
        stats_line + "\n" + format_budget(
            budget,
            title=f"Flash crowd 5x @ {USERS:,} users — per-phase budget",
        ),
    )

    assert result.budget
    assert result.stats.completed > 0
    # The flash roughly doubles total arrivals over the 2 s horizon
    # relative to the flat profile; make sure the surge showed up.
    flat = run_cdn(_config("dqvl"))
    assert result.stats.arrivals > 1.3 * flat.stats.arrivals
