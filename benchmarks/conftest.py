"""Shared fixtures for the figure benchmarks.

Each benchmark regenerates one panel of the paper's evaluation (Figures
6-9) and prints the rows/series the paper plots.  Results are also
written to ``results/`` so EXPERIMENTS.md can reference them.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture
def emit(results_dir, capsys):
    """Print a report and persist it under results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n=== {name} ===")
            print(text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _emit
