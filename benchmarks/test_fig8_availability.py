"""Figure 8 — system unavailability (Section 4.2, analytical).

Panel (a): unavailability (log scale) vs. write ratio at n = 15
replicas, per-node unavailability p = 0.01.

Panel (b): unavailability vs. number of replicas at a 25 % write ratio.

Expected shape:

* **DQVL tracks the majority quorum** across both sweeps — the paper's
  key availability result;
* ROWA's availability collapses as writes appear (write-all);
* ROWA-Async with stale reads allowed is near-perfect; with stale reads
  rejected (the fair comparison) it is orders of magnitude *worse* than
  the quorum protocols;
* quorum protocols improve with the replica count; ROWA and the
  no-stale ROWA-Async do not.

A Monte-Carlo simulation cross-check validates the closed forms at one
parameter point (sampling cannot reach 1e-8, so the check uses a large
p where both are measurable).
"""

import pytest

from repro.analysis import protocol_unavailability
from repro.harness import format_series, log_axis_note
from repro.quorum import MajorityQuorumSystem, monte_carlo_quorum_availability

P = 0.01
PROTOCOLS = [
    "dqvl",
    "majority",
    "grid",
    "rowa",
    "rowa_async",
    "rowa_async_no_stale",
    "primary_backup",
]


def test_fig8a_unavailability_vs_write_ratio(benchmark, emit):
    """Figure 8(a): unavailability vs. write ratio, n = 15, p = 0.01."""
    ratios = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]

    def experiment():
        return {
            p: [protocol_unavailability(p, w, 15, P) for w in ratios]
            for p in PROTOCOLS
        }

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    note = log_axis_note([u for series in table.values() for u in series])
    emit(
        "fig8a_unavailability_vs_write_ratio",
        format_series(
            "write_ratio", ratios, [(p, table[p]) for p in PROTOCOLS],
            title=f"Fig 8(a): unavailability, n=15, p=0.01 {note}",
        ),
    )

    dqvl, majority = table["dqvl"], table["majority"]
    # DQVL tracks majority within a small factor at every write ratio.
    for dq, mj in zip(dqvl, majority):
        assert dq <= 2 * mj + 1e-15 and dq >= 0.4 * mj - 1e-15
    # ROWA collapses under writes; fine for reads.
    assert table["rowa"][0] < 1e-20
    assert table["rowa"][-1] > 0.1
    # ROWA-Async (stale OK) is near-perfect; the no-stale variant is
    # orders of magnitude worse than the quorum protocols.
    assert max(table["rowa_async"]) < 1e-20
    assert table["rowa_async_no_stale"][1] > 1e3 * majority[1]
    # primary/backup is pinned at ~p.
    assert table["primary_backup"][0] == pytest.approx(P, rel=1e-6)


def test_fig8b_unavailability_vs_replicas(benchmark, emit):
    """Figure 8(b): unavailability vs. replica count, w = 0.25."""
    sizes = [3, 5, 7, 9, 11, 15, 19, 21]
    w = 0.25

    def experiment():
        return {
            p: [protocol_unavailability(p, w, n, P) for n in sizes]
            for p in PROTOCOLS
        }

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    note = log_axis_note([u for series in table.values() for u in series])
    emit(
        "fig8b_unavailability_vs_replicas",
        format_series(
            "replicas", sizes, [(p, table[p]) for p in PROTOCOLS],
            title=f"Fig 8(b): unavailability, w=0.25, p=0.01 {note}",
        ),
    )

    dqvl, majority = table["dqvl"], table["majority"]
    # DQVL ~ majority at every size.
    for dq, mj in zip(dqvl, majority):
        assert dq <= 2 * mj + 1e-15
    # Quorum protocols improve (strictly) with more replicas...
    assert all(a > b for a, b in zip(majority, majority[1:]))
    assert all(a > b for a, b in zip(dqvl, dqvl[1:]))
    # ...while ROWA gets *worse* with more replicas (write-all) and the
    # no-stale ROWA-Async stays flat.
    assert all(a <= b for a, b in zip(table["rowa"], table["rowa"][1:]))
    flat = table["rowa_async_no_stale"]
    assert max(flat) - min(flat) < 0.05 * max(flat)


def test_fig8_measured_availability_cross_check(benchmark, emit):
    """End-to-end measured availability on the simulator (Bernoulli
    per-epoch outages, open-loop clients, bounded retries) vs. the
    analytic model — at p = 0.15 where rejections are measurable.

    Includes the effect the analytic model cannot show: DQVL's measured
    availability *beats* its pessimistic formula because valid volume
    leases mask failures shorter than the lease (the paper's remark in
    Section 4.2).
    """
    from repro.harness.availability import AvailabilitySimConfig, run_availability_sim

    p_meas = 0.15
    n, w = 5, 0.25
    protocols = ["dqvl", "majority", "rowa", "primary_backup",
                 "rowa_async", "rowa_async_no_stale"]

    def experiment():
        rows = []
        for name in protocols:
            res = run_availability_sim(
                AvailabilitySimConfig(
                    protocol=name, write_ratio=w, num_replicas=n,
                    p=p_meas, epochs=200, seed=3, max_attempts=4,
                )
            )
            analytic = protocol_unavailability(name, w, n, p_meas)
            rows.append([name, res.unavailability, analytic])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    from repro.harness import format_table

    emit(
        "fig8_measured_availability",
        format_table(
            ["protocol", "measured unavail", "analytic unavail"],
            rows,
            title=f"Fig 8 cross-check: measured vs analytic (n={n}, w={w}, p={p_meas})",
        ),
    )
    measured = {name: m for name, m, _a in rows}
    analytic = {name: a for name, _m, a in rows}
    # DQVL tracks majority and beats its own pessimistic bound.
    assert measured["dqvl"] == pytest.approx(measured["majority"], abs=0.03)
    assert measured["dqvl"] <= analytic["dqvl"] * 1.5
    # ROWA and primary/backup are far less available than the quorums.
    assert measured["rowa"] > 2 * measured["majority"]
    assert measured["primary_backup"] > 2 * measured["majority"]
    # The no-stale accounting costs ROWA-Async heavily.
    assert measured["rowa_async_no_stale"] > 3 * measured["rowa_async"]


def test_fig8_monte_carlo_cross_check(benchmark, emit):
    """Closed forms vs. Monte Carlo at a measurable parameter point."""
    p_big = 0.2
    n = 9

    def experiment():
        system = MajorityQuorumSystem([f"n{i}" for i in range(n)])
        mc = 1.0 - monte_carlo_quorum_availability(
            system.nodes, system.is_read_quorum, p_big, trials=100_000, seed=5
        )
        analytic = protocol_unavailability("majority", 0.5, n, p_big)
        return mc, analytic

    mc, analytic = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "fig8_monte_carlo_cross_check",
        f"majority n={n} p={p_big}: analytic={analytic:.6f} monte_carlo={mc:.6f}",
    )
    assert mc == pytest.approx(analytic, rel=0.05)
