"""Protocol tests for the basic (lease-free) dual-quorum protocol."""

import pytest

from repro.core import DqvlConfig, build_basic_dq_cluster
from repro.sim import ConstantDelay, Network, Simulator
from repro.types import ZERO_LC


def make_cluster(n_iqs=3, n_oqs=3, delay=10.0, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(delay))
    config = DqvlConfig(
        inval_initial_timeout_ms=100.0, qrpc_initial_timeout_ms=100.0
    )
    cluster = build_basic_dq_cluster(
        sim, net,
        [f"iqs{i}" for i in range(n_iqs)],
        [f"oqs{i}" for i in range(n_oqs)],
        config,
    )
    return sim, net, cluster


class TestBasics:
    def test_initial_read(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            r = yield from client.read("x")
            return (r.value, r.lc)

        assert sim.run_process(scenario()) == (None, ZERO_LC)

    def test_write_then_read(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            w = yield from client.write("x", "hello")
            r = yield from client.read("x")
            return (r.value, r.lc == w.lc)

        assert sim.run_process(scenario()) == ("hello", True)

    def test_read_burst_hits_after_first_miss(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v")
            hits = []
            for _ in range(3):
                r = yield from client.read("x")
                hits.append(r.hit)
            return hits

        assert sim.run_process(scenario()) == [False, True, True]

    def test_write_burst_suppresses_after_first(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v0")
            yield from client.read("x")
            yield from client.write("x", "v1")  # through (invalidate)
            snap = net.snapshot()
            yield from client.write("x", "v2")  # suppress
            return net.stats.diff(snap).by_kind.get("inval", 0)

        assert sim.run_process(scenario()) == 0

    def test_no_stale_read_after_cross_client_write(self):
        sim, net, cluster = make_cluster()
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")

        def scenario():
            yield from c0.write("x", "v1")
            r = yield from c1.read("x")
            assert r.value == "v1"
            yield from c0.write("x", "v2")
            r = yield from c1.read("x")
            return r.value

        assert sim.run_process(scenario()) == "v2"

    def test_first_write_on_fresh_system_suppresses(self):
        """With per-node callback tracking the IQS can prove that no OQS
        node cached anything yet, so the first write needs no
        invalidations.  (The paper's global lastReadLC scalar cannot
        express this and would invalidate everyone — see DESIGN.md.)"""
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v0")
            return net.stats.by_kind.get("inval", 0)

        assert sim.run_process(scenario()) == 0

    def test_write_after_read_invalidates(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v0")
            yield from client.read("x")
            snap = net.snapshot()
            yield from client.write("x", "v1")
            return net.stats.diff(snap).by_kind.get("inval", 0)

        assert sim.run_process(scenario()) > 0


class TestBlockingSemantics:
    def test_write_blocks_while_oqs_node_unreachable(self):
        """The basic protocol's weakness: a write cannot complete while
        an OQS node that may hold a valid copy is unreachable."""
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")
        state = {}

        def scenario():
            yield from client.write("x", "v0")
            yield from client.read("x")
            cluster.oqs_node("oqs0").crash()
            write_proc = sim.spawn(client.write("x", "v1"))
            state["proc"] = write_proc
            yield sim.sleep(30_000.0)
            state["blocked"] = not write_proc.done
            cluster.oqs_node("oqs0").recover()
            yield write_proc
            return state["blocked"]

        assert sim.run_process(scenario(), until=600_000.0) is True

    def test_write_proceeds_when_unreachable_node_never_cached(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")
        # oqs2 never cached anything and is down; majority-write still OK
        cluster.oqs_node("oqs2").crash()

        def scenario():
            w = yield from client.write("x", "v0")
            return w.value

        assert sim.run_process(scenario(), until=600_000.0) == "v0"


class TestValidityRule:
    def test_hit_needs_quorum_of_valid_columns(self):
        """A single valid column is not enough: a write quorum could
        avoid it entirely (see is_local_valid's docstring)."""
        sim, net, cluster = make_cluster()
        node = cluster.oqs_node("oqs0")
        from repro.types import LogicalClock

        node._clock_of[("x", "iqs0")] = LogicalClock(5, "w")
        node._valid[("x", "iqs0")] = True
        node._values["x"] = ("v5", LogicalClock(5, "w"))
        assert not node.is_local_valid("x")  # one column < quorum of 2
        node._clock_of[("x", "iqs1")] = LogicalClock(5, "w")
        node._valid[("x", "iqs1")] = True
        assert node.is_local_valid("x")

    def test_max_clock_rule(self):
        """An invalidation with the highest clock blocks hits even if a
        quorum of other columns is still marked valid."""
        sim, net, cluster = make_cluster()
        node = cluster.oqs_node("oqs0")
        from repro.types import LogicalClock

        for iqs in ("iqs0", "iqs1"):
            node._clock_of[("x", iqs)] = LogicalClock(5, "w")
            node._valid[("x", iqs)] = True
        node._values["x"] = ("v5", LogicalClock(5, "w"))
        assert node.is_local_valid("x")
        node._clock_of[("x", "iqs2")] = LogicalClock(7, "w")
        node._valid[("x", "iqs2")] = False
        assert not node.is_local_valid("x")

    def test_renewal_with_equal_clock_validates(self):
        sim, net, cluster = make_cluster()
        node = cluster.oqs_node("oqs0")
        from repro.sim import Message
        from repro.types import LogicalClock

        lc = LogicalClock(3, "w")
        node._clock_of[("x", "iqs0")] = lc
        node._valid[("x", "iqs0")] = False
        node._clock_of[("x", "iqs1")] = lc
        node._valid[("x", "iqs1")] = True
        reply = Message(
            src="iqs0", dst="oqs0", kind="obj_renew_reply",
            payload={"obj": "x", "value": "v3", "lc": lc},
        )
        node._apply_renewal_reply(reply)
        assert node.is_local_valid("x")

    def test_never_heard_object_is_invalid(self):
        sim, net, cluster = make_cluster()
        node = cluster.oqs_node("oqs0")
        assert not node.is_local_valid("nope")


class TestFaults:
    def test_correct_under_loss(self):
        sim = Simulator(seed=31)
        net = Network(sim, ConstantDelay(10.0), loss_probability=0.15)
        config = DqvlConfig(
            inval_initial_timeout_ms=80.0, qrpc_initial_timeout_ms=80.0
        )
        cluster = build_basic_dq_cluster(
            sim, net, ["iqs0", "iqs1", "iqs2"], ["oqs0", "oqs1", "oqs2"], config
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            for i in range(6):
                yield from client.write("x", f"v{i}")
            r = yield from client.read("x")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v5"
