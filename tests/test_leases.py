"""Unit and property tests for the volume-lease state machines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.leases import DelayedInval, IqsLeaseTable, OqsLeaseView
from repro.types import ZERO_LC, LogicalClock


def lc(n, node="w"):
    return LogicalClock(n, node)


class TestIqsLeaseTable:
    def make(self, L=1000.0, drift=0.0, max_delayed=5):
        return IqsLeaseTable(lease_length_ms=L, max_drift=drift, max_delayed=max_delayed)

    def test_validation(self):
        with pytest.raises(ValueError):
            IqsLeaseTable(lease_length_ms=0)
        with pytest.raises(ValueError):
            IqsLeaseTable(lease_length_ms=10, max_delayed=0)

    def test_grant_records_conservative_expiry(self):
        table = self.make(L=1000.0, drift=0.01)
        grant = table.grant("v", "j", now=100.0, requestor_time=42.0)
        assert grant.length_ms == 1000.0
        assert grant.requestor_time == 42.0
        assert table.expiry("v", "j") == pytest.approx(100.0 + 1010.0)

    def test_never_granted_is_expired_with_neg_inf(self):
        table = self.make()
        assert table.expiry("v", "j") == float("-inf")
        assert table.is_expired("v", "j", now=0.0)

    def test_expiry_boundary_is_not_expired(self):
        """At the exact expiry instant the granter still treats the lease
        as live (the safe direction)."""
        table = self.make(L=100.0)
        table.grant("v", "j", now=0.0, requestor_time=0.0)
        assert not table.is_expired("v", "j", now=100.0)
        assert table.is_expired("v", "j", now=100.0001)

    def test_delayed_invals_kept_until_acked(self):
        table = self.make()
        table.enqueue_delayed("v", "j", "a", lc(3))
        table.enqueue_delayed("v", "j", "b", lc(5))
        grant = table.grant("v", "j", now=0.0, requestor_time=0.0)
        assert {d.obj for d in grant.delayed} == {"a", "b"}
        # not cleared by the grant itself
        assert table.delayed_count("v", "j") == 2
        table.ack_delayed("v", "j", lc(4))
        assert table.pending_delayed("v", "j") == {"b": lc(5)}
        table.ack_delayed("v", "j", lc(5))
        assert table.delayed_count("v", "j") == 0

    def test_delayed_subsumption_keeps_max(self):
        table = self.make()
        table.enqueue_delayed("v", "j", "a", lc(7))
        table.enqueue_delayed("v", "j", "a", lc(3))
        assert table.pending_delayed("v", "j") == {"a": lc(7)}
        assert table.has_delayed("v", "j", "a", lc(7))
        assert not table.has_delayed("v", "j", "a", lc(8))

    def test_queue_overflow_bumps_epoch(self):
        table = self.make(max_delayed=3)
        for i in range(4):
            table.enqueue_delayed("v", "j", f"o{i}", lc(i + 1))
        assert table.epoch("v", "j") == 1
        assert table.delayed_count("v", "j") == 0
        assert table.epoch_bumps == 1

    def test_epoch_scoped_per_volume_node(self):
        table = self.make()
        table.bump_epoch("v", "j1")
        assert table.epoch("v", "j1") == 1
        assert table.epoch("v", "j2") == 0
        assert table.epoch("w", "j1") == 0

    def test_grant_carries_current_epoch(self):
        table = self.make()
        table.bump_epoch("v", "j")
        grant = table.grant("v", "j", now=0.0, requestor_time=0.0)
        assert grant.epoch == 1


class TestOqsLeaseView:
    def make_grant(self, volume="v", L=1000.0, epoch=0, delayed=(), t0=0.0):
        from repro.core.leases import VolumeLeaseGrant

        return VolumeLeaseGrant(
            volume=volume, length_ms=L, epoch=epoch,
            delayed=tuple(delayed), requestor_time=t0,
        )

    def test_grant_sets_conservative_expiry(self):
        view = OqsLeaseView(max_drift=0.01)
        view.apply_grant("i", self.make_grant(t0=100.0, L=1000.0))
        assert view.volume_expiry("v", "i") == pytest.approx(100.0 + 990.0)
        assert view.volume_valid("v", "i", now=1000.0)
        assert not view.volume_valid("v", "i", now=1090.0)

    def test_expiry_boundary_invalid_for_holder(self):
        """At the exact expiry instant the holder treats the lease as
        dead (the safe direction, opposite of the granter)."""
        view = OqsLeaseView()
        view.apply_grant("i", self.make_grant(t0=0.0, L=100.0))
        assert view.volume_valid("v", "i", now=99.999)
        assert not view.volume_valid("v", "i", now=100.0)

    def test_reordered_grants_never_regress(self):
        view = OqsLeaseView()
        view.apply_grant("i", self.make_grant(t0=500.0, L=100.0, epoch=2))
        view.apply_grant("i", self.make_grant(t0=100.0, L=100.0, epoch=1))
        assert view.volume_expiry("v", "i") == pytest.approx(600.0)
        assert view.volume_epoch("v", "i") == 2

    def test_grant_applies_delayed_invalidations(self):
        view = OqsLeaseView()
        view.apply_renewal("i", "a", epoch=0, lc=lc(1))
        grant = self.make_grant(delayed=[DelayedInval("a", lc(5))])
        view.apply_grant("i", grant)
        _, clock, valid = view.object_state("a", "i")
        assert clock == lc(5) and not valid

    def test_renewal_validates_unless_newer_inval_seen(self):
        view = OqsLeaseView()
        view.apply_invalidation("i", "a", lc(10))
        assert view.apply_renewal("i", "a", epoch=0, lc=lc(7)) is False
        _, clock, valid = view.object_state("a", "i")
        assert clock == lc(10) and not valid
        assert view.apply_renewal("i", "a", epoch=0, lc=lc(10)) is True
        _, clock, valid = view.object_state("a", "i")
        assert valid

    def test_stale_invalidation_ignored(self):
        view = OqsLeaseView()
        view.apply_renewal("i", "a", epoch=0, lc=lc(10))
        view.apply_invalidation("i", "a", lc(3))
        _, clock, valid = view.object_state("a", "i")
        assert clock == lc(10) and valid

    def test_object_valid_requires_volume_and_epoch(self):
        view = OqsLeaseView()
        view.apply_grant("i", self.make_grant(t0=0.0, L=1000.0, epoch=0))
        view.apply_renewal("i", "a", epoch=0, lc=lc(1))
        assert view.object_valid("v", "a", "i", now=10.0)
        # epoch bump invalidates every object lease under the volume
        view.apply_grant("i", self.make_grant(t0=20.0, L=1000.0, epoch=1))
        assert not view.object_valid("v", "a", "i", now=30.0)
        # re-renewal under the new epoch revalidates
        view.apply_renewal("i", "a", epoch=1, lc=lc(1))
        assert view.object_valid("v", "a", "i", now=40.0)

    def test_object_invalid_without_volume(self):
        view = OqsLeaseView()
        view.apply_renewal("i", "a", epoch=0, lc=lc(1))
        assert not view.object_valid("v", "a", "i", now=0.0)

    def test_valid_servers_and_best_clock(self):
        view = OqsLeaseView()
        for i, n in [("i1", 3), ("i2", 5)]:
            view.apply_grant(i, self.make_grant(t0=0.0, L=1000.0))
            view.apply_renewal(i, "a", epoch=0, lc=lc(n))
        view.apply_invalidation("i3", "a", lc(9))
        assert set(view.valid_servers("v", "a", ["i1", "i2", "i3"], now=1.0)) == {"i1", "i2"}
        assert view.best_valid_clock("v", "a", ["i1", "i2", "i3"], now=1.0) == lc(5)
        assert view.object_clock("a", "i3") == lc(9)


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------


@given(
    entries=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(1, 50)),
        min_size=1,
        max_size=30,
    ),
    ack=st.integers(0, 50),
)
@settings(max_examples=150, deadline=None)
def test_property_delayed_queue_subsumption_and_ack(entries, ack):
    """The queue always holds exactly the per-object max clock of the
    unacked invalidations."""
    table = IqsLeaseTable(lease_length_ms=10.0, max_delayed=10_000)
    expected = {}
    for obj, n in entries:
        table.enqueue_delayed("v", "j", obj, lc(n))
        expected[obj] = max(expected.get(obj, ZERO_LC), lc(n))
    table.ack_delayed("v", "j", lc(ack))
    expected = {o: c for o, c in expected.items() if c > lc(ack)}
    assert table.pending_delayed("v", "j") == expected


@given(
    drift=st.floats(min_value=0.0, max_value=0.1),
    t0=st.floats(min_value=0.0, max_value=1e6),
    grant_delay=st.floats(min_value=0.0, max_value=1e4),
    L=st.floats(min_value=1.0, max_value=1e5),
)
@settings(max_examples=150, deadline=None)
def test_property_holder_expiry_never_outlives_granter(drift, t0, grant_delay, L):
    """With the two-sided drift corrections, the holder's (local) lease
    window, converted through any admissible clock pair, ends no later
    than the granter's recorded window.  Checked here in the worst case:
    holder clock slowest, granter clock fastest."""
    table = IqsLeaseTable(lease_length_ms=L, max_drift=drift)
    view = OqsLeaseView(max_drift=drift)
    # real time 0 = request send; grant processed grant_delay later
    granter_now_local = (t0 + grant_delay) * (1 + drift)  # fastest granter
    table.grant("v", "j", now=granter_now_local, requestor_time=t0)
    from repro.core.leases import VolumeLeaseGrant

    view.apply_grant(
        "j-side",
        VolumeLeaseGrant(volume="v", length_ms=L, epoch=0, delayed=(), requestor_time=t0),
    )
    # holder local expiry -> real time (slowest holder: local = real*(1-drift))
    holder_local_expiry = view.volume_expiry("v", "j-side")
    holder_real_expiry = (holder_local_expiry - t0) / (1 - drift) + t0 if drift < 1 else 0
    # granter local expiry -> real time (fastest granter)
    granter_local_expiry = table.expiry("v", "j")
    granter_real_expiry = granter_local_expiry / (1 + drift)
    assert granter_real_expiry >= holder_real_expiry - 1e-6


class TestBoundarySemantics:
    """The asymmetric-conservative expiry boundary and the inclusive
    ack-equality contract (see the module docstring of
    ``repro.core.leases``), pinned at ``max_drift=0`` where the two
    sides' clocks agree and the boundary instant is exactly shared."""

    def test_volume_boundary_is_asymmetric_conservative(self):
        """At ``now == expires`` with zero drift, the granter still
        counts the lease as held while the holder already refuses to
        serve — there is no instant where the holder serves a lease the
        granter has written off."""
        table = IqsLeaseTable(lease_length_ms=100.0, max_drift=0.0)
        view = OqsLeaseView(max_drift=0.0)
        grant = table.grant("v", "j", now=0.0, requestor_time=0.0)
        view.apply_grant("i", grant)
        assert table.expiry("v", "j") == view.volume_expiry("v", "i") == 100.0

        # strictly inside / at the boundary / strictly past it:
        for now, granter_holds, holder_serves in [
            (99.999, True, True),
            (100.0, True, False),   # the asymmetric instant
            (100.001, False, False),
        ]:
            assert table.is_expired("v", "j", now) is not granter_holds
            assert view.volume_valid("v", "i", now) is holder_serves
            # safety: never (holder serves and granter has expired it)
            assert not (
                view.volume_valid("v", "i", now)
                and table.is_expired("v", "j", now)
            )

    def test_object_lease_boundary_matches_volume_boundary(self):
        from repro.core.leases import ObjectLeaseTable

        table = ObjectLeaseTable(max_drift=0.0)
        table.grant("a", "j", now=0.0, length_ms=100.0)
        assert not table.is_expired("a", "j", now=100.0)
        assert table.is_expired("a", "j", now=100.001)

        # holder side: object_valid's `expires > now` drops it at 100.0
        view = OqsLeaseView(max_drift=0.0)
        view.apply_grant("i", TestOqsLeaseView().make_grant(t0=0.0, L=1000.0))
        view.apply_renewal("i", "a", epoch=0, lc=lc(1), expires=100.0)
        assert view.object_valid("v", "a", "i", now=99.999)
        assert not view.object_valid("v", "a", "i", now=100.0)

    def test_ack_equality_contract(self):
        """An ack at exactly ``lc`` covers the queued entry at ``lc``:
        ``ack_delayed`` clears it (inclusive ``<=``) and ``has_delayed``
        then reports nothing outstanding — the regression pair for the
        ``pending <= lc`` vs ``pending >= lc`` comparisons."""
        table = IqsLeaseTable(lease_length_ms=100.0)
        table.enqueue_delayed("v", "j", "a", lc(5))

        # before the ack: the queued entry subsumes clocks up to 5
        assert table.has_delayed("v", "j", "a", lc(5))
        assert table.has_delayed("v", "j", "a", lc(4))
        assert not table.has_delayed("v", "j", "a", lc(6))

        # an ack strictly below leaves the entry in place
        table.ack_delayed("v", "j", lc(4))
        assert table.has_delayed("v", "j", "a", lc(5))
        assert table.delayed_count("v", "j") == 1

        # the boundary ack: equality counts as covered on both sides
        table.ack_delayed("v", "j", lc(5))
        assert table.delayed_count("v", "j") == 0
        assert not table.has_delayed("v", "j", "a", lc(5))
        # ZERO_LC trivially "queued" is the only remaining truth
        assert table.has_delayed("v", "j", "a", ZERO_LC)

    def test_ack_tiebreak_is_total_order_not_counter(self):
        """Logical clocks order by (counter, node_id); an ack from a
        different writer with the same counter only covers entries that
        compare <= under the total order."""
        table = IqsLeaseTable(lease_length_ms=100.0)
        table.enqueue_delayed("v", "j", "a", LogicalClock(5, "z"))
        table.ack_delayed("v", "j", LogicalClock(5, "a"))  # "a" < "z"
        assert table.delayed_count("v", "j") == 1
        table.ack_delayed("v", "j", LogicalClock(5, "z"))
        assert table.delayed_count("v", "j") == 0
