"""Tests for QRPC failover behaviour and ROWA-Async replica failover."""

import pytest

from repro.protocols import build_rowa_async_cluster
from repro.quorum import READ, MajorityQuorumSystem, QuorumCall, RowaQuorumSystem, qrpc
from repro.sim import ConstantDelay, Network, Node, Simulator


class EchoServer(Node):
    def on_q(self, msg):
        self.reply(msg, payload={"from": self.node_id})


def make_world(n=5, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(10.0))
    servers = [EchoServer(sim, net, f"n{i}") for i in range(n)]
    client = Node(sim, net, "client")
    return sim, net, servers, client


class TestPreferDropOnRetry:
    def test_dead_preferred_single_node_quorum_fails_over(self):
        """With read quorums of size 1, pinning a dead preferred node on
        every retransmission would never recover; the retry must sample
        fresh (the paper: 'retransmissions are each to a new randomly
        selected quorum')."""
        sim, net, servers, client = make_world(seed=2)
        servers[0].crash()
        system = RowaQuorumSystem([s.node_id for s in servers])

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {},
                prefer="n0", initial_timeout_ms=50.0, max_attempts=5,
            )
            return set(replies)

        replies = sim.run_process(proc())
        assert replies and "n0" not in replies

    def test_alive_preferred_used_first(self):
        sim, net, servers, client = make_world(seed=3)
        system = RowaQuorumSystem([s.node_id for s in servers])

        def proc():
            replies = yield from qrpc(client, system, READ, "q", {}, prefer="n2")
            return set(replies)

        assert sim.run_process(proc()) == {"n2"}


class TestBroadcastEscalation:
    def test_broadcast_after_attempts_reaches_everyone(self):
        """After `broadcast_after` failed attempts, QRPC sends to all
        nodes — the paper's 'more aggressive implementation'."""
        sim, net, servers, client = make_world(seed=4)
        # Only n3 and n4 alive: random quorums of 3 can never succeed,
        # but a broadcast gathers whatever is reachable.
        for s in servers[:3]:
            s.crash()
        system = MajorityQuorumSystem(
            [s.node_id for s in servers], read_size=2, write_size=4
        )

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {},
                initial_timeout_ms=50.0, max_attempts=6, broadcast_after=1,
            )
            return set(replies)

        assert sim.run_process(proc()) == {"n3", "n4"}

    def test_no_broadcast_when_disabled(self):
        sim, net, servers, client = make_world(seed=5)
        system = MajorityQuorumSystem([s.node_id for s in servers])
        sent_to = set()
        net.add_tap(lambda m: sent_to.add(m.dst) if m.kind == "q" else None)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, broadcast_after=10**9,
            )
            return replies

        sim.run_process(proc())
        assert len(sent_to) <= 3  # one sampled quorum, no broadcast


class TestRowaAsyncFailover:
    def test_reads_fail_over_to_another_replica(self):
        sim = Simulator(seed=6)
        net = Network(sim, ConstantDelay(10.0))
        cluster = build_rowa_async_cluster(
            sim, net, ["s0", "s1", "s2"],
            rpc_timeout_ms=100.0, max_attempts=4,
        )
        client = cluster.client("c", prefer="s0")
        cluster.server("s0").crash()

        def scenario():
            yield from client.write("x", "v")
            r = yield from client.read("x")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v"

    def test_no_failover_without_fallbacks(self):
        from repro.protocols import RowaAsyncClient
        from repro.sim import RpcTimeout

        sim = Simulator(seed=7)
        net = Network(sim, ConstantDelay(10.0))
        cluster = build_rowa_async_cluster(sim, net, ["s0", "s1"])
        client = RowaAsyncClient(
            sim, net, "c", "s0", rpc_timeout_ms=100.0,
            max_attempts=2, fallback_replicas=[],
        )
        cluster.server("s0").crash()

        def scenario():
            try:
                yield from client.read("x")
            except RpcTimeout:
                return "stuck"

        assert sim.run_process(scenario(), until=600_000.0) == "stuck"
