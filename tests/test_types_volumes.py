"""Tests for logical clocks and volume maps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.volumes import (
    ExplicitVolumeMap,
    HashVolumeMap,
    SingleVolumeMap,
)
from repro.types import ZERO_LC, LogicalClock


class TestLogicalClock:
    def test_zero_is_smallest(self):
        assert ZERO_LC < LogicalClock(1, "a")
        assert ZERO_LC < LogicalClock(0, "a")

    def test_counter_dominates(self):
        assert LogicalClock(2, "a") > LogicalClock(1, "z")

    def test_node_breaks_ties(self):
        assert LogicalClock(1, "b") > LogicalClock(1, "a")

    def test_next_is_strictly_greater(self):
        lc = LogicalClock(5, "z")
        nxt = lc.next("a")
        assert nxt > lc
        assert nxt.node_id == "a"

    def test_merge(self):
        a, b = LogicalClock(3, "x"), LogicalClock(5, "a")
        assert a.merge(b) == b
        assert b.merge(a) == b

    def test_str(self):
        assert str(LogicalClock(3, "n1")) == "3@n1"
        assert str(ZERO_LC) == "0@-"

    def test_hashable_and_frozen(self):
        lc = LogicalClock(1, "a")
        assert lc in {lc}
        with pytest.raises(Exception):
            lc.counter = 2


lc_strategy = st.builds(
    LogicalClock,
    st.integers(min_value=0, max_value=1000),
    st.text(alphabet="abcdef", min_size=0, max_size=3),
)


@given(a=lc_strategy, b=lc_strategy, c=lc_strategy)
@settings(max_examples=200, deadline=None)
def test_property_total_order(a, b, c):
    """Logical clocks form a total order (trichotomy + transitivity)."""
    assert (a < b) + (a == b) + (a > b) == 1
    if a <= b and b <= c:
        assert a <= c


@given(a=lc_strategy, node=st.text(alphabet="xyz", min_size=1, max_size=2))
@settings(max_examples=100, deadline=None)
def test_property_next_strictly_increases(a, node):
    assert a.next(node) > a


@given(a=lc_strategy, b=lc_strategy)
@settings(max_examples=100, deadline=None)
def test_property_merge_is_max(a, b):
    m = a.merge(b)
    assert m >= a and m >= b
    assert m in (a, b)


class TestVolumeMaps:
    def test_single_volume(self):
        vm = SingleVolumeMap()
        assert vm.volume_of("anything") == "vol0"

    def test_hash_map_deterministic_and_in_range(self):
        vm = HashVolumeMap(4)
        names = set()
        for i in range(100):
            v = vm.volume_of(f"obj{i}")
            assert v == vm.volume_of(f"obj{i}")
            names.add(v)
        assert names <= set(vm.volumes())
        assert len(names) > 1  # spreads across buckets

    def test_hash_map_validates(self):
        with pytest.raises(ValueError):
            HashVolumeMap(0)

    def test_explicit_with_fallback(self):
        vm = ExplicitVolumeMap({"a": "cust-1"}, fallback=HashVolumeMap(2, prefix="h"))
        assert vm.volume_of("a") == "cust-1"
        assert vm.volume_of("b").startswith("h")

    def test_explicit_default_fallback(self):
        vm = ExplicitVolumeMap({"a": "v9"})
        assert vm.volume_of("zzz") == "vol0"


@given(
    num_volumes=st.integers(min_value=1, max_value=16),
    obj=st.text(min_size=0, max_size=20),
)
@settings(max_examples=150, deadline=None)
def test_property_hash_volume_stable_and_bounded(num_volumes, obj):
    vm = HashVolumeMap(num_volumes)
    v = vm.volume_of(obj)
    assert v == vm.volume_of(obj)
    assert v in vm.volumes()
