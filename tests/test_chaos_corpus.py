"""Replay every shrunk repro in ``tests/chaos_corpus/``.

Each corpus entry is a minimized fault schedule that witnessed a bug in
a deliberately weakened protocol variant.  The contract, re-checked here
on every test run:

* replayed **weakened**, the recorded violation types reappear;
* replayed **healthy** (same schedule, same seed, weakener off), the run
  is clean.

Together these pin both directions — the schedule still provokes the
bug, and the bug really lives in the weakened code path rather than in
the schedule or the checkers.
"""

import dataclasses
import glob
import os

import pytest

from repro.chaos import load_repro, run_chaos

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "chaos_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS, f"no repros found in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_weakened_replay_reproduces_violations(path):
    config, schedule, expected = load_repro(path)
    assert config.weaken, "corpus entries must name the weakener they expose"
    result = run_chaos(config, schedule=schedule)
    observed = {v["type"] for v in result.violations}
    assert set(expected) <= observed, (
        f"{os.path.basename(path)}: expected {expected}, observed "
        f"{sorted(observed)}"
    )


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_healthy_replay_is_clean(path):
    config, schedule, _expected = load_repro(path)
    healthy = dataclasses.replace(config, weaken="")
    result = run_chaos(healthy, schedule=schedule)
    assert result.ok, (
        f"{os.path.basename(path)}: healthy replay violated: "
        f"{result.violations}"
    )
