"""QRPC across a *caller* crash: the recovery-race regression tests.

The node layer already discards late deliveries (``crash()`` fails every
pending RPC future and ``_dispatch`` drops unmatched replies), but a
:class:`QuorumCall` is a generator that outlives the crash of the node
it runs on.  Before the epoch guard, replies it had recorded *before*
the crash stayed in ``call.replies`` and could complete a quorum after
recovery with a single fresh responder — a quorum assembled across a
crash, which no quorum-intersection argument covers.

Pinned contract: a reply gathered by the pre-crash incarnation never
counts toward a quorum completed by the recovered one; the first round
after recovery starts from an empty reply set and re-contacts a full
quorum.
"""

from collections import defaultdict

import pytest

from repro.quorum import READ, MajorityQuorumSystem, qrpc
from repro.sim import ConstantDelay, Network, Node, Simulator


class EchoServer(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.requests = 0

    def on_q(self, msg):
        self.requests += 1
        self.reply(msg, payload={"from": self.node_id})


def make_world(n=3, delay=10.0, seed=0, **system_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(delay))
    servers = [EchoServer(sim, net, f"n{i}") for i in range(n)]
    client = Node(sim, net, "client")
    system = MajorityQuorumSystem(
        [s.node_id for s in servers], **system_kwargs
    )
    return sim, net, servers, client, system


def tap_request_batches(sim, net):
    batches = defaultdict(set)
    net.add_tap(
        lambda m: batches[sim.now].add(m.dst) if m.kind == "q" else None
    )
    return batches


class TestCallerCrashRecovery:
    def test_pre_crash_replies_do_not_complete_a_post_recovery_quorum(self):
        """Replies from before the caller's crash are discarded: the
        round after recovery re-contacts a *full* fresh quorum instead
        of only the members that had not answered yet."""
        sim, net, servers, client, system = make_world(read_size=3)
        # Stagger the repliers: n0 answers at t=20, n1 at t=70, n2 at
        # t=300 — the client crashes at t=100 holding {n0, n1}.
        servers[1].set_slow(50.0)
        servers[2].set_slow(280.0)
        sim.schedule(100.0, client.crash)
        sim.schedule(150.0, client.recover)
        batches = tap_request_batches(sim, net)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=500.0
            )
            return (sim.now, set(replies))

        when, replies = sim.run_process(proc())
        assert replies == {"n0", "n1", "n2"}
        # Round 1 at t=0 reached everyone; the post-recovery round at
        # t=500 must again reach everyone — with the bug it asked only
        # n2, splicing n0/n1's pre-crash replies into the new quorum.
        assert batches[0.0] == {"n0", "n1", "n2"}
        assert batches[500.0] == {"n0", "n1", "n2"}
        # Completion waits for the slowest fresh replier of round 2.
        assert when == pytest.approx(500.0 + 10.0 + 280.0 + 10.0)

    def test_reply_in_flight_across_the_crash_is_discarded(self):
        """A reply to a request issued before the crash that *arrives*
        after recovery is dropped at the node layer and never surfaces
        in the call's reply set."""
        sim, net, servers, client, system = make_world(read_size=2)
        servers[0].set_slow(120.0)  # reply would land at t=140
        servers[1].set_slow(120.0)
        servers[2].set_slow(120.0)
        sim.schedule(50.0, client.crash)
        sim.schedule(60.0, client.recover)
        observed = []

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=400.0
            )
            observed.append(dict(replies))
            return sim.now

        when = sim.run_process(proc())
        # Nothing before the t=400 retransmission could have counted:
        # completion is that round's send + slow processing + return.
        assert when == pytest.approx(400.0 + 10.0 + 120.0 + 10.0)
        assert len(observed[0]) >= 2

    def test_crash_free_behaviour_is_unchanged(self):
        """Sanity: without a crash the epoch guard is inert — one round,
        one quorum, no retransmission."""
        sim, net, servers, client, system = make_world()
        batches = tap_request_batches(sim, net)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=400.0
            )
            return (sim.now, len(replies))

        when, count = sim.run_process(proc())
        assert when == pytest.approx(20.0)
        assert count >= 2
        assert list(batches) == [0.0]

    def test_double_crash_still_terminates(self):
        """Two crash/recover cycles during one call: each resets the
        epoch; the call still completes with a post-final-recovery
        quorum rather than hanging or mixing epochs."""
        sim, net, servers, client, system = make_world(read_size=3)
        servers[2].set_slow(200.0)
        for t in (50.0, 700.0):
            sim.schedule(t, client.crash)
        for t in (80.0, 730.0):
            sim.schedule(t, client.recover)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=500.0
            )
            return set(replies)

        assert sim.run_process(proc()) == {"n0", "n1", "n2"}
