"""Tests for the analytical models (Figures 8 and 9)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DelayParams,
    default_grid_shape,
    dqvl_availability,
    dqvl_messages_per_request,
    expected_latency,
    grid_protocol_availability,
    majority_availability,
    majority_messages_per_request,
    majority_protocol_availability,
    primary_backup_availability,
    protocol_messages_per_request,
    protocol_unavailability,
    rowa_async_availability,
    rowa_availability,
    rowa_messages_per_request,
)

P = 0.01  # the paper's per-node unavailability


class TestAvailabilityFormulas:
    def test_majority_single_node(self):
        assert majority_availability(1, 1, 0.1) == pytest.approx(0.9)

    def test_majority_grows_with_n(self):
        values = [
            majority_availability(n, n // 2 + 1, P) for n in (3, 5, 9, 15)
        ]
        assert values == sorted(values)
        assert values[-1] > 1 - 1e-8

    def test_dqvl_formula_matches_paper_structure(self):
        """av = (1-w) min(orq, irq) + w min(iwq, irq), verified manually."""
        w, n = 0.25, 5
        av_orq = 1 - P**n
        av_maj = majority_availability(n, 3, P)
        expected = (1 - w) * min(av_orq, av_maj) + w * min(av_maj, av_maj)
        assert dqvl_availability(w, n, n, P) == pytest.approx(expected)

    def test_dqvl_tracks_majority(self):
        """The paper's key Figure 8 result: DQVL ~ majority quorum."""
        for w in (0.0, 0.25, 0.5, 1.0):
            dq = 1 - dqvl_availability(w, 15, 15, P)
            mj = 1 - majority_protocol_availability(w, 15, P)
            assert dq == pytest.approx(mj, rel=0.5)

    def test_rowa_write_cliff(self):
        """ROWA's write availability collapses as n grows."""
        un_writes = [1 - rowa_availability(1.0, n, P) for n in (3, 9, 15)]
        assert un_writes == sorted(un_writes)
        assert un_writes[-1] > 0.1  # 15 nodes, all must be up

    def test_rowa_async_stale_is_best(self):
        av = rowa_async_availability(0.25, 15, P, allow_stale=True)
        assert 1 - av < 1e-25

    def test_rowa_async_no_stale_is_orders_worse(self):
        """The paper: several orders of magnitude worse than quorums."""
        no_stale = 1 - rowa_async_availability(0.25, 15, P, allow_stale=False)
        quorum = 1 - majority_protocol_availability(0.25, 15, P)
        assert no_stale > quorum * 1e4

    def test_primary_backup_flat(self):
        assert primary_backup_availability(0.1, 3, P) == pytest.approx(1 - P)
        assert primary_backup_availability(0.9, 15, P) == pytest.approx(1 - P)

    def test_grid_shape_near_square(self):
        assert default_grid_shape(16) == (4, 4)
        assert default_grid_shape(15) == (3, 5)
        # prime sizes get a ragged near-square grid, not a 1 x n strip
        assert default_grid_shape(7) == (2, 4)
        assert default_grid_shape(11) == (3, 4)

    def test_grid_availability_between_rowa_and_majority_for_reads(self):
        w = 0.0
        grid = grid_protocol_availability(w, 16, P)
        rowa = rowa_availability(w, 16, P)
        assert grid <= rowa  # read-one beats column covers

    def test_dispatcher_known_protocols(self):
        for name in (
            "dqvl", "majority", "grid", "rowa",
            "rowa_async", "rowa_async_no_stale", "primary_backup",
        ):
            u = protocol_unavailability(name, 0.25, 15, P)
            assert 0.0 <= u <= 1.0

    def test_dispatcher_unknown(self):
        with pytest.raises(KeyError):
            protocol_unavailability("paxos", 0.5, 9, P)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            dqvl_availability(-0.1, 9, 9, P)
        with pytest.raises(ValueError):
            rowa_availability(0.5, 9, 1.5)


@given(
    w=st.floats(min_value=0.0, max_value=1.0),
    n=st.integers(min_value=1, max_value=25),
    p=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=150, deadline=None)
def test_property_availabilities_are_probabilities(w, n, p):
    for name in (
        "dqvl", "majority", "grid", "rowa",
        "rowa_async", "rowa_async_no_stale", "primary_backup",
    ):
        u = protocol_unavailability(name, w, n, p)
        assert -1e-9 <= u <= 1.0 + 1e-9


@given(
    n=st.integers(min_value=3, max_value=21),
    p=st.floats(min_value=0.001, max_value=0.2),
)
@settings(max_examples=60, deadline=None)
def test_property_dqvl_unavailability_close_to_majority(n, p):
    """Figure 8's claim holds across the whole parameter range: DQVL's
    unavailability is within a small constant factor of majority's."""
    for w in (0.1, 0.5, 0.9):
        dq = protocol_unavailability("dqvl", w, n, p)
        mj = protocol_unavailability("majority", w, n, p)
        assert dq <= mj * 2 + 1e-15
        assert dq >= mj * 0.4 - 1e-15


class TestOverheadFormulas:
    def test_majority_counts(self):
        # n=9: quorum 5; read 10 msgs, write 20
        assert majority_messages_per_request(0.0, 9) == pytest.approx(10.0)
        assert majority_messages_per_request(1.0, 9) == pytest.approx(20.0)

    def test_rowa_counts(self):
        assert rowa_messages_per_request(0.0, 9) == pytest.approx(2.0)
        assert rowa_messages_per_request(1.0, 9) == pytest.approx(18.0)

    def test_dqvl_read_only_workload_is_cheap(self):
        """All-read workloads hit: 2 messages per read, like ROWA-Async."""
        msgs = dqvl_messages_per_request(0.0, n_iqs=9, n_oqs=9)
        assert msgs == pytest.approx(2.0)

    def test_dqvl_write_only_workload_suppresses(self):
        """All-write workloads suppress invalidations: the cost is the
        two IQS rounds only."""
        msgs = dqvl_messages_per_request(1.0, n_iqs=9, n_oqs=9)
        assert msgs == pytest.approx(2 * 5 + 2 * 5)

    def test_dqvl_worst_case_at_half(self):
        """Figure 9(a): interleaving peaks DQVL's overhead near w=0.5
        above the majority protocol."""
        points = {
            w: dqvl_messages_per_request(w, n_iqs=9, n_oqs=9)
            for w in (0.1, 0.3, 0.5, 0.7, 0.9)
        }
        assert points[0.5] > points[0.1]
        assert points[0.5] > points[0.9]
        assert points[0.5] > majority_messages_per_request(0.5, 9)

    def test_dqvl_burst_rates_shrink_overhead(self):
        """Measured hit rates (bursty workloads) pull DQVL back under
        its worst case."""
        worst = dqvl_messages_per_request(0.5, n_iqs=9, n_oqs=9)
        bursty = dqvl_messages_per_request(
            0.5, n_iqs=9, n_oqs=9, read_miss_rate=0.1, write_through_rate=0.1
        )
        assert bursty < worst * 0.6

    def test_fig9b_fixed_iqs_keeps_dqvl_comparable(self):
        """Figure 9(b): with IQS fixed at a moderate size, DQVL's
        overhead stays comparable to majority as the OQS grows."""
        for n_oqs in (9, 15, 21, 27):
            dq = dqvl_messages_per_request(0.5, n_iqs=5, n_oqs=n_oqs)
            mj = majority_messages_per_request(0.5, n_oqs)
            assert dq < mj * 3.0

    def test_dispatcher(self):
        for name in ("dqvl", "majority", "grid", "rowa", "rowa_async", "primary_backup"):
            assert protocol_messages_per_request(name, 0.3, 9) > 0
        with pytest.raises(KeyError):
            protocol_messages_per_request("nope", 0.3, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_messages_per_request(-0.1, 9)


class TestResponseTimeModel:
    def test_paper_delay_defaults(self):
        d = DelayParams()
        assert (d.lan, d.cwan, d.swan) == (8.0, 86.0, 80.0)

    def test_dqvl_read_hit_local(self):
        assert expected_latency("dqvl", "read", local=True, miss=False) == 16.0

    def test_dqvl_read_miss_remote(self):
        assert expected_latency("dqvl", "read", local=False, miss=True) == 172.0 + 160.0

    def test_majority_flat_in_locality(self):
        local = expected_latency("majority", "read", local=True)
        remote = expected_latency("majority", "read", local=False)
        assert local == remote == 172.0

    def test_write_ordering_matches_paper(self):
        """ROWA and primary/backup writes are one round; majority and
        DQVL two (plus DQVL's invalidation when writing through)."""
        rowa = expected_latency("rowa", "write")
        pb = expected_latency("primary_backup", "write", primary_local=False)
        maj = expected_latency("majority", "write")
        dq_thru = expected_latency("dqvl", "write", write_through=True)
        dq_sup = expected_latency("dqvl", "write", write_through=False)
        assert rowa < maj
        assert pb < maj
        assert dq_sup == maj
        assert dq_thru > maj

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            expected_latency("zab", "read")


class TestMeanLatencyModel:
    def test_input_validation(self):
        from repro.analysis import expected_mean_latency

        with pytest.raises(ValueError):
            expected_mean_latency("dqvl", -0.1)
        with pytest.raises(ValueError):
            expected_mean_latency("dqvl", 0.5, locality=2.0)
        with pytest.raises(KeyError):
            expected_mean_latency("paxos", 0.5)

    def test_known_endpoints(self):
        from repro.analysis import expected_mean_latency

        # all-read, full locality: DQVL = local hit; majority = quorum RT
        assert expected_mean_latency("dqvl", 0.0, 1.0) == pytest.approx(16.0)
        assert expected_mean_latency("majority", 0.0, 1.0) == pytest.approx(172.0)
        assert expected_mean_latency("rowa_async", 0.3, 1.0) == pytest.approx(16.0)
        # all-write: DQVL = two quorum rounds (suppressed) = majority
        assert expected_mean_latency("dqvl", 1.0, 1.0) == pytest.approx(
            expected_mean_latency("majority", 1.0, 1.0)
        )

    def test_locality_monotonicity_for_dqvl(self):
        from repro.analysis import expected_mean_latency

        values = [
            expected_mean_latency("dqvl", 0.05, loc)
            for loc in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_locality_flat_for_strong_baselines(self):
        from repro.analysis import expected_mean_latency

        for protocol in ("majority", "primary_backup"):
            values = {
                expected_mean_latency(protocol, 0.05, loc)
                for loc in (0.0, 0.5, 1.0)
            }
            assert len(values) == 1

    @pytest.mark.parametrize(
        "protocol", ["dqvl", "majority", "primary_backup", "rowa", "rowa_async"]
    )
    @pytest.mark.parametrize("w,loc", [(0.05, 1.0), (0.5, 1.0), (0.05, 0.5)])
    def test_model_matches_simulation(self, protocol, w, loc):
        """The closed-form workload mean agrees with the simulator to
        within 15% across protocols, write ratios, and localities."""
        from repro.analysis import expected_mean_latency
        from repro.harness import ExperimentConfig, run_response_time

        model = expected_mean_latency(protocol, w, loc)
        sim = run_response_time(
            ExperimentConfig(
                protocol=protocol, write_ratio=w, locality=loc,
                ops_per_client=120, warmup_ops=10, seed=6,
            )
        ).summary.overall.mean
        assert model == pytest.approx(sim, rel=0.15)
