"""Unit tests for the flat event tracer (repro.sim.trace)."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestTracerBasics:
    def test_emit_records_time_source_category(self, sim):
        tracer = Tracer(sim)
        tracer.emit("oqs0", "read_hit", key="k0")
        (event,) = tracer.events
        assert isinstance(event, TraceEvent)
        assert event.time == sim.now
        assert event.source == "oqs0"
        assert event.category == "read_hit"
        assert event.details == {"key": "k0"}

    def test_filter_and_count(self, sim):
        tracer = Tracer(sim)
        tracer.emit("a", "hit")
        tracer.emit("b", "hit")
        tracer.emit("a", "miss")
        assert tracer.count("hit") == 2
        assert [e.source for e in tracer.filter(category="hit")] == ["a", "b"]
        assert [e.category for e in tracer.filter(source="a")] == ["hit", "miss"]
        assert len(tracer.filter(category="hit", source="b")) == 1

    def test_dump_respects_limit(self, sim):
        tracer = Tracer(sim)
        for i in range(5):
            tracer.emit("n", "tick", i=i)
        assert tracer.dump().count("\n") == 4
        assert tracer.dump(limit=2).count("tick") == 2
        assert tracer.dump(limit=None).count("tick") == 5


class TestRingBuffer:
    def test_max_events_evicts_oldest(self, sim):
        tracer = Tracer(sim, max_events=3)
        for i in range(5):
            tracer.emit("n", "tick", i=i)
        assert len(tracer.events) == 3
        assert [e.details["i"] for e in tracer.events] == [2, 3, 4]
        # every accepted event still counts, so eviction is measurable
        assert tracer.emitted == 5
        assert tracer.emitted - len(tracer.events) == 2

    def test_max_events_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Tracer(sim, max_events=0)
        with pytest.raises(ValueError):
            Tracer(sim, max_events=-1)

    def test_unbounded_by_default(self, sim):
        tracer = Tracer(sim)
        for i in range(100):
            tracer.emit("n", "tick")
        assert len(tracer.events) == 100


class TestAllowFilter:
    def test_iterable_of_categories(self, sim):
        tracer = Tracer(sim, allow=["hit", "miss"])
        tracer.emit("a", "hit")
        tracer.emit("a", "renewal")
        tracer.emit("a", "miss")
        assert [e.category for e in tracer.events] == ["hit", "miss"]
        assert tracer.emitted == 2
        assert tracer.dropped == 1

    def test_callable_predicate_sees_source_and_category(self, sim):
        tracer = Tracer(sim, allow=lambda source, cat: source == "oqs0")
        tracer.emit("oqs0", "hit")
        tracer.emit("oqs1", "hit")
        assert [e.source for e in tracer.events] == ["oqs0"]
        assert tracer.dropped == 1

    def test_allow_composes_with_ring_buffer(self, sim):
        tracer = Tracer(sim, max_events=2, allow=["keep"])
        for i in range(4):
            tracer.emit("n", "keep", i=i)
            tracer.emit("n", "drop")
        assert [e.details["i"] for e in tracer.events] == [2, 3]
        assert tracer.emitted == 4
        assert tracer.dropped == 4


class TestNullTracer:
    def test_discards_everything(self):
        tracer = NullTracer()
        tracer.emit("a", "hit", key="k")
        assert tracer.filter() == []
        assert tracer.count("hit") == 0
        assert tracer.dump() == ""

    def test_shared_default_exists(self):
        assert isinstance(NULL_TRACER, NullTracer)
