"""Replay every shrunk schedule repro in ``tests/mc_corpus/``.

Each corpus entry is a ddmin-minimized *scheduling* witness: a choice
list (same-instant event orderings + delivery deferrals) under which a
deliberately weakened protocol variant violates.  The contract,
re-checked here on every test run, mirrors the chaos corpus:

* replayed **weakened**, the recorded violation types reappear, and
  replaying twice is byte-identical (the explorer's determinism
  contract);
* replayed **healthy** (same schedule, same seed, weakener off), the
  run is clean — the schedule is legal behaviour, the bug lives in the
  weakened code path.
"""

import glob
import os

import pytest

from repro.mc import load_mc_repro, replay_mc_repro, run_schedule

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "mc_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS, f"no repros found in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_weakened_replay_reproduces_violations(path):
    config, choices, expected = load_mc_repro(path)
    assert config.weaken, "corpus entries must name the weakener they expose"
    result = run_schedule(config, choices)
    observed = {v["type"] for v in result.violations}
    assert set(expected) <= observed, (
        f"{os.path.basename(path)}: expected {expected}, observed "
        f"{sorted(observed)}"
    )


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_replay_is_byte_identical(path):
    first = replay_mc_repro(path)
    second = replay_mc_repro(path)
    assert first.trace_text == second.trace_text


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_healthy_replay_is_clean(path):
    result = replay_mc_repro(path, healthy=True)
    assert result.ok, (
        f"{os.path.basename(path)}: healthy replay violated: "
        f"{result.violations}"
    )
