"""Tests for the unified ScenarioConfig core and its converters."""

import dataclasses

import pytest

from repro.chaos.campaign import ChaosRunConfig
from repro.core.config import DqvlConfig
from repro.harness.experiment import ExperimentConfig
from repro.mc.runner import McRunConfig
from repro.scenario import SHARED_FIELDS, UNSET, ScenarioConfig


class TestUnset:
    def test_unset_is_falsy_singleton(self):
        assert not UNSET
        assert repr(UNSET) == "UNSET"
        assert type(UNSET)() is UNSET

    def test_default_scenario_leaves_runner_defaults_alone(self):
        # the same UNSET scenario resolves to each runner's own default
        scenario = ScenarioConfig()
        assert scenario.to_mc().num_edges == 2
        assert scenario.to_chaos().num_edges == 3
        assert scenario.to_experiment().num_edges == 9


class TestRoundTrips:
    def test_mc_round_trip_preserves_every_shared_field(self):
        original = McRunConfig(
            protocol="basic_dq", seed=7, weaken="drop_vl_acks",
            num_edges=3, num_clients=4, ops_per_client=9,
            write_ratio=0.5, num_keys=3, lease_length_ms=350.0,
            max_drift=0.01, jitter_ms=2.0, client_max_attempts=None,
            time_limit_ms=70_000.0,
        )
        rebuilt = ScenarioConfig.from_mc(original).to_mc(
            defer_ms=original.defer_ms, max_defer=original.max_defer
        )
        assert rebuilt == original

    def test_chaos_round_trip_preserves_every_shared_field(self):
        original = ChaosRunConfig(
            protocol="majority", seed=3, num_edges=5, num_clients=2,
            ops_per_client=25, write_ratio=0.1, num_keys=6,
            lease_length_ms=900.0, max_drift=0.02, jitter_ms=4.0,
            client_max_attempts=2, time_limit_ms=500_000.0,
            nemeses=("crash_storm",),
        )
        scenario = ScenarioConfig.from_chaos(original)
        for name in SHARED_FIELDS:
            assert getattr(scenario, name) == getattr(original, name)
        rebuilt = scenario.to_chaos(
            nemeses=original.nemeses,
            horizon_ms=original.horizon_ms,
            sample_interval_ms=original.sample_interval_ms,
        )
        assert rebuilt == original

    def test_experiment_round_trip_preserves_shared_core(self):
        original = ExperimentConfig(
            protocol="rowa", seed=5, num_edges=4, num_clients=2,
            ops_per_client=30, write_ratio=0.2,
        )
        scenario = ScenarioConfig.from_experiment(original)
        rebuilt = scenario.to_experiment()
        for name in ("protocol", "seed", "num_edges", "num_clients",
                     "ops_per_client", "write_ratio"):
            assert getattr(rebuilt, name) == getattr(original, name)

    def test_mc_chaos_shim_goes_through_scenario(self):
        """McRunConfig borrows chaos validation via the scenario core;
        the derived config must mirror the mc fields exactly."""
        mc = McRunConfig(seed=4, num_edges=3, lease_length_ms=500.0)
        chaos = mc._chaos_config()
        assert isinstance(chaos, ChaosRunConfig)
        for name in SHARED_FIELDS:
            assert getattr(chaos, name) == getattr(mc, name)
        assert chaos.nemeses == ()

    def test_mc_validation_errors_unchanged_by_shim(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            McRunConfig(protocol="paxos")
        with pytest.raises(ValueError, match="unknown weakener"):
            McRunConfig(weaken="nope")


class TestExperimentMapping:
    def test_weaken_refuses_experiment(self):
        with pytest.raises(ValueError, match="no weakener hook"):
            ScenarioConfig(weaken="drop_vl_acks").to_experiment()

    def test_lease_fields_map_into_dqvl_deploy_kwargs(self):
        # lease must clear DqvlConfig's renewal margin (1000 ms default)
        scenario = ScenarioConfig(
            protocol="dqvl", lease_length_ms=2_000.0, max_drift=0.05,
            client_max_attempts=3,
        )
        config = scenario.to_experiment()
        deploy = config.deploy_kwargs
        assert deploy["client_max_attempts"] == 3
        dqvl = deploy["config"]
        assert isinstance(dqvl, DqvlConfig)
        assert dqvl.lease_length_ms == 2_000.0
        assert dqvl.max_drift == 0.05
        assert dqvl.proactive_renewal  # dqvl keeps the keeper on

    def test_basic_dq_disables_proactive_renewal(self):
        config = ScenarioConfig(
            protocol="basic_dq", lease_length_ms=800.0
        ).to_experiment()
        assert not config.deploy_kwargs["config"].proactive_renewal

    def test_lease_fields_refuse_non_dqvl_protocols(self):
        with pytest.raises(ValueError, match="DQVL-family"):
            ScenarioConfig(protocol="rowa", lease_length_ms=800.0
                           ).to_experiment()

    def test_explicit_deploy_kwargs_override_wins(self):
        config = ScenarioConfig(
            protocol="rowa", lease_length_ms=800.0
        ).to_experiment(deploy_kwargs={})
        assert config.deploy_kwargs == {}

    def test_jitter_maps_into_topology(self):
        config = ScenarioConfig(jitter_ms=7.5).to_experiment()
        assert config.topology.jitter_ms == 7.5

    def test_num_keys_has_no_experiment_equivalent(self):
        config = ScenarioConfig(num_keys=11).to_experiment()
        assert not hasattr(config, "num_keys")


class TestOverridePrecedence:
    def test_explicit_override_beats_scenario_field(self):
        scenario = ScenarioConfig(num_edges=4)
        assert scenario.to_mc(num_edges=2).num_edges == 2
        assert scenario.to_chaos(num_edges=7).num_edges == 7

    def test_scenario_is_frozen_and_replaceable(self):
        scenario = ScenarioConfig(seed=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.seed = 2
        assert dataclasses.replace(scenario, seed=2).seed == 2
