"""Regression tests for the kernel depth sampler (repro.obs.probes).

The timing wheel leaves cancelled timers in place as tombstones until a
sweep collects them, and ``Simulator.timer_depth`` deliberately counts
them (it is the wheel's occupancy, the right signal for sweep
decisions).  The probe's histogram must NOT count them: a cancel-heavy
keeper workload used to inflate ``kernel.timer_depth`` with dead
entries.  Live depth goes to the histogram; the peak tombstone backlog
is tracked separately in the ``kernel.timer_tombstones`` gauge.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import KernelProbe
from repro.sim import Simulator


def _run_cancel_storm(sim, *, timers=400, horizon_ms=1000.0):
    """Schedule a far-out timer block, then cancel almost all of it in
    one burst shortly before the first probe tick — classic renewal
    keeper churn."""
    handles = [
        sim.schedule(horizon_ms + i * 7.0, lambda: None)
        for i in range(timers)
    ]

    def storm():
        for handle in handles[: timers - 4]:
            handle.cancel()

    sim.schedule(50.0, storm)
    # keep the run alive long enough for several probe samples
    sim.schedule(horizon_ms / 2, lambda: None)


class TestCancelStorm:
    def test_histogram_sees_live_depth_not_tombstones(self):
        sim = Simulator(seed=1)
        metrics = MetricsRegistry()
        probe = KernelProbe(sim, metrics, interval_ms=100.0)
        _run_cancel_storm(sim)
        sim.run()

        assert probe.samples > 3
        hist = metrics.find("kernel.timer_depth")
        # Before the fix the storm inflated the high buckets: samples
        # taken while ~396 tombstones awaited a sweep reported depths in
        # the hundreds.  Live depth after the storm is just the probe's
        # own timer plus the few survivors.
        live_after_storm = hist.quantile(0.5)
        assert live_after_storm <= 16.0, (
            f"median sampled depth {live_after_storm} — tombstones leaked "
            "into the live-depth histogram"
        )
        assert hist.max <= 401 + 4  # pre-storm samples still see real depth

    def test_tombstone_gauge_records_peak_backlog(self):
        sim = Simulator(seed=1)
        metrics = MetricsRegistry()
        KernelProbe(sim, metrics, interval_ms=100.0)
        _run_cancel_storm(sim)
        sim.run()

        gauge = metrics.find("kernel.timer_tombstones")
        assert gauge is not None
        # the storm cancels 396 timers; a compaction sweep may collect
        # some before the next sample, but the probe must have seen a
        # substantial backlog at least once
        assert gauge.value > 0

    def test_quiet_workload_reports_zero_tombstones(self):
        sim = Simulator(seed=1)
        metrics = MetricsRegistry()
        probe = KernelProbe(sim, metrics, interval_ms=100.0)
        for i in range(10):
            sim.schedule(100.0 * i + 5.0, lambda: None)
        sim.run()

        assert probe.samples > 0
        assert metrics.find("kernel.timer_tombstones").value == 0.0

    def test_probe_never_reports_negative_depth(self):
        """Clamping: even if tombstone accounting ever over-counts
        relative to timer_depth, the histogram only sees >= 0."""
        sim = Simulator(seed=1)
        metrics = MetricsRegistry()
        probe = KernelProbe(sim, metrics, interval_ms=100.0)
        _run_cancel_storm(sim, timers=50)
        sim.run()
        hist = metrics.find("kernel.timer_depth")
        assert hist.count == probe.samples
        assert hist.sum >= 0.0

    def test_probe_still_stops_with_the_simulation(self):
        """The reschedule condition keys off raw wheel occupancy, so the
        probe keeps sampling while only tombstones remain (a sweep may
        still run) but stops once the wheel truly drains."""
        sim = Simulator(seed=1)
        metrics = MetricsRegistry()
        probe = KernelProbe(sim, metrics, interval_ms=100.0)
        sim.schedule(250.0, lambda: None)
        sim.run()
        final_now = sim.now
        assert probe.samples >= 2
        # no self-perpetuating probe: the sim drained
        assert sim.timer_depth == 0
        assert final_now < 1000.0
