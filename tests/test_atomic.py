"""Tests for the atomic-semantics DQVL client (paper's future work)."""

import pytest

from repro.consistency import History, check_atomic, check_regular
from repro.core import DqvlAtomicClient, DqvlConfig, build_dqvl_cluster
from repro.sim import ConstantDelay, MatrixDelay, Network, Simulator
from repro.workload import BernoulliOpStream, UniformKeyChooser, closed_loop


def make_cluster(seed=0, delay=10.0):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(delay))
    config = DqvlConfig(
        lease_length_ms=2_000.0,
        inval_initial_timeout_ms=100.0,
        qrpc_initial_timeout_ms=100.0,
    )
    cluster = build_dqvl_cluster(
        sim, net,
        [f"iqs{i}" for i in range(3)],
        [f"oqs{i}" for i in range(3)],
        config,
    )
    return sim, net, cluster


def atomic_client(sim, net, cluster, name, prefer):
    return DqvlAtomicClient(
        sim, net, name, cluster.iqs_system, cluster.oqs_system,
        cluster.config, prefer_oqs=prefer,
    )


class TestAtomicClient:
    def test_basic_roundtrip(self):
        sim, net, cluster = make_cluster()
        c = atomic_client(sim, net, cluster, "c0", "oqs0")

        def scenario():
            yield from c.write("x", "v1")
            r = yield from c.read("x")
            return r.value

        assert sim.run_process(scenario()) == "v1"

    def test_write_back_policy_validation(self):
        sim, net, cluster = make_cluster()
        with pytest.raises(ValueError):
            DqvlAtomicClient(
                sim, net, "c", cluster.iqs_system, cluster.oqs_system,
                cluster.config, write_back="sometimes",
            )

    def test_initial_read_skips_write_back(self):
        sim, net, cluster = make_cluster()
        c = atomic_client(sim, net, cluster, "c0", "oqs0")

        def scenario():
            r = yield from c.read("nothing")
            return r.value

        assert sim.run_process(scenario()) is None
        assert c.write_backs_issued == 0

    def test_write_back_cost_one_extra_round(self):
        """Steady-state atomic reads cost one extra client-IQS round on
        top of the regular local hit."""
        sim, net, cluster = make_cluster()
        c = atomic_client(sim, net, cluster, "c0", "oqs0")

        def scenario():
            yield from c.write("x", "v1")
            lats = []
            for _ in range(5):
                r = yield from c.read("x")
                lats.append(r.latency)
            return lats

        lats = sim.run_process(scenario())
        # converges to hit (20) + write-back round (20) = 40
        assert lats[-1] == pytest.approx(40.0)
        assert c.write_backs_issued == 5

    def test_write_back_never_degenerates_to_regular(self):
        sim, net, cluster = make_cluster()
        c = DqvlAtomicClient(
            sim, net, "c0", cluster.iqs_system, cluster.oqs_system,
            cluster.config, prefer_oqs="oqs0", write_back="never",
        )

        def scenario():
            yield from c.write("x", "v1")
            yield from c.read("x")
            r = yield from c.read("x")
            return r.latency

        assert sim.run_process(scenario()) == pytest.approx(20.0)
        assert c.write_backs_issued == 0

    def test_write_back_does_not_invalidate_caches(self):
        """The write-back re-issues the *current* clock; the `renew >= lc`
        classification must suppress invalidations, keeping later reads
        local hits."""
        sim, net, cluster = make_cluster()
        c = atomic_client(sim, net, cluster, "c0", "oqs0")

        def scenario():
            yield from c.write("x", "v1")
            yield from c.read("x")  # miss + write back
            yield from c.read("x")
            snap = net.snapshot()
            r = yield from c.read("x")  # steady state
            return (r.hit, net.stats.diff(snap).by_kind.get("inval", 0))

        hit, invals = sim.run_process(scenario())
        assert hit is True
        assert invals == 0


class TestAtomicSemantics:
    def test_history_is_atomic_under_contention(self):
        """Three atomic clients hammering one object: the recorded
        history must pass the linearizability (new-old inversion)
        checker, not just the regular one."""
        sim, net, cluster = make_cluster(seed=7)
        history = History()
        procs = []
        for k in range(3):
            c = atomic_client(sim, net, cluster, f"c{k}", f"oqs{k}")
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(["hot"]), write_ratio=0.4, label=f"c{k}-"
            )
            procs.append(
                sim.spawn(closed_loop(sim, c, stream, history, num_ops=40))
            )
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        assert check_regular(history) == []
        assert check_atomic(history) == []

    def test_regular_client_can_invert_where_atomic_cannot(self):
        """Deterministic new-old inversion for the *regular* client: a
        slow write is observed by a fast reader at one replica while a
        later reader at another replica still sees the old value.  The
        atomic client's write-back eliminates the anomaly in the same
        scenario."""

        def run(client_cls):
            sim = Simulator(seed=3)
            delays = MatrixDelay({}, default_ms=10.0)
            # the writer is far from everything: its write stays in
            # flight long enough for both reads to happen inside it
            for node in ("iqs0", "iqs1", "iqs2", "oqs0", "oqs1", "oqs2",
                         "r0", "r1"):
                delays.set("w", node, 400.0)
            net = Network(sim, delays)
            config = DqvlConfig(
                lease_length_ms=5_000.0,
                inval_initial_timeout_ms=2_000.0,
                qrpc_initial_timeout_ms=2_000.0,
            )
            cluster = build_dqvl_cluster(
                sim, net,
                ["iqs0", "iqs1", "iqs2"],
                ["oqs0", "oqs1", "oqs2"],
                config,
            )
            writer = cluster.client("w", prefer_oqs="oqs0")
            if client_cls is DqvlAtomicClient:
                r0 = atomic_client(sim, net, cluster, "r0", "oqs0")
                r1 = atomic_client(sim, net, cluster, "r1", "oqs1")
            else:
                r0 = cluster.client("r0", prefer_oqs="oqs0")
                r1 = cluster.client("r1", prefer_oqs="oqs1")
            history = History()

            def warm():
                w = yield from writer.write("x", "old")
                history.record_write(w)
                a = yield from r0.read("x")
                history.record_read(a)
                b = yield from r1.read("x")
                history.record_read(b)

            sim.run_process(warm(), until=100_000.0)

            # now the slow concurrent write, with reads inside its window
            def slow_write():
                w = yield from writer.write("x", "new")
                history.record_write(w)

            def reads():
                yield sim.sleep(900.0)  # the write reached IQS by now
                a = yield from r0.read("x")  # r0 misses (invalidated)
                history.record_read(a)
                b = yield from r1.read("x")
                history.record_read(b)
                return (a.value, b.value)

            wp = sim.spawn(slow_write())
            rp = sim.spawn(reads())
            sim.run(until=600_000.0)
            assert wp.done and rp.done
            return history, rp.value

        history, values = run(type(None))  # regular clients
        # the regular run may or may not produce the inversion depending
        # on invalidation interleaving; assert it is at least regular
        assert check_regular(history) == []

        atomic_history, atomic_values = run(DqvlAtomicClient)
        assert check_regular(atomic_history) == []
        assert check_atomic(atomic_history) == []
