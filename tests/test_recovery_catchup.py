"""Post-crash catch-up: ``Node.on_recover`` hooks x in-flight timers x
the chaos ``crash`` fault.

With resilience attached and durable state, a recovered OQS node must
not serve local hits from its pre-crash cache until the anti-entropy
catch-up has revalidated it against an IQS read quorum — invalidations
sent while the node was down were never delivered, so the cache may be
arbitrarily stale even though every entry *looks* lease-covered.
"""

import pytest

from repro.chaos.faults import Fault, FaultSchedule
from repro.core import DqvlConfig, build_dqvl_cluster
from repro.resilience import NodeResilience, ResilienceConfig
from repro.sim import ConstantDelay, Network, Simulator, crash_for


def make_cluster(seed=0, n=3, lease_ms=1_000.0, volatile=False,
                 resilience=True, **res_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(15.0))
    config = DqvlConfig(
        lease_length_ms=lease_ms,
        inval_initial_timeout_ms=100.0,
        qrpc_initial_timeout_ms=100.0,
        volatile_oqs_recovery=volatile,
    )
    cluster = build_dqvl_cluster(
        sim, net,
        [f"iqs{i}" for i in range(n)],
        [f"oqs{i}" for i in range(n)],
        config,
    )
    if resilience:
        for node in cluster.oqs_nodes:
            node.resilience = NodeResilience(
                sim, node.node_id, ResilienceConfig(**res_kwargs)
            )
    return sim, net, cluster


class TestCatchUp:
    def test_recovery_revalidates_before_hits_resume(self):
        """A write lands while the caching node is down; its recovered
        cache still holds the old value under still-valid-looking
        leases.  Catch-up must repair it before any hit is served."""
        sim, net, cluster = make_cluster()
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")
        node = cluster.oqs_node("oqs0")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            assert node.local_value("x")[0] == "v1"
            node.crash()
            yield sim.sleep(2_000.0)  # oqs0's lease lapses...
            yield from c1.write("x", "v2")  # ...so this write completes
            node.recover()
            assert node.catchups_started == 1
            assert node._catching_up is True
            # A read racing the catch-up is served as a miss (it pays
            # the validation round trip) — never as a stale hit.
            r = yield from c0.read("x")
            assert r.hit is False
            assert r.value == "v2"
            yield sim.sleep(200.0)
            assert node._catching_up is False
            assert node.local_value("x")[0] == "v2"
            r2 = yield from c0.read("x")
            return (r2.hit, r2.value)

        hit, value = sim.run_process(scenario(), until=600_000.0)
        assert (hit, value) == (True, "v2")  # hits resume once caught up

    def test_volatile_recovery_has_nothing_to_catch_up(self):
        """Amnesia recovery empties the cache — there is nothing stale
        to revalidate, so no catch-up sweep starts."""
        sim, net, cluster = make_cluster(volatile=True)
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        node = cluster.oqs_node("oqs0")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            node.crash()
            node.recover()
            assert node.local_value("x")[0] is None
            r = yield from c0.read("x")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v1"
        assert node.catchups_started == 0
        assert node._catching_up is False

    def test_empty_cache_skips_the_sweep(self):
        sim, net, cluster = make_cluster()
        node = cluster.oqs_node("oqs0")
        node.crash()
        node.recover()
        assert node.catchups_started == 0
        assert node._catching_up is False

    def test_no_resilience_means_no_catchup(self):
        """Without the layer attached, recovery behaves as the seed
        protocol did: the cache serves again immediately."""
        sim, net, cluster = make_cluster(resilience=False)
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        node = cluster.oqs_node("oqs0")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            node.crash()
            node.recover()
            r = yield from c0.read("x")
            return r.hit

        assert sim.run_process(scenario(), until=600_000.0) is True
        assert node.catchups_started == 0

    def test_catchup_retries_until_the_quorum_is_reachable(self):
        """Recovery behind a partition: the sweep keeps retrying (hits
        stay disabled the whole time) and completes once healed."""
        sim, net, cluster = make_cluster(catchup_retry_ms=300.0)
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")
        node = cluster.oqs_node("oqs0")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            node.crash()
            yield sim.sleep(2_000.0)
            yield from c1.write("x", "v2")
            net.partition(
                ["oqs0"],
                ["c0", "c1", "iqs0", "iqs1", "iqs2", "oqs1", "oqs2"],
            )
            node.recover()
            assert node._catching_up is True
            yield sim.sleep(5_000.0)
            assert node._catching_up is True  # still cut off, still retrying
            net.heal()
            # The stuck validation's backoff interval grew during the
            # partition; allow for one full capped interval after heal.
            yield sim.sleep(10_000.0)
            assert node._catching_up is False
            return node.local_value("x")[0]

        assert sim.run_process(scenario(), until=600_000.0) == "v2"
        assert node.catchups_started == 1

    def test_second_crash_abandons_the_sweep_and_recovery_restarts_it(self):
        sim, net, cluster = make_cluster(catchup_retry_ms=300.0)
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        node = cluster.oqs_node("oqs0")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            node.crash()
            yield sim.sleep(2_000.0)
            net.partition(
                ["oqs0"],
                ["c0", "iqs0", "iqs1", "iqs2", "oqs1", "oqs2"],
            )
            node.recover()  # sweep #1 starts, stuck behind the partition
            yield sim.sleep(1_000.0)
            node.crash()  # mid-sweep: the epoch guard abandons sweep #1
            yield sim.sleep(1_000.0)
            net.heal()
            node.recover()  # sweep #2 starts fresh and completes
            yield sim.sleep(2_000.0)
            return (node.catchups_started, node._catching_up)

        started, catching = sim.run_process(scenario(), until=600_000.0)
        assert started == 2
        assert catching is False


class TestTimersAcrossCrash:
    def test_pre_crash_timer_never_fires_on_the_recovered_incarnation(self):
        """``Node.after`` epoch guard: a callback armed before the crash
        must not fire after recovery, even though recovery happens
        before the timer's due time."""
        sim, net, cluster = make_cluster()
        node = cluster.oqs_node("oqs0")
        fired = []
        node.after(1_000.0, lambda: fired.append(sim.now))
        crash_for(sim, node, at=400.0, duration=200.0)
        sim.run(until=5_000.0)
        assert fired == []

    def test_post_recovery_timer_fires_normally(self):
        sim, net, cluster = make_cluster()
        node = cluster.oqs_node("oqs0")
        fired = []
        crash_for(sim, node, at=400.0, duration=200.0)
        sim.schedule(700.0, lambda: node.after(300.0, lambda: fired.append(sim.now)))
        sim.run(until=5_000.0)
        assert fired == [pytest.approx(1_000.0)]


class TestChaosCrashFault:
    def test_chaos_crash_window_drives_the_same_recovery_path(self):
        """A chaos ``crash`` fault window (as the nemesis generates)
        must exercise exactly the on_recover path: timer suppression,
        cache repair, and the catch-up counter."""
        sim, net, cluster = make_cluster()
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")
        node = cluster.oqs_node("oqs0")
        schedule = FaultSchedule([
            Fault.make("crash", start=500.0, duration=2_500.0, nodes=("oqs0",)),
        ])
        schedule.install(sim, net)
        fired = []

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            node.after(1_000.0, lambda: fired.append(sim.now))  # dies with the crash
            yield sim.sleep(2_000.0)  # crash hits at t=500
            yield from c1.write("x", "v2")
            yield sim.sleep(2_000.0)  # recovery at t=3000, then catch-up
            r = yield from c0.read("x")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v2"
        assert node.catchups_started == 1
        assert node._catching_up is False
        assert node.local_value("x")[0] == "v2"
        assert fired == []
