"""Tests for the session-guarantee checkers, and protocol conformance."""

import pytest

from repro.consistency import (
    History,
    check_monotonic_reads,
    check_read_your_writes,
    check_session_guarantees,
)
from repro.consistency.history import Op
from repro.types import ZERO_LC, LogicalClock


def lc(n, node="w"):
    return LogicalClock(n, node)


def w(key, n, start, client="c"):
    return Op("write", key, f"v{n}", lc(n), start, start + 1, client)


def r(key, n, start, client="c"):
    return Op("read", key, f"v{n}" if n else None,
              lc(n) if n else ZERO_LC, start, start + 1, client)


def history_of(*ops):
    h = History()
    h.ops = list(ops)
    return h


class TestReadYourWrites:
    def test_fresh_session_reads_anything(self):
        assert check_read_your_writes(history_of(r("x", 0, 0))) == []

    def test_own_write_then_fresh_read_ok(self):
        h = history_of(w("x", 3, 0), r("x", 3, 10))
        assert check_read_your_writes(h) == []

    def test_newer_than_own_write_ok(self):
        h = history_of(w("x", 3, 0), r("x", 7, 10))
        assert check_read_your_writes(h) == []

    def test_missing_own_write_violates(self):
        h = history_of(w("x", 3, 0), r("x", 1, 10))
        violations = check_read_your_writes(h)
        assert len(violations) == 1
        assert violations[0].guarantee == "read-your-writes"
        assert "read-your-writes" in str(violations[0])

    def test_per_key_scoping(self):
        h = history_of(w("x", 3, 0), r("y", 0, 10))
        assert check_read_your_writes(h) == []

    def test_per_client_scoping(self):
        h = history_of(
            w("x", 3, 0, client="alice"),
            r("x", 0, 10, client="bob"),  # bob never wrote: fine
        )
        assert check_read_your_writes(h) == []

    def test_failed_ops_ignored(self):
        h = history_of(
            Op("write", "x", "v3", lc(3), 0, 1, "c", ok=False),
            r("x", 0, 10),
        )
        assert check_read_your_writes(h) == []


class TestMonotonicReads:
    def test_forward_progress_ok(self):
        h = history_of(r("x", 1, 0), r("x", 1, 10), r("x", 4, 20))
        assert check_monotonic_reads(h) == []

    def test_regression_violates(self):
        h = history_of(r("x", 4, 0), r("x", 1, 10))
        violations = check_monotonic_reads(h)
        assert len(violations) == 1
        assert violations[0].guarantee == "monotonic-reads"

    def test_other_clients_do_not_interfere(self):
        h = history_of(
            r("x", 4, 0, client="alice"),
            r("x", 1, 10, client="bob"),
        )
        assert check_monotonic_reads(h) == []

    def test_combined_checker_unions(self):
        h = history_of(w("x", 5, 0), r("x", 7, 10), r("x", 2, 20))
        violations = check_session_guarantees(h)
        kinds = {v.guarantee for v in violations}
        assert kinds == {"read-your-writes", "monotonic-reads"}


class TestProtocolsSessionConformance:
    def _run(self, protocol, locality, seed=19):
        from repro.harness import ExperimentConfig, run_response_time

        result = run_response_time(
            ExperimentConfig(
                protocol=protocol, write_ratio=0.3, locality=locality,
                ops_per_client=60, warmup_ops=5, seed=seed,
            )
        )
        return result.full_history()

    @pytest.mark.parametrize("protocol", ["dqvl", "majority", "rowa", "primary_backup"])
    def test_strong_protocols_keep_session_guarantees(self, protocol):
        history = self._run(protocol, locality=0.5)
        assert check_session_guarantees(history) == []

    def test_rowa_async_violates_when_redirected(self):
        """The user-visible ROWA-Async failure: a redirected session does
        not see its own writes / sees time run backwards.

        With the paper's delays an eager push always beats a sequential
        client across the WAN, so the anomaly needs what real systems
        have: lost pushes (here) or propagation lag.  One lost update is
        enough for the session to read past its own write.
        """
        from repro.protocols import build_rowa_async_cluster
        from repro.sim import ConstantDelay, Network, Simulator

        sim = Simulator(seed=4)
        net = Network(sim, ConstantDelay(20.0), loss_probability=0.25)
        cluster = build_rowa_async_cluster(
            sim, net, ["s0", "s1", "s2"], gossip_interval_ms=30_000.0,
        )
        history = History()

        def roaming_session():
            client = cluster.client("alice", prefer="s0")
            for i in range(12):
                # alternate replicas, as a redirected session would
                client.replica_id = f"s{i % 3}"
                w_res = yield from client.write("cart", f"v{i}")
                history.record_write(w_res)
                client.replica_id = f"s{(i + 1) % 3}"
                r_res = yield from client.read("cart")
                history.record_read(r_res)

        sim.run_process(roaming_session(), until=3_600_000.0)
        violations = check_session_guarantees(history)
        assert len(violations) > 0

    def test_rowa_async_fine_with_full_locality(self):
        """Pinned to one replica, the epidemic store is session-safe —
        exactly the locality assumption the paper leans on."""
        history = self._run("rowa_async", locality=1.0)
        assert check_session_guarantees(history) == []
