"""Tests for the history recorder and the semantics checkers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import (
    History,
    check_atomic,
    check_regular,
    staleness_report,
)
from repro.consistency.history import Op
from repro.types import ZERO_LC, LogicalClock, ReadResult, WriteResult


def lc(n, node="w"):
    return LogicalClock(n, node)


def w(key, n, start, end, ok=True, client="c"):
    return Op("write", key, f"v{n}", lc(n), start, end, client, ok)


def r(key, n, start, end, ok=True, client="c"):
    value = f"v{n}" if n else None
    return Op("read", key, value, lc(n) if n else ZERO_LC, start, end, client, ok)


def history_of(*ops):
    h = History()
    h.ops = list(ops)
    return h


class TestHistoryRecorder:
    def test_record_and_query(self):
        h = History()
        h.record_write(WriteResult("x", "v", lc(1), 0.0, 10.0, client="c"))
        h.record_read(ReadResult("x", "v", lc(1), 10.0, 20.0, client="c", hit=True))
        h.record_failure("read", "y", 20.0, 30.0, "c")
        assert len(h) == 3
        assert h.keys() == ["x", "y"]
        assert len(h.reads("x")) == 1
        assert len(h.writes("x")) == 1
        assert len(h.failures()) == 1
        assert h.reads("x")[0].hit is True
        assert len(list(h.successful())) == 2


class TestRegularChecker:
    def test_empty_history_ok(self):
        assert check_regular(history_of()) == []

    def test_read_of_initial_value_ok(self):
        assert check_regular(history_of(r("x", 0, 0, 10))) == []

    def test_read_of_last_completed_write_ok(self):
        h = history_of(w("x", 1, 0, 10), r("x", 1, 20, 30))
        assert check_regular(h) == []

    def test_read_of_older_write_is_violation(self):
        h = history_of(
            w("x", 1, 0, 10),
            w("x", 2, 20, 30),
            r("x", 1, 40, 50),  # stale: write 2 completed at 30
        )
        violations = check_regular(h)
        assert len(violations) == 1
        assert violations[0].read.lc == lc(1)

    def test_read_of_initial_after_write_is_violation(self):
        h = history_of(w("x", 1, 0, 10), r("x", 0, 20, 30))
        assert len(check_regular(h)) == 1

    def test_concurrent_write_value_ok_either_way(self):
        # read [15, 25] overlaps write2 [20, 30]
        h_old = history_of(w("x", 1, 0, 10), w("x", 2, 20, 30), r("x", 1, 15, 25))
        h_new = history_of(w("x", 1, 0, 10), w("x", 2, 20, 30), r("x", 2, 15, 25))
        assert check_regular(h_old) == []
        assert check_regular(h_new) == []

    def test_unrelated_value_during_concurrency_is_violation(self):
        h = history_of(
            w("x", 1, 0, 10),
            w("x", 2, 20, 30),
            w("x", 3, 40, 50),
            r("x", 1, 45, 55),  # concurrent with w3 only; w2 completed
        )
        assert len(check_regular(h)) == 1

    def test_failed_write_may_be_observed_forever(self):
        h = history_of(
            w("x", 1, 0, 10),
            w("x", 2, 20, 30, ok=False),  # timed out; effect unknown
            r("x", 2, 100, 110),
        )
        assert check_regular(h) == []

    def test_failed_write_with_unknown_clock_matched_by_value(self):
        """A failed write usually records no clock (the client gave up
        before learning it); when its value surfaces under the clock a
        server assigned, the read is legal — matched by value."""
        h = history_of(
            w("x", 1, 0, 10),
            Op("write", "x", "v2", ZERO_LC, 20, 30, "c", ok=False),
            Op("read", "x", "v2", lc(5, node="srv"), 100, 110, "c"),
        )
        assert check_regular(h) == []

    def test_unrelated_value_not_excused_by_in_doubt_write(self):
        h = history_of(
            w("x", 1, 0, 10),
            Op("write", "x", "v2", ZERO_LC, 20, 30, "c", ok=False),
            Op("read", "x", "v9", lc(5, node="srv"), 100, 110, "c"),
        )
        assert len(check_regular(h)) == 1

    def test_in_doubt_none_value_does_not_excuse_initial_reads(self):
        """A failed write recorded without its value must not blanket-
        excuse reads of the (None) initial value under a bogus clock."""
        h = history_of(
            w("x", 1, 0, 10),
            Op("write", "x", None, ZERO_LC, 20, 30, "c", ok=False),
            Op("read", "x", None, lc(5, node="srv"), 100, 110, "c"),
        )
        assert len(check_regular(h)) == 1

    def test_failure_record_keeps_attempted_write_value(self):
        h = History()
        h.record_failure("write", "x", 0.0, 10.0, "c", value="v1")
        assert h.failures()[0].value == "v1"

    def test_failed_read_not_checked(self):
        h = history_of(w("x", 1, 0, 10), r("x", 9, 20, 30, ok=False))
        assert check_regular(h) == []

    def test_per_key_independence(self):
        h = history_of(w("x", 1, 0, 10), r("y", 0, 20, 30))
        assert check_regular(h) == []

    def test_among_completed_writes_highest_clock_wins(self):
        """Two writes both completed; the one with the higher clock is
        the register's value even if it finished earlier in real time."""
        h = history_of(
            # w2 (higher clock) completes before w1 does
            Op("write", "x", "v2", lc(2), 0.0, 5.0, "a"),
            Op("write", "x", "v1", lc(1), 0.0, 20.0, "b"),
            r("x", 2, 30, 40),
        )
        assert check_regular(h) == []
        h_bad = history_of(
            Op("write", "x", "v2", lc(2), 0.0, 5.0, "a"),
            Op("write", "x", "v1", lc(1), 0.0, 20.0, "b"),
            r("x", 1, 30, 40),
        )
        assert len(check_regular(h_bad)) == 1


class TestAtomicChecker:
    def test_regular_but_not_atomic(self):
        """New-old inversion: r1 sees w2, then r2 (after r1) sees w1
        while w2 is still in flight — regular allows it, atomic not."""
        h = history_of(
            w("x", 1, 0, 10),
            Op("write", "x", "v2", lc(2), 20, 60, "b"),  # long write
            r("x", 2, 25, 30),  # sees the concurrent write
            r("x", 1, 35, 40),  # then an older value: inversion
        )
        assert check_regular(h) == []
        violations = check_atomic(h)
        assert len(violations) == 1
        assert "inversion" in violations[0].reason

    def test_atomic_history_passes(self):
        h = history_of(
            w("x", 1, 0, 10),
            r("x", 1, 15, 20),
            w("x", 2, 25, 35),
            r("x", 2, 40, 45),
        )
        assert check_atomic(h) == []

    def test_concurrent_reads_may_disagree(self):
        h = history_of(
            w("x", 1, 0, 10),
            Op("write", "x", "v2", lc(2), 20, 60, "b"),
            Op("read", "x", "v2", lc(2), 25, 45, "r1"),
            Op("read", "x", "v1", lc(1), 30, 50, "r2"),  # overlaps r1
        )
        assert check_atomic(h) == []


class TestStaleness:
    def test_no_writes_no_staleness(self):
        report = staleness_report(history_of(r("x", 0, 0, 10)))
        assert report.stale_reads == 0
        assert report.stale_fraction == 0.0

    def test_stale_read_measured(self):
        h = history_of(
            w("x", 1, 0, 10),
            w("x", 2, 20, 30),
            r("x", 1, 100, 110),
        )
        report = staleness_report(h)
        assert report.total_reads == 1
        assert report.stale_reads == 1
        assert report.max_staleness_ms == pytest.approx(70.0)  # 100 - 30
        assert report.mean_version_lag == 1.0

    def test_fresh_reads_not_stale(self):
        h = history_of(w("x", 1, 0, 10), r("x", 1, 20, 30))
        report = staleness_report(h)
        assert report.stale_reads == 0


# ---------------------------------------------------------------------------
# property test: the checker accepts exactly the construction it defines
# ---------------------------------------------------------------------------


@given(
    data=st.data(),
    num_writes=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_property_reads_of_legal_values_always_accepted(data, num_writes):
    """Construct sequential writes, then reads that return either the
    last completed write or a concurrent one; the checker must accept."""
    ops = []
    t = 0.0
    for n in range(1, num_writes + 1):
        duration = data.draw(st.floats(min_value=1.0, max_value=20.0))
        ops.append(w("x", n, t, t + duration))
        t += duration + data.draw(st.floats(min_value=0.0, max_value=5.0))
    # a read concurrent with nothing, after all writes
    ops.append(r("x", num_writes, t + 1, t + 2))
    # a read concurrent with the last write
    last = ops[num_writes - 1]
    mid = (last.start + last.end) / 2
    choice = data.draw(st.sampled_from([num_writes, num_writes - 1]))
    if choice:
        ops.append(r("x", choice, mid, last.end + 1))
    assert check_regular(history_of(*ops)) == []


@given(
    gap=st.floats(min_value=0.1, max_value=100.0),
    stale_n=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50, deadline=None)
def test_property_strictly_stale_reads_always_rejected(gap, stale_n):
    """A read strictly after 5 completed writes returning write #stale_n
    (< 5) is always a violation."""
    ops = []
    t = 0.0
    for n in range(1, 6):
        ops.append(w("x", n, t, t + 1))
        t += 1 + gap
    ops.append(r("x", stale_n, t + gap, t + gap + 1))
    assert len(check_regular(history_of(*ops))) == 1
