"""End-to-end acceptance for the resilience layer: under a crash-storm
nemesis, DQVL with resilience serves strictly more successful reads than
baseline, every degraded read is within its advertised staleness bound,
and same-seed runs are byte-identical.

The campaign parameters here are the decisive ones: a tight client
retry budget (2 attempts) and a 20 s fault horizon make the baseline
actually drop reads during crash windows, so "strictly more" is a real
comparison rather than 0-vs-0.
"""

import pytest

from repro.chaos.campaign import ChaosRunConfig, run_chaos

SEEDS = range(5)


def storm_config(seed, resilience, **overrides):
    kwargs = dict(
        protocol="dqvl",
        seed=seed,
        nemeses=("crash_storm",),
        horizon_ms=20_000.0,
        client_max_attempts=2,
        mode="frontend",
        resilience=resilience,
    )
    kwargs.update(overrides)
    return ChaosRunConfig(**kwargs)


@pytest.fixture(scope="module")
def storm_results():
    """Baseline and resilience runs for every seed (computed once)."""
    out = {}
    for seed in SEEDS:
        out[seed] = (
            run_chaos(storm_config(seed, resilience=False)),
            run_chaos(storm_config(seed, resilience=True)),
        )
    return out


class TestAvailabilityUnderCrashStorm:
    def test_no_violations_in_either_mode(self, storm_results):
        for seed, (base, resil) in storm_results.items():
            assert base.violations == [], f"seed {seed} baseline: {base.violations}"
            assert resil.violations == [], f"seed {seed} resilience: {resil.violations}"

    def test_resilience_serves_strictly_more_successful_reads(self, storm_results):
        for seed, (base, resil) in storm_results.items():
            b = base.stats["availability"]
            r = resil.stats["availability"]
            assert r["reads_successful"] > b["reads_successful"], (
                f"seed {seed}: resilience {r['reads_successful']} <= "
                f"baseline {b['reads_successful']}"
            )

    def test_degraded_reads_are_counted_separately_and_in_bound(self, storm_results):
        some_degraded = False
        for seed, (base, resil) in storm_results.items():
            b = base.stats["availability"]
            r = resil.stats["availability"]
            assert b["reads_degraded"] == 0  # baseline has no degraded mode
            assert (
                r["reads_successful"]
                == r["reads_healthy"] + r["reads_degraded"]
            )
            stale = r["degraded_staleness_ms"]
            assert stale["count"] == r["reads_degraded"]
            if r["reads_degraded"]:
                some_degraded = True
                assert stale["max"] <= 8_000.0  # the advertised bound
        # The decisive config actually exercises degraded serving
        # somewhere across the seed battery.
        assert some_degraded

    def test_availability_report_structure(self, storm_results):
        base, resil = storm_results[0]
        avail = resil.stats["availability"]
        fe = avail["front_ends"]
        assert fe["requests_served"] > 0
        res = avail["resilience"]
        for key in ("suspicions", "hedges_sent", "adaptive_rounds",
                    "catchups_started"):
            assert res[key] >= 0
        assert avail["timeline"], "one entry per fault window expected"
        for entry in avail["timeline"]:
            assert set(entry) >= {
                "fault", "start", "end", "reads_healthy", "reads_degraded",
                "reads_failed", "writes_ok", "writes_failed",
            }
        # Baseline reports the same shape with the resilience layer off.
        assert base.stats["availability"]["resilience"]["hedges_sent"] == 0


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        a = run_chaos(storm_config(1, resilience=True, trace=True))
        b = run_chaos(storm_config(1, resilience=True, trace=True))
        assert a.trace_jsonl == b.trace_jsonl
        assert a.trace_chrome == b.trace_chrome
        assert a.stats == b.stats
        assert a.violations == b.violations

    def test_resilience_does_not_perturb_the_baseline_stream(self):
        """The layer draws from dedicated streams only: a baseline run
        is byte-identical whether or not the resilience code exists in
        the process (regression guard: compare two baseline runs
        bracketing a resilience run)."""
        a = run_chaos(storm_config(2, resilience=False, trace=True))
        run_chaos(storm_config(2, resilience=True))
        b = run_chaos(storm_config(2, resilience=False, trace=True))
        assert a.trace_jsonl == b.trace_jsonl


class TestConfigValidation:
    def test_mode_must_be_known(self):
        with pytest.raises(ValueError, match="mode"):
            ChaosRunConfig(mode="proxy")

    def test_resilience_requires_a_dq_protocol(self):
        with pytest.raises(ValueError, match="resilience"):
            ChaosRunConfig(protocol="majority", resilience=True)

    def test_qrpc_overrides_require_a_dq_protocol(self):
        with pytest.raises(ValueError, match="qrpc"):
            ChaosRunConfig(protocol="majority", qrpc_initial_timeout_ms=100.0)

    def test_qrpc_cap_not_below_initial(self):
        with pytest.raises(ValueError, match="qrpc_max_timeout_ms"):
            ChaosRunConfig(
                qrpc_initial_timeout_ms=500.0, qrpc_max_timeout_ms=100.0
            )

    def test_degraded_staleness_must_be_positive(self):
        with pytest.raises(ValueError, match="degraded_max_staleness_ms"):
            ChaosRunConfig(resilience=True, degraded_max_staleness_ms=0.0)
