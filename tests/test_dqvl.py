"""Protocol tests for DQVL (dual quorum with volume leases).

These exercise the scenarios of the paper's Section 3.2: read hits and
misses, write suppression and write-through, delayed invalidations
behind expired volume leases, writes completing by waiting out a lease,
epoch-based garbage collection, and the lease/callback invariant.
"""

import pytest

from repro.core import DqvlConfig, build_dqvl_cluster
from repro.core.volumes import ExplicitVolumeMap
from repro.sim import ConstantDelay, DriftingClock, Network, Simulator
from repro.types import ZERO_LC


def make_cluster(
    n_iqs=3,
    n_oqs=3,
    delay=10.0,
    lease_ms=2000.0,
    seed=0,
    config=None,
    **config_kwargs,
):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(delay))
    config = config or DqvlConfig(
        lease_length_ms=lease_ms,
        inval_initial_timeout_ms=100.0,
        qrpc_initial_timeout_ms=100.0,
        **config_kwargs,
    )
    cluster = build_dqvl_cluster(
        sim,
        net,
        [f"iqs{i}" for i in range(n_iqs)],
        [f"oqs{i}" for i in range(n_oqs)],
        config,
    )
    return sim, net, cluster


class TestReadWriteBasics:
    def test_read_before_any_write_returns_initial(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            r = yield from client.read("x")
            return (r.value, r.lc)

        assert sim.run_process(scenario()) == (None, ZERO_LC)

    def test_write_then_read(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            w = yield from client.write("x", "v1")
            r = yield from client.read("x")
            return (w.lc, r.value, r.lc)

        lc, value, rlc = sim.run_process(scenario())
        assert value == "v1"
        assert rlc == lc

    def test_repeat_reads_hit_locally(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            results = []
            for _ in range(4):
                r = yield from client.read("x")
                results.append((r.hit, r.latency))
            return results

        results = sim.run_process(scenario())
        assert results[0] == (False, 40.0)  # miss: client+renewal round
        for hit, latency in results[1:]:
            assert hit is True
            assert latency == 20.0  # one client round trip

    def test_read_after_write_misses_then_hits(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            yield from client.write("x", "v2")
            r1 = yield from client.read("x")
            r2 = yield from client.read("x")
            return (r1.value, r1.hit, r2.value, r2.hit)

        assert sim.run_process(scenario()) == ("v2", False, "v2", True)

    def test_write_clocks_increase_across_clients(self):
        sim, net, cluster = make_cluster()
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")

        def scenario():
            w1 = yield from c0.write("x", "a")
            w2 = yield from c1.write("x", "b")
            w3 = yield from c0.write("x", "c")
            return [w1.lc, w2.lc, w3.lc]

        lcs = sim.run_process(scenario())
        assert lcs[0] < lcs[1] < lcs[2]

    def test_cross_client_read_sees_other_writer(self):
        sim, net, cluster = make_cluster()
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")

        def scenario():
            yield from c0.write("x", "from-c0")
            r = yield from c1.read("x")
            return r.value

        assert sim.run_process(scenario()) == "from-c0"

    def test_distinct_objects_independent(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "vx")
            yield from client.write("y", "vy")
            rx = yield from client.read("x")
            ry = yield from client.read("y")
            return (rx.value, ry.value)

        assert sim.run_process(scenario()) == ("vx", "vy")


class TestSuppressionAndInvalidation:
    def test_write_burst_suppresses(self):
        """After the first write invalidates, subsequent writes in the
        burst are pure suppressions (no invalidation traffic)."""
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v0")
            yield from client.read("x")  # installs callbacks
            yield from client.write("x", "v1")  # through
            snap = net.snapshot()
            yield from client.write("x", "v2")  # suppress
            yield from client.write("x", "v3")  # suppress
            return net.stats.diff(snap).by_kind.get("inval", 0)

        assert sim.run_process(scenario()) == 0

    def test_first_write_after_read_is_through(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v0")
            yield from client.read("x")
            snap = net.snapshot()
            yield from client.write("x", "v1")
            return net.stats.diff(snap).by_kind.get("inval", 0)

        assert sim.run_process(scenario()) > 0

    def test_no_stale_hit_after_invalidation(self):
        """The write's invalidation must break Condition C at caches."""
        sim, net, cluster = make_cluster()
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")

        def scenario():
            yield from c0.write("x", "v1")
            r = yield from c1.read("x")  # c1's replica caches v1
            assert r.value == "v1"
            yield from c0.write("x", "v2")
            r = yield from c1.read("x")
            return (r.value, r.hit)

        value, hit = sim.run_process(scenario())
        assert value == "v2"
        assert hit is False

    def test_stats_counters(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v0")
            yield from client.read("x")
            yield from client.read("x")
            yield from client.write("x", "v1")
            yield from client.write("x", "v2")

        sim.run_process(scenario())
        assert cluster.total_read_hits == 1
        assert cluster.total_read_misses == 1
        assert cluster.total_writes_through >= 1
        assert cluster.total_writes_suppressed >= 1


class TestLeaseExpiryPaths:
    def test_write_completes_by_waiting_out_lease(self):
        """An unreachable OQS replica cannot block a write longer than
        the volume lease (the paper's key availability argument)."""
        sim, net, cluster = make_cluster(lease_ms=1000.0)
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")  # oqs0 holds leases now
            cluster.oqs_node("oqs0").crash()
            w = yield from client.write("x", "v2")
            return w.latency

        latency = sim.run_process(scenario())
        # bounded by roughly the lease length plus rounds, far below any
        # retransmit-forever behaviour
        assert latency <= 1500.0

    def test_delayed_invalidation_delivered_on_renewal(self):
        """A write behind an expired lease is queued; the holder's next
        volume renewal delivers it and the next read revalidates."""
        sim, net, cluster = make_cluster(lease_ms=500.0)
        c0 = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            # let oqs0's leases lapse
            yield sim.sleep(1000.0)
            snap = net.snapshot()
            yield from c0.write("x", "v2")  # lease expired: delayed inval
            direct_invals = net.stats.diff(snap).by_kind.get("inval", 0)
            r = yield from c0.read("x")  # renewal applies the delayed inval
            return (direct_invals, r.value)

        direct_invals, value = sim.run_process(scenario())
        assert direct_invals == 0  # suppressed into the delayed queue
        assert value == "v2"
        total_delayed = sum(n.delayed_enqueued for n in cluster.iqs_nodes)
        assert total_delayed > 0

    def test_crashed_oqs_node_resyncs_after_recovery(self):
        sim, net, cluster = make_cluster(lease_ms=500.0)
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")

        def scenario():
            yield from c1.write("x", "v1")
            r = yield from c1.read("x")
            assert r.value == "v1"
            node = cluster.oqs_node("oqs1")
            node.crash()
            yield from c0.write("x", "v2")  # completes via lease expiry
            yield sim.sleep(1000.0)
            node.recover()
            r = yield from c1.read("x")
            return r.value

        assert sim.run_process(scenario()) == "v2"

    def test_expired_lease_blocks_hits(self):
        """Once the volume lease lapses, a cached object cannot be served
        without renewal — even with no intervening write."""
        sim, net, cluster = make_cluster(lease_ms=300.0)
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            r1 = yield from client.read("x")
            yield sim.sleep(1000.0)  # lease long gone
            r2 = yield from client.read("x")
            return (r1.hit, r2.hit, r2.value)

        assert sim.run_process(scenario()) == (False, False, "v1")


class TestEpochs:
    def test_queue_overflow_bumps_epoch_and_resyncs(self):
        sim, net, cluster = make_cluster(
            lease_ms=400.0,
            config=DqvlConfig(
                lease_length_ms=400.0,
                max_delayed=2,
                inval_initial_timeout_ms=100.0,
                qrpc_initial_timeout_ms=100.0,
            ),
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            # cache several objects at oqs0
            for key in ("a", "b", "c", "d"):
                yield from client.write(key, f"{key}0")
                yield from client.read(key)
            yield sim.sleep(1000.0)  # leases lapse
            # four delayed invalidations overflow the bound of 2
            for key in ("a", "b", "c", "d"):
                yield from client.write(key, f"{key}1")
            reads = []
            for key in ("a", "b", "c", "d"):
                r = yield from client.read(key)
                reads.append(r.value)
            return reads

        values = sim.run_process(scenario())
        assert values == ["a1", "b1", "c1", "d1"]
        assert sum(n.leases.epoch_bumps for n in cluster.iqs_nodes) > 0

    def test_manual_gc_forces_revalidation(self):
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            for iqs in cluster.iqs_nodes:
                iqs.gc_volume(iqs.volume_of("x"), "oqs0")
            # next read must renew: old-epoch object leases are unusable
            # after the node's next volume renewal carries the new epoch.
            yield sim.sleep(3000.0)  # let the current lease lapse
            r = yield from client.read("x")
            return (r.hit, r.value)

        hit, value = sim.run_process(scenario())
        assert hit is False
        assert value == "v1"


class TestVolumes:
    def test_objects_share_volume_lease(self):
        """One volume renewal covers all objects in the volume: reading a
        second object under a freshly renewed volume needs only the
        object renewal, not a new volume lease."""
        sim, net, cluster = make_cluster()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "vx")
            yield from client.write("y", "vy")
            yield from client.read("x")  # renews volume + object x
            snap = net.snapshot()
            yield from client.read("y")  # object renewal only
            diff = net.stats.diff(snap)
            return (
                diff.by_kind.get("vl_renew", 0) + diff.by_kind.get("vlobj_renew", 0),
                diff.by_kind.get("obj_renew", 0),
            )

        vl, obj = sim.run_process(scenario())
        assert vl == 0
        assert obj > 0

    def test_separate_volumes_lease_independently(self):
        vm = ExplicitVolumeMap({"x": "vol-x", "y": "vol-y"})
        sim, net, cluster = make_cluster(
            config=DqvlConfig(
                lease_length_ms=2000.0,
                volume_map=vm,
                inval_initial_timeout_ms=100.0,
                qrpc_initial_timeout_ms=100.0,
            )
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "vx")
            yield from client.read("x")
            snap = net.snapshot()
            yield from client.read("y")  # different volume: needs a lease
            diff = net.stats.diff(snap)
            return diff.by_kind.get("vlobj_renew", 0)

        assert sim.run_process(scenario()) > 0


class TestProactiveRenewal:
    def test_keeper_sustains_hits_past_lease_expiry(self):
        sim, net, cluster = make_cluster(
            config=DqvlConfig(
                lease_length_ms=500.0,
                proactive_renewal=True,
                renewal_margin_ms=200.0,
                interest_window_ms=10_000.0,
                inval_initial_timeout_ms=100.0,
                qrpc_initial_timeout_ms=100.0,
            )
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            hits = []
            for _ in range(5):
                yield sim.sleep(400.0)  # just under a lease each time
                r = yield from client.read("x")
                hits.append(r.hit)
            return hits

        hits = sim.run_process(scenario())
        assert all(hits), f"expected sustained hits, got {hits}"

    def test_keeper_stops_after_interest_window(self):
        sim, net, cluster = make_cluster(
            config=DqvlConfig(
                lease_length_ms=500.0,
                proactive_renewal=True,
                renewal_margin_ms=200.0,
                interest_window_ms=1_000.0,
                inval_initial_timeout_ms=100.0,
                qrpc_initial_timeout_ms=100.0,
            )
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            yield sim.sleep(5_000.0)  # way past the interest window
            snap = net.snapshot()
            yield sim.sleep(5_000.0)
            return net.stats.diff(snap).by_kind.get("vl_renew", 0)

        assert sim.run_process(scenario()) == 0


class TestFaultTolerance:
    def test_correct_under_message_loss(self):
        sim = Simulator(seed=11)
        net = Network(sim, ConstantDelay(10.0), loss_probability=0.2)
        config = DqvlConfig(
            lease_length_ms=2000.0,
            inval_initial_timeout_ms=80.0,
            qrpc_initial_timeout_ms=80.0,
        )
        cluster = build_dqvl_cluster(
            sim, net, ["iqs0", "iqs1", "iqs2"], ["oqs0", "oqs1", "oqs2"], config
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            values = []
            for i in range(8):
                yield from client.write("x", f"v{i}")
                r = yield from client.read("x")
                values.append(r.value)
            return values

        values = sim.run_process(scenario(), until=600_000.0)
        assert values == [f"v{i}" for i in range(8)]

    def test_correct_under_duplication(self):
        sim = Simulator(seed=12)
        net = Network(sim, ConstantDelay(10.0), duplicate_probability=0.3)
        config = DqvlConfig(
            lease_length_ms=2000.0,
            inval_initial_timeout_ms=100.0,
            qrpc_initial_timeout_ms=100.0,
        )
        cluster = build_dqvl_cluster(
            sim, net, ["iqs0", "iqs1", "iqs2"], ["oqs0", "oqs1", "oqs2"], config
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            for i in range(5):
                yield from client.write("x", f"v{i}")
            r = yield from client.read("x")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v4"

    def test_write_succeeds_with_iqs_minority_down(self):
        sim, net, cluster = make_cluster(n_iqs=5)
        cluster.iqs_node("iqs0").crash()
        cluster.iqs_node("iqs1").crash()
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            w = yield from client.write("x", "v1")
            r = yield from client.read("x")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v1"

    def test_drifting_clocks_never_produce_stale_hits(self):
        """With bounded drift on every clock, the conservative lease
        arithmetic must still prevent stale reads."""
        sim = Simulator(seed=13)
        net = Network(sim, ConstantDelay(10.0))
        max_drift = 0.02
        config = DqvlConfig(
            lease_length_ms=500.0,
            max_drift=max_drift,
            inval_initial_timeout_ms=100.0,
            qrpc_initial_timeout_ms=100.0,
        )
        drifts = [-max_drift, 0.0, max_drift, max_drift / 2, -max_drift / 2, 0.01]
        ids = ["iqs0", "iqs1", "iqs2", "oqs0", "oqs1", "oqs2"]
        clocks = {
            node_id: DriftingClock(sim, drift=d, max_drift=max_drift)
            for node_id, d in zip(ids, drifts)
        }
        cluster = build_dqvl_cluster(
            sim, net, ids[:3], ids[3:], config, clocks=clocks
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            stale = []
            for i in range(10):
                yield from client.write("x", f"v{i}")
                yield sim.sleep(sim.rng.uniform(0, 700))
                r = yield from client.read("x")
                if r.value != f"v{i}":
                    stale.append((i, r.value))
            return stale

        assert sim.run_process(scenario(), until=600_000.0) == []


class TestInvariant:
    def test_lease_callback_invariant(self):
        """The paper's key invariant (zero-drift form): whenever an OQS
        node holds a valid (volume, object) pair from IQS node i, then at
        i the volume lease is unexpired and the callback is installed
        (lastAckLC not newer than lastReadLC)."""
        sim, net, cluster = make_cluster(lease_ms=800.0, seed=21)
        clients = [
            cluster.client(f"c{k}", prefer_oqs=f"oqs{k}") for k in range(3)
        ]
        violations = []

        def check_invariant():
            now = sim.now
            for j in cluster.oqs_nodes:
                for i in cluster.iqs_nodes:
                    for obj in ("x", "y"):
                        vol = j.volume_of(obj)
                        if not j.view.object_valid(vol, obj, i.node_id, now):
                            continue
                        if i.leases.is_expired(vol, j.node_id, now):
                            violations.append(
                                (now, j.node_id, i.node_id, obj, "lease-expired-at-iqs")
                            )
                        renew = i.last_renew_lc(obj, j.node_id)
                        if renew is None or i.last_ack_lc(obj, j.node_id) > renew:
                            violations.append(
                                (now, j.node_id, i.node_id, obj, "no-callback-installed")
                            )

        def workload(client, key):
            for i in range(15):
                yield from client.write(key, f"{client.node_id}-{i}")
                check_invariant()
                yield from client.read(key)
                check_invariant()
                yield sim.sleep(sim.rng.uniform(0, 400))
                check_invariant()

        procs = [
            sim.spawn(workload(clients[0], "x")),
            sim.spawn(workload(clients[1], "x")),
            sim.spawn(workload(clients[2], "y")),
        ]
        sim.run(until=600_000.0)
        assert all(p.done for p in procs)
        assert violations == []
