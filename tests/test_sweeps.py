"""Tests for the parallel cached sweep runner (repro.harness.sweeps)."""

import os

import pytest

from repro.harness import (
    AvailabilitySimConfig,
    ExperimentConfig,
    run_response_time,
    run_sweep,
)
from repro.harness.sweeps import (
    CACHE_STATS,
    AvailabilityPoint,
    ResponsePoint,
    clear_cache,
    code_version,
    point_key,
    sweep_workers,
)


def _small(protocol="rowa", **kw):
    """A cheap config for cache-mechanics tests (rowa runs in ~ms;
    dqvl pays for the lease keeper and is reserved for one test)."""
    kw.setdefault("ops_per_client", 20)
    kw.setdefault("warmup_ops", 2)
    kw.setdefault("num_clients", 2)
    kw.setdefault("seed", 11)
    return ExperimentConfig(protocol=protocol, **kw)


def _collect_sim_time(result):
    return {"sim_time_ms": result.sim_time_ms}


@pytest.fixture(autouse=True)
def _reset_stats():
    CACHE_STATS.reset()
    yield
    CACHE_STATS.reset()


class TestPointKey:
    def test_stable_for_equal_configs(self):
        assert point_key(_small()) == point_key(_small())

    def test_differs_across_configs(self):
        assert point_key(_small()) != point_key(_small(write_ratio=0.5))
        assert point_key(_small()) != point_key(_small(seed=12))

    def test_differs_across_kinds_and_collectors(self):
        assert point_key(_small()) != point_key(AvailabilitySimConfig())
        assert point_key(_small()) != point_key(_small(), _collect_sim_time)

    def test_code_version_is_stable_in_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestRunSweep:
    def test_matches_direct_run(self, tmp_path):
        cfg = _small("dqvl", ops_per_client=10, num_clients=1)
        (point,) = run_sweep([cfg], cache_path=str(tmp_path))
        direct = run_response_time(cfg)
        assert isinstance(point, ResponsePoint)
        assert point.summary.overall.mean == direct.summary.overall.mean
        assert point.messages_per_request == direct.messages_per_request
        assert point.total_requests == direct.total_requests
        assert not point.from_cache

    def test_preserves_config_order(self, tmp_path):
        configs = [_small(p) for p in ("majority", "rowa_async", "rowa")]
        points = run_sweep(configs, cache_path=str(tmp_path))
        assert [p.config.protocol for p in points] == ["majority", "rowa_async", "rowa"]

    def test_second_run_hits_cache(self, tmp_path):
        configs = [_small(), _small(write_ratio=0.5)]
        run_sweep(configs, cache_path=str(tmp_path))
        assert (CACHE_STATS.hits, CACHE_STATS.misses) == (0, 2)

        again = run_sweep(configs, cache_path=str(tmp_path))
        assert (CACHE_STATS.hits, CACHE_STATS.misses) == (2, 2)
        assert all(p.from_cache for p in again)
        # cached numbers equal the computed ones
        fresh = run_sweep(configs, cache=False)
        for a, b in zip(again, fresh):
            assert a.summary.overall.mean == b.summary.overall.mean

    def test_config_change_invalidates(self, tmp_path):
        run_sweep([_small()], cache_path=str(tmp_path))
        run_sweep([_small(seed=99)], cache_path=str(tmp_path))
        assert CACHE_STATS.misses == 2
        assert CACHE_STATS.hits == 0

    def test_cache_disabled(self, tmp_path):
        run_sweep([_small()], cache=False, cache_path=str(tmp_path))
        run_sweep([_small()], cache=False, cache_path=str(tmp_path))
        assert CACHE_STATS.hits == 0
        assert not os.path.exists(str(tmp_path / f"{point_key(_small())}.json"))

    def test_collect_extras(self, tmp_path):
        (point,) = run_sweep(
            [_small()], collect=_collect_sim_time, cache_path=str(tmp_path)
        )
        assert point.extras["sim_time_ms"] == point.sim_time_ms
        # extras survive the cache round-trip
        (cached,) = run_sweep(
            [_small()], collect=_collect_sim_time, cache_path=str(tmp_path)
        )
        assert cached.from_cache
        assert cached.extras["sim_time_ms"] == point.sim_time_ms

    def test_parallel_workers_match_inline(self, tmp_path):
        configs = [_small(), _small(write_ratio=0.5)]
        parallel = run_sweep(configs, workers=2, cache=False)
        inline = run_sweep(configs, workers=1, cache=False)
        for a, b in zip(parallel, inline):
            assert a.summary.overall.mean == b.summary.overall.mean
            assert a.messages_per_request == b.messages_per_request

    def test_unpicklable_collect_falls_back_inline(self, tmp_path):
        seen = []

        def local_collect(result):  # closures don't pickle
            seen.append(result.sim_time_ms)
            return {"n": len(seen)}

        points = run_sweep(
            [_small(), _small(write_ratio=0.5)],
            collect=local_collect,
            workers=4,
            cache=False,
        )
        assert len(seen) == 2
        assert [p.extras["n"] for p in points] == [1, 2]

    def test_availability_points(self, tmp_path):
        cfg = AvailabilitySimConfig(epochs=20, seed=5)
        (point,) = run_sweep([cfg], cache_path=str(tmp_path))
        assert isinstance(point, AvailabilityPoint)
        assert point.total_requests > 0
        assert 0.0 <= point.availability <= 1.0
        assert point.unavailability == pytest.approx(1.0 - point.availability)
        (cached,) = run_sweep([cfg], cache_path=str(tmp_path))
        assert cached.from_cache
        assert cached.availability == point.availability

    def test_mixed_kinds_in_one_sweep(self, tmp_path):
        points = run_sweep(
            [_small(), AvailabilitySimConfig(epochs=20, seed=5)],
            cache_path=str(tmp_path),
        )
        assert isinstance(points[0], ResponsePoint)
        assert isinstance(points[1], AvailabilityPoint)

    def test_rejects_unknown_config(self, tmp_path):
        with pytest.raises(TypeError):
            run_sweep([object()], cache_path=str(tmp_path))

    def test_clear_cache(self, tmp_path):
        run_sweep([_small(), _small(write_ratio=0.5)], cache_path=str(tmp_path))
        assert clear_cache(str(tmp_path)) == 2
        assert clear_cache(str(tmp_path)) == 0
        run_sweep([_small()], cache_path=str(tmp_path))
        assert CACHE_STATS.misses == 3  # recomputed after the clear

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cfg = _small()
        run_sweep([cfg], cache_path=str(tmp_path))
        entry = tmp_path / f"{point_key(cfg)}.json"
        entry.write_text("{not json")
        (point,) = run_sweep([cfg], cache_path=str(tmp_path))
        assert not point.from_cache
        assert CACHE_STATS.misses == 2


class TestWorkersEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert sweep_workers() == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        assert sweep_workers() == 1  # clamped
        monkeypatch.delenv("REPRO_SWEEP_WORKERS")
        assert sweep_workers() >= 1

    def test_cache_env_override(self, monkeypatch, tmp_path):
        from repro.harness.sweeps import cache_dir

        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "alt"))
        assert cache_dir() == str(tmp_path / "alt")


class TestReportingShimRemoved:
    def test_reporting_module_is_gone(self):
        import importlib

        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.harness.reporting")
