"""Unit tests for drifting clocks, failure schedules, and tracing."""

import pytest

from repro.sim import (
    BernoulliOutages,
    ConstantDelay,
    DriftingClock,
    FailureSchedule,
    Network,
    Node,
    PerfectClock,
    Simulator,
    Tracer,
    crash_for,
    partition_for,
)


@pytest.fixture
def sim():
    return Simulator(seed=3)


class TestDriftingClock:
    def test_perfect_clock_tracks_sim_time(self, sim):
        clock = PerfectClock(sim)
        sim.run(until=100.0)
        assert clock.now() == 100.0

    def test_fast_clock(self, sim):
        clock = DriftingClock(sim, drift=0.01, max_drift=0.01)
        sim.run(until=1000.0)
        assert clock.now() == pytest.approx(1010.0)

    def test_slow_clock_with_offset(self, sim):
        clock = DriftingClock(sim, drift=-0.01, offset=5.0, max_drift=0.02)
        sim.run(until=1000.0)
        assert clock.now() == pytest.approx(995.0)

    def test_drift_exceeding_bound_rejected(self, sim):
        with pytest.raises(ValueError):
            DriftingClock(sim, drift=0.05, max_drift=0.01)

    def test_duration_conversions_roundtrip(self, sim):
        clock = DriftingClock(sim, drift=0.004, max_drift=0.01)
        assert clock.real_duration(clock.local_duration(123.0)) == pytest.approx(123.0)

    def test_conservative_expiry_shortens(self, sim):
        clock = DriftingClock(sim, drift=0.0, max_drift=0.05)
        expiry = clock.conservative_expiry(100.0, 1000.0)
        assert expiry == pytest.approx(100.0 + 950.0)

    def test_lease_safety_under_worst_case_drift(self, sim):
        """Granter-side (1+maxDrift) + holder-side (1-maxDrift) corrections
        guarantee the granter never expires a lease before the holder, in
        real time, for any drift pair within the bound."""
        max_drift = 0.02
        lease = 1000.0
        for holder_drift in (-max_drift, 0.0, max_drift):
            for granter_drift in (-max_drift, 0.0, max_drift):
                holder = DriftingClock(sim, drift=holder_drift, max_drift=max_drift)
                granter = DriftingClock(sim, drift=granter_drift, max_drift=max_drift)
                # request sent at real time 0; grant processed at real time 0
                holder_local_expiry = holder.now() + lease * (1 - max_drift)
                granter_local_expiry = granter.now() + lease * (1 + max_drift)
                # convert both to real durations
                holder_real = holder.real_duration(holder_local_expiry - holder.now())
                granter_real = granter.real_duration(granter_local_expiry - granter.now())
                assert granter_real >= holder_real - 1e-9


class TestFailureHelpers:
    def _make_world(self, sim):
        net = Network(sim, ConstantDelay(1.0))
        nodes = [Node(sim, net, f"n{i}") for i in range(4)]
        return net, nodes

    def test_crash_for_window(self, sim):
        net, nodes = self._make_world(sim)
        crash_for(sim, nodes[0], at=10.0, duration=20.0)
        sim.run(until=15.0)
        assert not nodes[0].alive
        sim.run(until=35.0)
        assert nodes[0].alive

    def test_crash_for_requires_positive_duration(self, sim):
        net, nodes = self._make_world(sim)
        with pytest.raises(ValueError):
            crash_for(sim, nodes[0], at=0.0, duration=0.0)

    def test_partition_for_window(self, sim):
        net, nodes = self._make_world(sim)
        partition_for(sim, net, [["n0", "n1"], ["n2", "n3"]], at=5.0, duration=10.0)
        sim.run(until=6.0)
        assert net.is_blocked("n0", "n2")
        assert not net.is_blocked("n0", "n1")
        sim.run(until=20.0)
        assert not net.is_blocked("n0", "n2")

    def test_failure_schedule(self, sim):
        net, nodes = self._make_world(sim)
        schedule = (
            FailureSchedule()
            .crash(5.0, "n0", "n1")
            .recover(10.0, "n0")
            .partition(12.0, ["n0"], ["n2", "n3"])
            .heal(20.0)
        )
        schedule.install(sim, net)
        sim.run(until=6.0)
        assert not nodes[0].alive and not nodes[1].alive
        sim.run(until=11.0)
        assert nodes[0].alive and not nodes[1].alive
        sim.run(until=13.0)
        assert net.is_blocked("n0", "n3")
        sim.run(until=21.0)
        assert not net.is_blocked("n0", "n3")

    def test_overlapping_partition_for_windows_compose(self, sim):
        """Each partition_for heals only its own blocks (token-scoped)."""
        net, nodes = self._make_world(sim)
        partition_for(sim, net, [["n0"], ["n1", "n2", "n3"]], at=0.0, duration=10.0)
        partition_for(sim, net, [["n0", "n1"], ["n2", "n3"]], at=5.0, duration=20.0)
        sim.run(until=7.0)
        assert net.is_blocked("n0", "n1")   # first window
        assert net.is_blocked("n0", "n2")   # both windows
        sim.run(until=12.0)                  # first healed
        assert not net.is_blocked("n0", "n1")
        assert net.is_blocked("n0", "n2")   # second still holds it
        assert net.is_blocked("n1", "n3")
        sim.run(until=30.0)
        assert not net.is_blocked("n0", "n2")
        assert not net.is_blocked("n1", "n3")

    def test_failure_schedule_tagged_heal(self, sim):
        net, nodes = self._make_world(sim)
        schedule = (
            FailureSchedule()
            .partition(1.0, ["n0"], ["n1"], tag="p1")
            .partition(2.0, ["n0"], ["n2"], tag="p2")
            .heal(5.0, tag="p1")
        )
        schedule.install(sim, net)
        sim.run(until=6.0)
        assert not net.is_blocked("n0", "n1")
        assert net.is_blocked("n0", "n2")

    def test_failure_schedule_unknown_action(self, sim):
        net, nodes = self._make_world(sim)
        schedule = FailureSchedule()
        schedule.events.append(
            type(schedule.events)() if False else None
        )
        # construct an invalid event directly
        from repro.sim.failures import FailureEvent

        schedule.events = [FailureEvent(0.0, "explode")]
        with pytest.raises(ValueError):
            schedule.install(sim, net)

    def test_bernoulli_outages_marginal_rate(self, sim):
        net, nodes = self._make_world(sim)
        outages = BernoulliOutages(sim, nodes, p=0.3, epoch_ms=10.0, total_epochs=500)
        down_epochs = [0]
        original_epoch = outages._epoch

        def counting_epoch():
            original_epoch()
            down_epochs[0] += sum(1 for n in nodes if not n.alive)

        outages._epoch = counting_epoch
        outages.start()
        sim.run()
        rate = down_epochs[0] / (500 * len(nodes))
        assert 0.2 < rate < 0.4

    def test_bernoulli_outages_recover_at_end(self, sim):
        net, nodes = self._make_world(sim)
        outages = BernoulliOutages(sim, nodes, p=0.9, epoch_ms=10.0, total_epochs=5)
        outages.start()
        sim.run()
        assert all(n.alive for n in nodes)

    def test_bernoulli_rejects_bad_params(self, sim):
        net, nodes = self._make_world(sim)
        with pytest.raises(ValueError):
            BernoulliOutages(sim, nodes, p=2.0, epoch_ms=10.0)
        with pytest.raises(ValueError):
            BernoulliOutages(sim, nodes, p=0.5, epoch_ms=0.0)


class TestTracer:
    def test_emit_and_filter(self, sim):
        tracer = Tracer(sim)
        tracer.emit("n0", "read_hit", obj="x")
        sim.run(until=5.0)
        tracer.emit("n1", "read_miss", obj="y")
        assert tracer.count("read_hit") == 1
        assert tracer.filter(category="read_miss")[0].source == "n1"
        assert tracer.filter(source="n0")[0].details["obj"] == "x"
        assert "read_hit" in tracer.dump()

    def test_null_tracer_is_silent(self):
        from repro.sim import NULL_TRACER

        NULL_TRACER.emit("x", "y", z=1)
        assert NULL_TRACER.count("y") == 0
        assert NULL_TRACER.filter() == []
        assert NULL_TRACER.dump() == ""
