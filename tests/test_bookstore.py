"""Tests for the TPC-W edge bookstore application layer."""

import pytest

from repro.apps.bookstore import build_bookstore
from repro.apps.bookstore.stores import (
    CatalogNode,
    CatalogOriginNode,
    InventoryEdgeNode,
    InventoryOriginNode,
    OrderNode,
    OrderOriginNode,
)
from repro.edge import EdgeTopology, EdgeTopologyConfig
from repro.sim import ConstantDelay, Network, Simulator


def make_topology(num_edges=3, seed=0):
    sim = Simulator(seed=seed)
    return EdgeTopology(sim, EdgeTopologyConfig(num_edges=num_edges, num_clients=1))


class TestCatalog:
    def make(self, seed=0, loss=0.0, resync=1_000.0):
        sim = Simulator(seed=seed)
        net = Network(sim, ConstantDelay(10.0), loss_probability=loss)
        origin = CatalogOriginNode(
            sim, net, "origin", ["e0", "e1", "e2"], resync_interval_ms=resync
        )
        edges = [CatalogNode(sim, net, f"e{i}", "origin") for i in range(3)]
        return sim, net, origin, edges

    def test_publish_reaches_every_edge(self):
        sim, net, origin, edges = self.make()
        origin.publish("book-1", {"price": 10})
        sim.run(until=100.0)
        for edge in edges:
            assert edge.lookup("book-1") == (1, {"price": 10})

    def test_versions_monotone_under_reordered_pushes(self):
        sim, net, origin, edges = self.make()
        origin.publish("book-1", {"price": 10})
        origin.publish("book-1", {"price": 12})
        sim.run(until=100.0)
        for edge in edges:
            version, data = edge.lookup("book-1")
            assert version == 2 and data == {"price": 12}

    def test_stale_update_ignored(self):
        sim, net, origin, edges = self.make()
        origin.publish("b", {"v": "new"})
        sim.run(until=100.0)
        # hand-deliver an old version directly
        from repro.sim import Message

        edges[0].deliver(Message(src="origin", dst="e0", kind="cat_update",
                                 payload={"item": "b", "version": 0, "data": {"v": "old"}}))
        sim.run(until=200.0)
        assert edges[0].lookup("b")[1] == {"v": "new"}
        assert edges[0].stale_updates_ignored == 1

    def test_digest_resync_heals_total_loss(self):
        sim, net, origin, edges = self.make(loss=0.0)
        # block pushes to e2, publish, then heal: only the digest helps
        net.block("origin", "e2", symmetric=False)
        origin.publish("book-9", {"price": 99})
        sim.run(until=100.0)
        assert edges[2].lookup("book-9") == (0, None)
        net.unblock("origin", "e2", symmetric=False)
        sim.run(until=5_000.0)  # a few digest rounds
        assert edges[2].lookup("book-9") == (1, {"price": 99})

    def test_lookup_unknown_item(self):
        sim, net, origin, edges = self.make()
        assert edges[0].lookup("ghost") == (0, None)


class TestOrders:
    def make(self, seed=0, loss=0.0):
        sim = Simulator(seed=seed)
        net = Network(sim, ConstantDelay(10.0), loss_probability=loss)
        origin = OrderOriginNode(sim, net, "origin")
        edges = [
            OrderNode(sim, net, f"e{i}", "origin", flush_interval_ms=200.0)
            for i in range(3)
        ]
        return sim, net, origin, edges

    def test_order_ids_unique_across_edges(self):
        sim, net, origin, edges = self.make()
        ids = {edge.submit("alice", "book-1") for edge in edges}
        ids |= {edges[0].submit("bob", "book-2") for _ in range(3)}
        assert len(ids) == 6

    def test_orders_reach_origin(self):
        sim, net, origin, edges = self.make()
        for i, edge in enumerate(edges):
            edge.submit(f"cust{i}", "book-1")
        sim.run(until=5_000.0)
        assert origin.order_count() == 3
        assert all(edge.backlog == 0 for edge in edges)

    def test_exactly_once_under_heavy_loss(self):
        sim, net, origin, edges = self.make(seed=5, loss=0.4)
        submitted = []
        for k in range(20):
            submitted.append(edges[k % 3].submit(f"cust{k}", "book-1"))
        sim.run(until=120_000.0)
        assert origin.order_count() == 20
        assert {o["order_id"] for o in origin.orders()} == set(submitted)
        # retransmissions happened, duplicates were dropped, backlog drained
        assert all(edge.backlog == 0 for edge in edges)

    def test_orders_sorted_by_acceptance(self):
        sim, net, origin, edges = self.make()

        def staged():
            edges[0].submit("a", "x")
            yield sim.sleep(500.0)
            edges[1].submit("b", "y")

        sim.run_process(staged(), until=5_000.0)
        sim.run(until=5_000.0)
        orders = origin.orders()
        assert [o["customer"] for o in orders] == ["a", "b"]


class TestInventory:
    def make(self, stock, seed=0, batch=5, loss=0.0):
        sim = Simulator(seed=seed)
        net = Network(sim, ConstantDelay(10.0), loss_probability=loss)
        origin = InventoryOriginNode(sim, net, "origin", stock, batch=batch)
        edges = [InventoryEdgeNode(sim, net, f"e{i}", "origin") for i in range(3)]
        return sim, net, origin, edges

    def test_validation(self):
        sim = Simulator(seed=0)
        net = Network(sim, ConstantDelay(1.0))
        with pytest.raises(ValueError):
            InventoryOriginNode(sim, net, "o1", {"x": -1})
        with pytest.raises(ValueError):
            InventoryOriginNode(sim, net, "o2", {"x": 1}, batch=0)

    def test_reserve_and_refill(self):
        sim, net, origin, edges = self.make({"book-1": 20})

        def scenario():
            ok = yield from edges[0].reserve("book-1", 3)
            return (ok, edges[0].approximate_count("book-1"))

        ok, local = sim.run_process(scenario())
        assert ok is True
        assert local == 2  # batch of 5 granted, 3 sold
        assert origin.remaining("book-1") == 15

    def test_never_oversell_under_contention(self):
        """The global invariant: sales across all edges never exceed
        stock, however the concurrent buyers interleave."""
        stock = 17
        sim, net, origin, edges = self.make({"hot": stock}, seed=3)
        results = []

        def buyer(edge, attempts):
            bought = 0
            for _ in range(attempts):
                ok = yield from edge.reserve("hot", 1)
                if ok:
                    bought += 1
            results.append(bought)

        procs = [sim.spawn(buyer(edge, 10)) for edge in edges]
        sim.run(until=600_000.0)
        assert all(p.done for p in procs)
        total_sold = sum(results)
        assert total_sold == sum(e.sold for e in edges)
        assert total_sold <= stock
        # and the system actually sells most of the stock (allotment
        # fragmentation may strand a few units at other edges)
        assert total_sold >= stock - 2 * len(edges)

    def test_sold_out_returns_false(self):
        sim, net, origin, edges = self.make({"rare": 1}, batch=1)

        def scenario():
            first = yield from edges[0].reserve("rare")
            second = yield from edges[1].reserve("rare")
            return (first, second)

        assert sim.run_process(scenario()) == (True, False)

    def test_unknown_item_is_sold_out(self):
        sim, net, origin, edges = self.make({})

        def scenario():
            ok = yield from edges[0].reserve("ghost")
            return ok

        assert sim.run_process(scenario()) is False

    def test_restock_and_release(self):
        sim, net, origin, edges = self.make({"book": 0}, batch=2)

        def scenario():
            ok = yield from edges[0].reserve("book")
            assert ok is False
            origin.restock("book", 4)
            ok = yield from edges[0].reserve("book")
            edges[0].release("book", 1)
            return (ok, edges[0].approximate_count("book"))

        ok, local = sim.run_process(scenario())
        assert ok is True
        assert local == 2  # granted 2, sold 1, released 1
        assert edges[0].sold == 0

    def test_loss_never_breaks_invariant(self):
        """Lost grants waste stock (safe direction) but never oversell."""
        stock = 30
        sim, net, origin, edges = self.make({"hot": stock}, seed=9, loss=0.3)

        def buyer(edge):
            bought = 0
            for _ in range(12):
                ok = yield from edge.reserve("hot", 1)
                bought += 1 if ok else 0
            return bought

        procs = [sim.spawn(buyer(edge)) for edge in edges]
        sim.run(until=600_000.0)
        assert all(p.done for p in procs)
        assert sum(p.value for p in procs) <= stock


class TestBookstoreEndToEnd:
    def build(self, seed=0, num_edges=3, stock=None):
        topo = make_topology(num_edges=num_edges, seed=seed)
        store = build_bookstore(
            topo,
            stock=stock or {"book-1": 50, "book-2": 10},
            order_flush_ms=500.0,
        )
        return topo.sim, store

    def test_purchase_happy_path(self):
        sim, store = self.build()
        svc = store.service_for_edge(1)

        def scenario():
            store.catalog_origin.publish("book-1", {"title": "DQ", "price": 30})
            yield sim.sleep(500.0)
            version, data = yield from svc.browse("book-1")
            result = yield from svc.purchase("alice", "book-1")
            profile = yield from svc.get_profile("alice")
            return (version, data["price"], result.ok, profile)

        version, price, ok, profile = sim.run_process(scenario(), until=600_000.0)
        assert (version, price, ok) == (1, 30, True)
        assert len(profile["history"]) == 1
        sim.run(until=sim.now + 10_000.0)
        assert store.orders_received() == 1

    def test_profile_follows_customer_across_edges(self):
        """The DQVL class in action: the customer buys at edge 0, then
        appears at edge 2 — the profile history must be complete."""
        sim, store = self.build()

        def scenario():
            r1 = yield from store.service_for_edge(0).purchase("bob", "book-1")
            r2 = yield from store.service_for_edge(2).purchase("bob", "book-2")
            profile = yield from store.service_for_edge(2).get_profile("bob")
            return (r1.ok, r2.ok, profile["history"])

        ok1, ok2, history = sim.run_process(scenario(), until=600_000.0)
        assert ok1 and ok2
        assert len(history) == 2

    def test_out_of_stock_purchase_fails_cleanly(self):
        sim, store = self.build(stock={"book-1": 1})
        svc0 = store.service_for_edge(0)
        svc1 = store.service_for_edge(1)

        def scenario():
            r1 = yield from svc0.purchase("a", "book-1")
            r2 = yield from svc1.purchase("b", "book-1")
            return (r1.ok, r2.ok, r2.reason)

        ok1, ok2, reason = sim.run_process(scenario(), until=600_000.0)
        assert ok1 is True and ok2 is False
        assert reason == "out of stock"
        assert store.units_sold() == 1

    def test_concurrent_purchases_respect_stock(self):
        stock = 12
        sim, store = self.build(stock={"hot": stock}, seed=4)

        def shopper(edge, customer):
            bought = 0
            for i in range(8):
                result = yield from store.service_for_edge(edge).purchase(
                    customer, "hot"
                )
                bought += 1 if result.ok else 0
            return bought

        procs = [
            sim.spawn(shopper(k, f"cust{k}")) for k in range(3)
        ]
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        total = sum(p.value for p in procs)
        assert total <= stock
        assert store.units_sold() == total
        # every successful purchase becomes exactly one origin order
        sim.run(until=sim.now + 20_000.0)
        assert store.orders_received() == total
        assert store.orders_accepted() == total

    def test_profiles_are_regular_under_cross_edge_access(self):
        from repro.consistency import History, check_regular

        sim, store = self.build(seed=8)
        history = History()

        def shopper(customer, edges):
            for k in edges:
                svc = store.service_for_edge(k)
                result = yield from svc.purchase(customer, "book-1")
                profile_read = yield from svc.profiles.read(f"profile:{customer}")
                history.record_read(profile_read)

        procs = [
            sim.spawn(shopper("carol", [0, 1, 2, 0])),
            sim.spawn(shopper("dave", [2, 0, 1, 2])),
        ]
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        # reads recorded only (writes go through purchase); assert no
        # read observed a missing own-write: history growth is monotone
        for proc_reads in ("carol", "dave"):
            lengths = [
                len(op.value.get("history", []))
                for op in history.ops
                if op.key == f"profile:{proc_reads}" and op.value
            ]
            assert lengths == sorted(lengths)

class TestOriginOutage:
    """The edge-service promise: the origin can vanish and the edges
    keep serving — each object class degrades exactly as designed."""

    def test_edges_survive_origin_outage(self):
        topo = make_topology(num_edges=3, seed=12)
        sim = topo.sim
        store = build_bookstore(
            topo, stock={"book": 30}, order_flush_ms=400.0, inventory_batch=5
        )

        def scenario():
            # warm-up: catalog published, edges stocked, caches primed
            store.catalog_origin.publish("book", {"price": 20})
            yield sim.sleep(500.0)
            svc = store.service_for_edge(1)
            r1 = yield from svc.purchase("erin", "book")
            assert r1.ok
            pre_backlog = svc.orders.backlog

            # the origin data centre drops off the network
            topo.network.partition(
                ["cat-origin", "ord-origin", "inv-origin"],
                [n for n in topo.network.node_ids
                 if n not in ("cat-origin", "ord-origin", "inv-origin")],
            )

            # catalog: still served from the edge cache (maybe stale)
            version, data = yield from svc.browse("book")
            assert (version, data["price"]) == (1, 20)

            # inventory: sells from the local escrow allotment
            r2 = yield from svc.purchase("erin", "book")
            assert r2.ok, "escrowed stock must keep selling"

            # orders: accepted locally, queued for the origin
            backlog_during = svc.orders.backlog
            assert backlog_during > 0

            # profiles: DQVL runs entirely on the edges — unaffected
            profile = yield from svc.get_profile("erin")
            assert len(profile["history"]) == 2

            # the origin returns; the order stream drains
            topo.network.heal()
            yield sim.sleep(10_000.0)
            assert svc.orders.backlog == 0
            return True

        assert sim.run_process(scenario(), until=3_600_000.0) is True
        assert store.orders_received() == store.orders_accepted()

    def test_escrow_exhaustion_during_outage_fails_closed(self):
        """When the local allotment runs out mid-outage, sales stop —
        the never-oversell invariant is preserved, not availability."""
        topo = make_topology(num_edges=2, seed=13)
        sim = topo.sim
        store = build_bookstore(topo, stock={"book": 20}, inventory_batch=2)

        def scenario():
            svc = store.service_for_edge(0)
            r = yield from svc.purchase("frank", "book")
            assert r.ok
            topo.network.partition(
                ["inv-origin"],
                [n for n in topo.network.node_ids if n != "inv-origin"],
            )
            # allotment of 2: one unit left, then refills time out
            r = yield from svc.purchase("frank", "book")
            assert r.ok
            r = yield from svc.purchase("frank", "book")
            return r

        result = sim.run_process(scenario(), until=3_600_000.0)
        assert result.ok is False
        assert store.units_sold() == 2
