"""Batched network transmission and message pooling.

``Network.send_many`` must be byte-identical to a loop of
``Network.send`` — same delivery times and order, same stats, same RNG
draw sequences — while batching the kernel insertions.  Message pooling
must never recycle a message something still references.
"""

import pytest

from repro.sim import (
    ConstantDelay,
    JitteredDelay,
    MatrixDelay,
    Message,
    Network,
    Node,
    Simulator,
)
from repro.sim import messages as messages_mod


class Recorder(Node):
    """Logs (time, n) for every data message; answers pings."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_data(self, msg):
        self.received.append((self.sim.now, msg["n"]))

    def on_ping(self, msg):
        self.reply(msg, payload={"n": msg["n"]})


class Keeper(Node):
    """Retains every delivered message object."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.held = []

    def on_keep(self, msg):
        self.held.append(msg)


@pytest.fixture(autouse=True)
def clean_message_pool():
    """Isolate each test from pool contents left by earlier tests."""
    messages_mod._pool.clear()
    yield
    messages_mod._pool.clear()


def build(seed, delay_model, **net_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, delay_model, **net_kwargs)
    nodes = {name: Recorder(sim, net, name) for name in ("a", "b", "c")}
    return sim, net, nodes


def drain(net, specs, batched):
    """Feed (dst, n) specs into the network, batched or one at a time."""
    msgs = [Message(src="a", dst=dst, kind="data", payload={"n": n})
            for dst, n in specs]
    if batched:
        net.send_many(msgs)
    else:
        for m in msgs:
            net.send(m)


def run_both(specs, delay_factory, *, seed=7, faults=None, **net_kwargs):
    """Run the same spec list via send-loop and send_many; return both."""
    outcomes = []
    for batched in (False, True):
        sim, net, nodes = build(seed, delay_factory(), **net_kwargs)
        if faults is not None:
            faults(net)
        drain(net, specs, batched)
        sim.run()
        outcomes.append(
            {
                "received": {name: node.received for name, node in nodes.items()},
                "dropped": net.stats.dropped,
                "duplicated": net.stats.duplicated,
                "unknown": net.stats.unknown_destination,
                "by_kind": dict(net.stats.by_kind),
                # One draw per stream proves the batch consumed exactly
                # the same number of randoms from each purpose-split RNG.
                "rng": (
                    net._delay_rng.random(),
                    net._loss_rng.random(),
                    net._dup_rng.random(),
                ),
            }
        )
    return outcomes


class TestSendManyEquivalence:
    def test_plain_broadcast_matches_send_loop(self):
        specs = [("b", i) if i % 2 else ("c", i) for i in range(20)]
        loop, batch = run_both(specs, lambda: ConstantDelay(5.0))
        assert batch == loop
        # Same-instant deliveries keep submission order.
        assert batch["received"]["b"] == [(5.0, i) for i in range(1, 20, 2)]

    def test_unknown_and_partitioned_destinations(self):
        specs = [("b", 1), ("ghost", 2), ("c", 3), ("b", 4), ("ghost", 5)]

        def faults(net):
            net.block("a", "c")

        loop, batch = run_both(specs, lambda: ConstantDelay(2.0), faults=faults)
        assert batch == loop
        assert batch["unknown"] == 2
        assert batch["dropped"] == 3  # 2 unknown + 1 partitioned
        assert batch["received"]["c"] == []

    def test_loss_and_duplication_windows(self):
        specs = [("b", i) for i in range(60)]

        def faults(net):
            net.add_loss_window(0.3)
            net.add_duplication_window(0.3)

        loop, batch = run_both(
            specs,
            lambda: JitteredDelay(ConstantDelay(5.0), 10.0),
            faults=faults,
        )
        assert batch == loop
        # The seed must actually exercise both fault lanes, or this test
        # proves nothing about flush ordering / draw interleaving.
        assert batch["dropped"] > 0
        assert batch["duplicated"] > 0
        assert len(batch["received"]["b"]) > 60 - batch["dropped"]

    def test_zero_delay_ready_lane_mixed_with_wheel(self):
        # dst "b" takes the zero-delay ready lane, dst "c" the wheel;
        # a batch mixing both must split without reordering either lane.
        model = MatrixDelay({}, default_ms=4.0)
        model.set("a", "b", 0.0)
        specs = [("b", 1), ("c", 2), ("b", 3), ("c", 4), ("b", 5)]
        loop, batch = run_both(specs, lambda: model)
        assert batch == loop
        assert batch["received"]["b"] == [(0.0, 1), (0.0, 3), (0.0, 5)]
        assert batch["received"]["c"] == [(4.0, 2), (4.0, 4)]

    def test_empty_batch_is_a_noop(self):
        sim, net, nodes = build(1, ConstantDelay(1.0))
        net.send_many([])
        sim.run()
        assert net.stats.total_messages == 0
        assert all(node.received == [] for node in nodes.values())


class TestMessagePooling:
    def test_delivered_message_is_recycled_with_cleared_payload(self):
        sim, net, nodes = build(3, ConstantDelay(1.0))
        nodes["a"].send("b", "data", {"n": 1})
        sim.run()
        assert len(messages_mod._pool) == 1
        assert messages_mod._pool[0].payload == {}

    def test_receiver_held_message_is_never_recycled(self):
        sim = Simulator(seed=3)
        net = Network(sim, ConstantDelay(1.0))
        a = Recorder(sim, net, "a")
        k = Keeper(sim, net, "k")
        a.send("k", "keep", {"n": 42})
        sim.run()
        assert messages_mod._pool == []
        assert k.held[0].payload == {"n": 42}

    def test_rpc_reply_held_by_future_is_not_recycled(self):
        sim, net, nodes = build(3, ConstantDelay(1.0))
        fut = nodes["a"].call("b", "ping", {"n": 7}, timeout=100.0)
        sim.run()
        reply = fut.value
        assert reply["n"] == 7
        # The request was dispatched and released; the reply lives on in
        # the future and must not be in the pool.
        assert reply not in messages_mod._pool

    def test_acquire_reuses_released_instance_with_fresh_identity(self):
        m = Message.acquire(src="a", dst="b", kind="data", payload={"n": 1})
        old_id = m.msg_id
        m.send_time = 99.0
        m.release()
        m2 = Message.acquire(src="c", dst="d", kind="inval",
                             payload={"k": "x"}, reply_to=5)
        assert m2 is m
        assert m2.msg_id > old_id
        assert m2.payload == {"k": "x"}
        assert (m2.src, m2.dst, m2.kind, m2.reply_to) == ("c", "d", "inval", 5)
        assert m2.send_time == 0.0

    def test_batch_delivery_recycles_unreferenced_messages(self):
        sim, net, nodes = build(3, ConstantDelay(2.0))
        drain(net, [("b", i) for i in range(10)], batched=True)
        sim.run()
        assert nodes["b"].received == [(2.0, i) for i in range(10)]
        assert len(messages_mod._pool) == 10
