"""QRPC under churn: broadcast escalation and timer/reply races.

Regression tests for two behaviours that only show up when faults and
retransmissions interleave:

* ``broadcast_after`` escalation — after enough failed attempts QRPC
  stops sampling random quorums and sends to *everyone*, which is what
  lets a call make progress when crash + partition + loss leave exactly
  one viable quorum.
* Late replies racing the retransmission timer — a reply can land on
  the same instant as the per-attempt timeout (``qrpc.py`` re-checks
  ``done`` after the sleep wakes for this reason).  The observable
  contract pinned here: ties never hang, never double-count a replier,
  and responders from earlier attempts are not re-asked.
"""

from collections import defaultdict

import pytest

from repro.quorum import READ, MajorityQuorumSystem, QrpcError, qrpc
from repro.sim import ConstantDelay, Network, Node, Simulator


class EchoServer(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.requests = 0

    def on_q(self, msg):
        self.requests += 1
        self.reply(msg, payload={"from": self.node_id})


def make_world(n=5, delay=10.0, seed=0, **system_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(delay))
    servers = [EchoServer(sim, net, f"n{i}") for i in range(n)]
    client = Node(sim, net, "client")
    system = MajorityQuorumSystem(
        [s.node_id for s in servers], **system_kwargs
    )
    return sim, net, servers, client, system


def tap_request_batches(sim, net):
    """Record the set of `q` destinations per send instant."""
    batches = defaultdict(set)
    net.add_tap(
        lambda m: batches[sim.now].add(m.dst) if m.kind == "q" else None
    )
    return batches


class TestBroadcastEscalationUnderChurn:
    def test_crash_partition_loss_combo_eventually_gathers_quorum(self):
        """One node crashed, one partitioned away, 60% loss on the rest:
        random 3-of-5 quorums keep including dead members, but the
        broadcast escalation plus retransmission grinds out the single
        viable quorum {n2,n3,n4} once the loss window lifts."""
        sim, net, servers, client, system = make_world(seed=11)
        servers[0].crash()
        net.partition({"n1"}, {"client", "n2", "n3", "n4"})
        loss = net.add_loss_window(0.6)
        sim.schedule(2_000.0, lambda: net.remove_loss_window(loss))
        batches = tap_request_batches(sim, net)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {},
                initial_timeout_ms=50.0, broadcast_after=2, max_attempts=20,
            )
            return set(replies)

        assert sim.run_process(proc()) == {"n2", "n3", "n4"}
        # At least one attempt escalated to a full broadcast.
        assert any(len(dsts) == 5 for dsts in batches.values())

    def test_escalation_respects_max_attempts(self):
        """Broadcasting is not a liveness oracle: with no quorum alive
        the call still gives up after max_attempts."""
        sim, net, servers, client, system = make_world(seed=2)
        for s in servers[:3]:
            s.crash()

        def proc():
            try:
                yield from qrpc(
                    client, system, READ, "q", {},
                    initial_timeout_ms=50.0, broadcast_after=1,
                    max_attempts=4,
                )
            except QrpcError as exc:
                return exc.attempts

        assert sim.run_process(proc()) == 4

    def test_responders_not_reasked_across_attempts(self):
        """Replies gathered before a partition are kept; escalated
        retransmissions go only to the nodes that have not answered."""
        sim, net, servers, client, system = make_world(
            seed=1, read_size=4
        )
        token = net.partition({"client", "n0", "n1"}, {"n2", "n3", "n4"})
        sim.schedule(120.0, lambda: net.heal(token))
        batches = tap_request_batches(sim, net)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {},
                initial_timeout_ms=100.0, broadcast_after=1,
                max_attempts=10,
            )
            return (sim.now, set(replies))

        when, replies = sim.run_process(proc())
        assert when == pytest.approx(320.0)
        assert replies == {"n0", "n1", "n2", "n3", "n4"}
        # Attempts after the first (t=100 and t=300, per the 2x backoff)
        # are broadcasts minus the early responders n0/n1.
        later = [dsts for t, dsts in sorted(batches.items()) if t > 0.0]
        assert later == [{"n2", "n3", "n4"}, {"n2", "n3", "n4"}]

    def test_duplicated_replies_counted_once(self):
        """Duplication storms must not fake a quorum: the replies dict
        is keyed by node, so each replier counts once."""
        sim, net, servers, client, system = make_world(seed=7)
        net.add_duplication_window(0.9)
        counted = []

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=100.0
            )
            counted.append(replies)
            return len(replies)

        n = sim.run_process(proc())
        assert n == len(set(counted[0]))
        assert system.is_read_quorum(set(counted[0]))


class TestTimerReplyRaces:
    def test_reply_just_under_the_timer_completes_first_attempt(self):
        """RTT strictly inside the timeout window: the first attempt
        completes and nothing is retransmitted."""
        sim, net, servers, client, system = make_world(delay=10.0)
        batches = tap_request_batches(sim, net)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=20.5
            )
            return (sim.now, len(replies))

        when, count = sim.run_process(proc())
        assert when == pytest.approx(20.0)
        assert count >= 3
        assert list(batches) == [0.0]  # no second attempt

    def test_reply_tied_with_timer_terminates_via_retransmission(self):
        """RTT exactly equal to the timeout: the tie goes to the timer
        (the per-call timeout fires with the retransmission sleep), so
        the first attempt's replies are discarded — but the call must
        then complete cleanly on the second attempt, not hang and not
        double-count repliers."""
        sim, net, servers, client, system = make_world(delay=10.0)
        batches = tap_request_batches(sim, net)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=20.0
            )
            return (sim.now, set(replies))

        when, replies = sim.run_process(proc())
        assert when == pytest.approx(40.0)  # exactly one extra round trip
        assert len(replies) == 3 and system.is_read_quorum(replies)
        assert sorted(batches) == [0.0, 20.0]
        # The retransmission resamples a full fresh quorum.
        assert len(batches[20.0]) == 3

    def test_tie_outcome_is_deterministic(self):
        """The tied race resolves identically across runs — event order
        at equal timestamps is (time, seq)-deterministic, which the
        chaos campaigns rely on for replay."""
        def once():
            sim, net, servers, client, system = make_world(delay=10.0, seed=5)

            def proc():
                replies = yield from qrpc(
                    client, system, READ, "q", {}, initial_timeout_ms=20.0
                )
                return (sim.now, sorted(replies))

            return sim.run_process(proc())

        assert once() == once()

    def test_late_quorum_completion_beats_next_timer(self):
        """Replies that arrive mid-window after earlier attempts failed
        complete the call immediately — the pending retransmission sleep
        for the *current* attempt must not delay the return."""
        sim, net, servers, client, system = make_world(seed=3)
        # Everything blocked until t=130: attempts 1 (t=0) and 2 (t=100)
        # launch into the partition and are dropped at send; attempt 3
        # (t=300) goes out after the heal and completes mid-window.
        for s in servers:
            net.block("client", s.node_id)
        sim.schedule(130.0, net.heal)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {},
                initial_timeout_ms=100.0, backoff=2.0,
            )
            return (sim.now, len(replies))

        when, count = sim.run_process(proc())
        assert count >= 3
        # Attempt 3 fires at t=300 and its replies land at t=320; the
        # call returns then, not at the attempt-3 timer (t=700).
        assert when == pytest.approx(320.0)
