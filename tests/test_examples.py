"""Smoke tests: every example must run to completion.

Examples are documentation that executes; letting them rot defeats the
point.  Each runs in a subprocess (as a user would run it) with a real
time budget.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_every_example_is_covered():
    """If an example is added, it gets smoke-tested automatically."""
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_quickstart_narrative():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = result.stdout
    assert "hit=True" in out and "hit=False" in out
    assert "writes suppressed" in out


def test_consistency_audit_shows_the_contrast():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "consistency_audit.py")],
        capture_output=True, text=True, timeout=600,
    )
    out = result.stdout
    assert "VIOLATIONS" in out  # ROWA-Async fails
    assert "PASS" in out  # DQVL passes
