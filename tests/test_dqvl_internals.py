"""White-box unit tests for DQVL node internals.

The protocol tests exercise behaviour end to end; these pin down the
individual decision functions — the OQS hit condition, the IQS write
classification, tracing, and statistics — by manipulating node state
directly.
"""

import pytest

from repro.core import DqvlConfig, build_dqvl_cluster
from repro.core.leases import VolumeLeaseGrant
from repro.sim import ConstantDelay, Network, Simulator, Tracer
from repro.types import ZERO_LC, LogicalClock


def lc(n, node="w"):
    return LogicalClock(n, node)


@pytest.fixture
def world():
    sim = Simulator(seed=0)
    net = Network(sim, ConstantDelay(10.0))
    tracer = Tracer(sim)
    config = DqvlConfig(
        lease_length_ms=1_000.0,
        inval_initial_timeout_ms=100.0,
        qrpc_initial_timeout_ms=100.0,
    )
    cluster = build_dqvl_cluster(
        sim, net, ["iqs0", "iqs1", "iqs2"], ["oqs0", "oqs1", "oqs2"],
        config, tracer=tracer,
    )
    return sim, net, cluster, tracer


def give_valid_lease(node, iqs_id, obj, clock, now_grant=None):
    """Install a valid (volume, object) pair from *iqs_id* at *node*."""
    grant = VolumeLeaseGrant(
        volume=node.volume_of(obj), length_ms=1_000.0, epoch=0,
        delayed=(), requestor_time=now_grant if now_grant is not None else node.clock.now(),
    )
    node.view.apply_grant(iqs_id, grant)
    node.view.apply_renewal(iqs_id, obj, epoch=0, lc=clock)


class TestOqsHitCondition:
    def test_requires_full_read_quorum_of_servers(self, world):
        sim, net, cluster, tracer = world
        node = cluster.oqs_node("oqs0")
        # majority of 3 needs 2 servers; one valid column is not enough
        give_valid_lease(node, "iqs0", "x", lc(5))
        assert not node.is_local_valid("x")
        give_valid_lease(node, "iqs1", "x", lc(5))
        assert node.is_local_valid("x")

    def test_max_clock_rule_blocks(self, world):
        sim, net, cluster, tracer = world
        node = cluster.oqs_node("oqs0")
        give_valid_lease(node, "iqs0", "x", lc(5))
        give_valid_lease(node, "iqs1", "x", lc(5))
        assert node.is_local_valid("x")
        # a newer invalidation from the third server blocks serving 5
        node.view.apply_invalidation("iqs2", "x", lc(9))
        assert not node.is_local_valid("x")

    def test_volume_expiry_blocks(self, world):
        sim, net, cluster, tracer = world
        node = cluster.oqs_node("oqs0")
        give_valid_lease(node, "iqs0", "x", lc(5))
        give_valid_lease(node, "iqs1", "x", lc(5))
        sim.run(until=2_000.0)  # past the 1s lease
        assert not node.is_local_valid("x")

    def test_epoch_mismatch_blocks(self, world):
        sim, net, cluster, tracer = world
        node = cluster.oqs_node("oqs0")
        give_valid_lease(node, "iqs0", "x", lc(5))
        give_valid_lease(node, "iqs1", "x", lc(5))
        # a re-grant with a bumped epoch revokes the object leases
        grant = VolumeLeaseGrant(
            volume=node.volume_of("x"), length_ms=1_000.0, epoch=3,
            delayed=(), requestor_time=node.clock.now(),
        )
        node.view.apply_grant("iqs0", grant)
        assert not node.is_local_valid("x")


class TestIqsClassification:
    def test_never_renewed_is_invalid(self, world):
        sim, net, cluster, tracer = world
        iqs = cluster.iqs_node("iqs0")
        assert iqs._classify_oqs_node("x", iqs.volume_of("x"), "oqs0", lc(1)) == "invalid"

    def test_acked_this_write_is_invalid(self, world):
        sim, net, cluster, tracer = world
        iqs = cluster.iqs_node("iqs0")
        iqs._record_ack("x", "oqs0", lc(7))
        assert iqs._classify_oqs_node("x", iqs.volume_of("x"), "oqs0", lc(7)) == "invalid"
        # ...but an older ack does not cover a newer write
        iqs._last_renew_lc[("x", "oqs0")] = lc(7)
        iqs.leases.grant(iqs.volume_of("x"), "oqs0", iqs.clock.now(), 0.0)
        assert iqs._classify_oqs_node("x", iqs.volume_of("x"), "oqs0", lc(9)) != "invalid"

    def test_ack_strictly_after_renewal_is_invalid(self, world):
        sim, net, cluster, tracer = world
        iqs = cluster.iqs_node("iqs0")
        iqs._last_renew_lc[("x", "oqs0")] = lc(5)
        iqs._record_ack("x", "oqs0", lc(6))
        assert iqs._classify_oqs_node("x", iqs.volume_of("x"), "oqs0", lc(9)) == "invalid"

    def test_equal_ack_and_renewal_is_suspected(self, world):
        """The equality case: the node may have revalidated after acking."""
        sim, net, cluster, tracer = world
        iqs = cluster.iqs_node("iqs0")
        volume = iqs.volume_of("x")
        iqs._last_renew_lc[("x", "oqs0")] = lc(5)
        iqs._record_ack("x", "oqs0", lc(5))
        iqs.leases.grant(volume, "oqs0", iqs.clock.now(), 0.0)
        assert iqs._classify_oqs_node("x", volume, "oqs0", lc(9)) == "valid"

    def test_expired_volume_is_expired_class(self, world):
        sim, net, cluster, tracer = world
        iqs = cluster.iqs_node("iqs0")
        volume = iqs.volume_of("x")
        iqs._last_renew_lc[("x", "oqs0")] = lc(5)
        iqs.leases.grant(volume, "oqs0", now=0.0, requestor_time=0.0)
        sim.run(until=5_000.0)  # the 1s lease lapsed
        assert iqs._classify_oqs_node("x", volume, "oqs0", lc(9)) == "expired"

    def test_no_volume_grant_short_circuits(self, world):
        """A node with callbacks but no volume grant cannot read; it is
        invalid without any queue entry."""
        sim, net, cluster, tracer = world
        iqs = cluster.iqs_node("iqs0")
        volume = iqs.volume_of("x")
        iqs._last_renew_lc[("x", "oqs0")] = lc(5)
        assert iqs._classify_oqs_node("x", volume, "oqs0", lc(9)) == "invalid"
        assert iqs.leases.delayed_count(volume, "oqs0") == 0


class TestTracing:
    def test_protocol_events_traced(self, world):
        sim, net, cluster, tracer = world
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")   # miss
            yield from client.read("x")   # hit
            yield from client.write("x", "v2")  # through

        sim.run_process(scenario())
        assert tracer.count("read_miss") == 1
        assert tracer.count("read_hit") == 1
        assert tracer.count("write_suppress") > 0
        assert tracer.count("write_through") > 0
        # events carry the object and are attributed to nodes
        miss = tracer.filter(category="read_miss")[0]
        assert miss.details["obj"] == "x"
        assert miss.source == "oqs0"

    def test_live_callback_count(self, world):
        sim, net, cluster, tracer = world
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")

        sim.run_process(scenario())
        total = sum(n.live_callback_count() for n in cluster.iqs_nodes)
        assert total >= 1  # the renewal installed callbacks
        # a write's acks tear them down
        def write_again():
            yield from client.write("x", "v2")

        sim.run_process(write_again())
        after = sum(n.live_callback_count() for n in cluster.iqs_nodes)
        assert after < total


class TestClusterAccessors:
    def test_node_lookup(self, world):
        sim, net, cluster, tracer = world
        assert cluster.iqs_node("iqs1").node_id == "iqs1"
        assert cluster.oqs_node("oqs2").node_id == "oqs2"
        with pytest.raises(StopIteration):
            cluster.iqs_node("nope")

    def test_owq_safety_warning(self):
        import warnings

        from repro.quorum import MajorityQuorumSystem

        sim = Simulator(seed=0)
        net = Network(sim, ConstantDelay(1.0))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build_dqvl_cluster(
                sim, net, ["i0", "i1", "i2"], ["o0", "o1", "o2"],
                DqvlConfig(),
                oqs_system=MajorityQuorumSystem(["o0", "o1", "o2"]),
            )
        assert any("regular semantics" in str(w.message) for w in caught)


class TestValidationCoalescing:
    def test_read_storm_produces_one_renewal_exchange(self, world):
        """Ten concurrent reads of a just-invalidated object must trigger
        a single validation (single-flight), not ten renewal rounds."""
        sim, net, cluster, tracer = world
        client_nodes = [
            cluster.client(f"c{i}", prefer_oqs="oqs0") for i in range(10)
        ]

        def setup():
            yield from client_nodes[0].write("x", "v1")
            yield from client_nodes[0].read("x")  # prime the cache
            yield from client_nodes[0].write("x", "v2")  # invalidate

        sim.run_process(setup(), until=600_000.0)
        node = cluster.oqs_node("oqs0")
        renewals_before = node.renewals_sent
        snap = net.snapshot()

        procs = [sim.spawn(c.read("x")) for c in client_nodes]
        sim.run(until=sim.now + 600_000.0)
        assert all(p.done for p in procs)
        assert all(p.value.value == "v2" for p in procs)

        diff = net.stats.diff(snap)
        renewal_msgs = (
            diff.by_kind.get("obj_renew", 0)
            + diff.by_kind.get("vlobj_renew", 0)
            + diff.by_kind.get("vl_renew", 0)
        )
        # one validation touches at most an IQS read quorum (2 of 3)
        assert renewal_msgs <= 3
        assert node.validations_coalesced >= 8

    def test_coalesced_readers_all_get_fresh_value(self, world):
        sim, net, cluster, tracer = world
        c = cluster.client("c0", prefer_oqs="oqs0")

        def setup():
            yield from c.write("x", "v1")
            yield from c.read("x")
            yield from c.write("x", "v2")

        sim.run_process(setup(), until=600_000.0)
        readers = [cluster.client(f"r{i}", prefer_oqs="oqs0") for i in range(5)]
        procs = [sim.spawn(r.read("x")) for r in readers]
        sim.run(until=sim.now + 600_000.0)
        assert {p.value.value for p in procs} == {"v2"}
