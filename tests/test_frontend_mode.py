"""Front-end-mode experiments: the full Figure 1 architecture.

The figure benches use direct mode (the paper's measurement setup);
these tests confirm the *conclusions* survive in the full architecture,
where application clients reach front ends over the 8/86 ms links and
the front ends' co-located service clients run the protocols.
"""

import pytest

from repro.consistency import check_regular
from repro.harness import ExperimentConfig, run_response_time


def run(protocol, **kwargs):
    defaults = dict(
        protocol=protocol, mode="frontend", write_ratio=0.05,
        ops_per_client=60, warmup_ops=8, seed=14,
    )
    defaults.update(kwargs)
    return run_response_time(ExperimentConfig(**defaults))


class TestFrontendMode:
    def test_fig6a_conclusions_hold(self):
        """DQVL's reads stay far below the strong baselines and near the
        ROWA family when requests flow through front ends."""
        results = {p: run(p) for p in
                   ("dqvl", "majority", "primary_backup", "rowa", "rowa_async")}
        reads = {p: r.summary.reads.median for p, r in results.items()}
        assert reads["majority"] >= 6 * reads["dqvl"]
        assert reads["primary_backup"] >= 4 * reads["dqvl"]
        assert reads["dqvl"] <= 2 * reads["rowa"]
        assert reads["dqvl"] <= 2 * reads["rowa_async"]

    def test_dqvl_read_hit_latency_is_one_lan_round(self):
        """App -> front end (8 ms each way) with a co-located OQS hit."""
        result = run("dqvl", write_ratio=0.0)
        assert result.summary.reads.median == pytest.approx(16.0)

    @pytest.mark.parametrize("protocol", ["dqvl", "majority", "rowa"])
    def test_regular_semantics_in_frontend_mode(self, protocol):
        result = run(protocol, write_ratio=0.4, ops_per_client=50)
        assert check_regular(result.full_history()) == []

    def test_frontend_mode_with_redirection(self):
        """Redirected requests (low locality) pay the client-WAN hop to a
        distant front end; everything still completes and stays regular."""
        result = run("dqvl", locality=0.6, write_ratio=0.2, ops_per_client=50)
        assert check_regular(result.full_history()) == []
        assert result.summary.overall.mean > run(
            "dqvl", locality=1.0, write_ratio=0.2, ops_per_client=50
        ).summary.overall.mean
