"""Tests for seed-deterministic nemesis schedule generation."""

import pytest

from repro.chaos import NEMESES, build_schedule
from repro.chaos.nemesis import NemesisContext, nemesis_rng

CTX = NemesisContext(
    servers=("iqs0", "iqs1", "iqs2", "oqs0", "oqs1"),
    horizon_ms=10_000.0,
    max_drift=0.01,
)

ALL = tuple(sorted(NEMESES))


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        one = build_schedule(42, ALL, CTX)
        two = build_schedule(42, ALL, CTX)
        assert one.to_json_obj() == two.to_json_obj()

    def test_different_seeds_differ(self):
        one = build_schedule(1, ALL, CTX)
        two = build_schedule(2, ALL, CTX)
        assert one.to_json_obj() != two.to_json_obj()

    def test_streams_are_independent(self):
        """Adding a nemesis to the mix must not perturb the faults an
        unrelated nemesis generates (each has its own rng stream)."""
        alone = build_schedule(7, ("crash_storm",), CTX)
        mixed = build_schedule(7, ("crash_storm", "loss_burst"), CTX)
        crash_alone = [f for f in alone if f.kind == "crash"]
        crash_mixed = [f for f in mixed if f.kind == "crash"]
        assert crash_alone == crash_mixed

    def test_nemesis_order_irrelevant(self):
        one = build_schedule(7, ("loss_burst", "crash_storm"), CTX)
        two = build_schedule(7, ("crash_storm", "loss_burst"), CTX)
        assert one.to_json_obj() == two.to_json_obj()

    def test_rng_does_not_use_builtin_hash(self):
        """nemesis_rng must be process-stable; crc32 mixing gives the
        same first draw for the same inputs in any interpreter."""
        assert nemesis_rng(3, "crash_storm").random() == \
            nemesis_rng(3, "crash_storm").random()
        assert nemesis_rng(3, "crash_storm").random() != \
            nemesis_rng(3, "loss_burst").random()


class TestSafetyEnvelope:
    @pytest.mark.parametrize("name", ALL)
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_windows_end_by_horizon(self, name, seed):
        for fault in build_schedule(seed, (name,), CTX):
            assert fault.end <= CTX.horizon_ms + 1e-9
            assert fault.start >= 0.0

    @pytest.mark.parametrize("seed", range(8))
    def test_crash_storm_leaves_a_server_up(self, seed):
        for fault in build_schedule(seed, ("crash_storm",), CTX):
            assert len(fault.nodes) < len(CTX.servers)

    @pytest.mark.parametrize("seed", range(4))
    def test_clock_drift_within_declared_bound(self, seed):
        faults = list(build_schedule(seed, ("clock_drift",), CTX))
        assert {f.nodes[0] for f in faults} == set(CTX.servers)
        for fault in faults:
            assert abs(fault.param("drift")) <= CTX.max_drift

    @pytest.mark.parametrize("seed", range(4))
    def test_partitions_cover_all_servers(self, seed):
        for fault in build_schedule(
            seed, ("rolling_partition", "overlapping_partitions"), CTX
        ):
            named = {s for g in fault.groups for s in g}
            assert named == set(CTX.servers)
            assert all(g for g in fault.groups)

    @pytest.mark.parametrize("name", ALL)
    def test_generators_target_known_servers(self, name):
        for fault in build_schedule(5, (name,), CTX):
            assert set(fault.nodes) <= set(CTX.servers)


class TestRegistry:
    def test_unknown_nemesis_rejected(self):
        with pytest.raises(KeyError, match="unknown nemesis"):
            build_schedule(0, ("chaos_monkey",), CTX)

    def test_duplicate_names_collapse(self):
        one = build_schedule(3, ("loss_burst",), CTX)
        two = build_schedule(3, ("loss_burst", "loss_burst"), CTX)
        assert one.to_json_obj() == two.to_json_obj()

    def test_schedule_is_sorted(self):
        sched = build_schedule(9, ALL, CTX)
        starts = [f.start for f in sched]
        assert starts == sorted(starts)
