"""Cross-process determinism regression tests.

The simulator promises: same seed → same trace.  Within one process
that is easy; *across* processes Python's randomized string hashing can
silently break it if any code path iterates a set/frozenset of node ids
in hash order before consuming randomness (this actually happened: QRPC
used to send to `frozenset` targets in iteration order).  These tests
run the same experiment in subprocesses with different PYTHONHASHSEED
values and require identical results.
"""

import os
import subprocess
import sys

import pytest

SCRIPT = r"""
from repro.consistency import History, check_regular
from repro.core import DqvlConfig, build_dqvl_cluster
from repro.sim import ConstantDelay, Network, Simulator
from repro.workload import BernoulliOpStream, ZipfKeyChooser, closed_loop

sim = Simulator(seed=99)
net = Network(sim, ConstantDelay(12.0), loss_probability=0.1)
config = DqvlConfig(lease_length_ms=900.0, inval_initial_timeout_ms=80.0,
                    qrpc_initial_timeout_ms=80.0)
cluster = build_dqvl_cluster(
    sim, net, ["iqs0", "iqs1", "iqs2"], ["oqs0", "oqs1", "oqs2"], config)
history = History()
keys = ["hot", "k1", "k2"]
procs = [
    sim.spawn(closed_loop(
        sim,
        cluster.client(f"c{c}", prefer_oqs=f"oqs{c}"),
        BernoulliOpStream(sim.rng, ZipfKeyChooser(keys, s=1.0), 0.4, label=f"c{c}-"),
        history, 30))
    for c in range(3)
]
sim.run(until=3_600_000.0)
assert all(p.done for p in procs)
fingerprint = (
    net.stats.total_messages,
    len(history),
    sum(int(op.lc.counter) for op in history.ops),
    round(sum(op.latency for op in history.ops), 3),
)
print(fingerprint)
"""


def run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    out = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


def test_identical_traces_across_hash_seeds():
    results = {run_with_hashseed(s) for s in ("1", "31337", "random")}
    assert len(results) == 1, f"traces diverged across hash seeds: {results}"
