"""Unit tests for the simulated network: delays, faults, partitions."""

import pytest

from repro.sim import (
    ConstantDelay,
    JitteredDelay,
    MatrixDelay,
    Message,
    Network,
    Node,
    Simulator,
)


class Recorder(Node):
    """Test node that logs everything it receives."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_data(self, msg):
        self.received.append((self.sim.now, msg["n"]))

    def on_ping(self, msg):
        self.reply(msg, payload={"n": msg["n"]})


@pytest.fixture
def sim():
    return Simulator(seed=1)


def make_pair(sim, delay_model=None, **net_kwargs):
    net = Network(sim, delay_model or ConstantDelay(10.0), **net_kwargs)
    a = Recorder(sim, net, "a")
    b = Recorder(sim, net, "b")
    return net, a, b


class TestDelivery:
    def test_constant_delay(self, sim):
        net, a, b = make_pair(sim)
        a.send("b", "data", {"n": 1})
        sim.run()
        assert b.received == [(10.0, 1)]

    def test_unknown_destination_counts_as_drop(self, sim):
        net, a, b = make_pair(sim)
        a.send("zzz", "data", {"n": 1})
        sim.run()
        assert net.stats.dropped == 1
        assert net.stats.unknown_destination == 1
        assert b.received == []

    def test_duplicate_node_id_rejected(self, sim):
        net, a, b = make_pair(sim)
        with pytest.raises(ValueError):
            Recorder(sim, net, "a")

    def test_matrix_delay_and_symmetry(self, sim):
        model = MatrixDelay({}, default_ms=99.0)
        model.set("a", "b", 5.0)
        net = Network(sim, model)
        a = Recorder(sim, net, "a")
        b = Recorder(sim, net, "b")
        c = Recorder(sim, net, "c")
        a.send("b", "data", {"n": 1})
        b.send("a", "data", {"n": 2})
        a.send("c", "data", {"n": 3})
        sim.run()
        assert b.received == [(5.0, 1)]
        assert a.received == [(5.0, 2)]
        assert c.received == [(99.0, 3)]

    def test_jitter_within_bounds_and_can_reorder(self):
        # With jitter up to 50ms on a 1ms base, two back-to-back sends
        # should reorder for some seed.
        reordered = False
        for seed in range(20):
            sim = Simulator(seed=seed)
            net = Network(sim, JitteredDelay(ConstantDelay(1.0), 50.0))
            a = Recorder(sim, net, "a")
            b = Recorder(sim, net, "b")
            a.send("b", "data", {"n": 1})
            a.send("b", "data", {"n": 2})
            sim.run()
            order = [n for _, n in b.received]
            assert sorted(order) == [1, 2]
            if order == [2, 1]:
                reordered = True
        assert reordered, "jitter never produced reordering across seeds"

    def test_stats_counting(self, sim):
        net, a, b = make_pair(sim)
        a.send("b", "data", {"n": 1})
        a.send("b", "data", {"n": 2})
        sim.run()
        assert net.stats.total_messages == 2
        assert net.stats.by_kind["data"] == 2
        assert net.stats.by_pair[("a", "b")] == 2

    def test_stats_snapshot_diff(self, sim):
        net, a, b = make_pair(sim)
        a.send("b", "data", {"n": 1})
        sim.run()
        snap = net.snapshot()
        a.send("b", "data", {"n": 2})
        sim.run()
        diff = net.stats.diff(snap)
        assert diff.total_messages == 1

    def test_tap_observes_messages(self, sim):
        net, a, b = make_pair(sim)
        seen = []
        net.add_tap(lambda m: seen.append(m.kind))
        a.send("b", "data", {"n": 1})
        sim.run()
        assert seen == ["data"]


class TestFaults:
    def test_loss_drops_messages(self):
        sim = Simulator(seed=5)
        net, a, b = make_pair(sim, loss_probability=1.0)
        a.send("b", "data", {"n": 1})
        sim.run()
        assert b.received == []
        assert net.stats.dropped == 1

    def test_loss_probability_statistics(self):
        sim = Simulator(seed=5)
        net, a, b = make_pair(sim, loss_probability=0.5)
        for i in range(400):
            a.send("b", "data", {"n": i})
        sim.run()
        assert 120 < len(b.received) < 280  # ~200 expected

    def test_duplication(self):
        sim = Simulator(seed=5)
        net, a, b = make_pair(sim, duplicate_probability=1.0)
        a.send("b", "data", {"n": 1})
        sim.run()
        assert [n for _, n in b.received] == [1, 1]
        assert net.stats.duplicated == 1

    def test_invalid_probabilities_rejected(self, sim):
        with pytest.raises(ValueError):
            Network(sim, ConstantDelay(1.0), loss_probability=1.5)
        with pytest.raises(ValueError):
            Network(sim, ConstantDelay(1.0), duplicate_probability=-0.1)


class TestPartitions:
    def test_block_drops_both_directions(self, sim):
        net, a, b = make_pair(sim)
        net.block("a", "b")
        a.send("b", "data", {"n": 1})
        b.send("a", "data", {"n": 2})
        sim.run()
        assert b.received == [] and a.received == []

    def test_asymmetric_block(self, sim):
        net, a, b = make_pair(sim)
        net.block("a", "b", symmetric=False)
        a.send("b", "data", {"n": 1})
        b.send("a", "data", {"n": 2})
        sim.run()
        assert b.received == []
        assert a.received == [(10.0, 2)]

    def test_unblock_restores(self, sim):
        net, a, b = make_pair(sim)
        net.block("a", "b")
        net.unblock("a", "b")
        a.send("b", "data", {"n": 1})
        sim.run()
        assert b.received == [(10.0, 1)]

    def test_partition_groups(self, sim):
        net = Network(sim, ConstantDelay(1.0))
        nodes = {name: Recorder(sim, net, name) for name in "abcd"}
        net.partition(["a", "b"], ["c", "d"])
        nodes["a"].send("b", "data", {"n": 1})  # same side
        nodes["a"].send("c", "data", {"n": 2})  # across
        nodes["d"].send("c", "data", {"n": 3})  # same side
        sim.run()
        assert [n for _, n in nodes["b"].received] == [1]
        assert [n for _, n in nodes["c"].received] == [3]

    def test_heal_removes_all_blocks(self, sim):
        net, a, b = make_pair(sim)
        net.partition(["a"], ["b"])
        net.heal()
        a.send("b", "data", {"n": 1})
        sim.run()
        assert b.received == [(10.0, 1)]

    def test_overlapping_partitions_heal_independently(self, sim):
        net = Network(sim, ConstantDelay(1.0))
        nodes = {name: Recorder(sim, net, name) for name in "abc"}
        t1 = net.partition(["a"], ["b", "c"])
        t2 = net.partition(["a", "b"], ["c"])
        net.heal(t1)
        # a↔c is still severed by the second partition; a↔b is open.
        nodes["a"].send("b", "data", {"n": 1})
        nodes["a"].send("c", "data", {"n": 2})
        sim.run()
        assert [n for _, n in nodes["b"].received] == [1]
        assert nodes["c"].received == []
        net.heal(t2)
        nodes["a"].send("c", "data", {"n": 3})
        sim.run()
        assert [n for _, n in nodes["c"].received] == [3]

    def test_heal_unknown_token_is_noop(self, sim):
        net, a, b = make_pair(sim)
        token = net.partition(["a"], ["b"])
        net.heal(9999)  # unknown
        assert net.is_blocked("a", "b")
        net.heal(token)
        net.heal(token)  # double-heal is idempotent
        assert not net.is_blocked("a", "b")

    def test_argless_heal_clears_everything(self, sim):
        net, a, b = make_pair(sim)
        net.block("a", "b")
        net.partition(["a"], ["b"])
        net.heal()
        a.send("b", "data", {"n": 1})
        sim.run()
        assert b.received == [(10.0, 1)]

    def test_partition_formed_mid_flight_drops(self, sim):
        """A partition severs the path for in-flight messages too."""
        net, a, b = make_pair(sim)
        a.send("b", "data", {"n": 1})
        sim.schedule(5.0, lambda: net.block("a", "b"))
        sim.run()
        assert b.received == []


class TestGrayFailures:
    def test_degrade_link_adds_delay(self, sim):
        net, a, b = make_pair(sim)
        token = net.degrade_link("a", "b", extra_delay_ms=25.0)
        a.send("b", "data", {"n": 1})
        sim.run()
        assert b.received == [(35.0, 1)]
        net.restore_link(token)
        a.send("b", "data", {"n": 2})
        sim.run()
        assert b.received[-1] == (sim.now, 2)
        assert net.link_extra_delay("a", "b") == 0.0

    def test_degrade_link_stacks(self, sim):
        net, a, b = make_pair(sim)
        t1 = net.degrade_link("a", "b", extra_delay_ms=10.0)
        t2 = net.degrade_link("a", "b", extra_delay_ms=5.0)
        assert net.link_extra_delay("a", "b") == 15.0
        net.restore_link(t1)
        assert net.link_extra_delay("a", "b") == 5.0
        net.restore_link(t2)
        net.restore_link(t2)  # idempotent
        assert net.link_extra_delay("a", "b") == 0.0

    def test_degrade_link_loss(self):
        sim = Simulator(seed=7)
        net, a, b = make_pair(sim)
        token = net.degrade_link("a", "b", loss_probability=1.0, symmetric=False)
        a.send("b", "data", {"n": 1})
        b.send("a", "data", {"n": 2})
        sim.run()
        assert b.received == []
        assert [n for _, n in a.received] == [2]
        net.restore_link(token)
        assert net.link_loss_probability("a", "b") == 0.0

    def test_loss_window_composes_with_base(self):
        sim = Simulator(seed=3)
        net, a, b = make_pair(sim, loss_probability=0.0)
        token = net.add_loss_window(1.0)
        assert net.effective_loss_probability("a", "b") == 1.0
        a.send("b", "data", {"n": 1})
        sim.run()
        assert b.received == []
        net.remove_loss_window(token)
        assert net.effective_loss_probability("a", "b") == 0.0
        a.send("b", "data", {"n": 2})
        sim.run()
        assert [n for _, n in b.received] == [2]

    def test_duplication_window(self):
        sim = Simulator(seed=3)
        net, a, b = make_pair(sim)
        token = net.add_duplication_window(1.0)
        a.send("b", "data", {"n": 1})
        sim.run()
        assert [n for _, n in b.received] == [1, 1]
        net.remove_duplication_window(token)
        a.send("b", "data", {"n": 2})
        sim.run()
        assert [n for _, n in b.received] == [1, 1, 2]

    def test_degrade_link_rejects_bad_args(self, sim):
        net, a, b = make_pair(sim)
        with pytest.raises(ValueError):
            net.degrade_link("a", "b", extra_delay_ms=-1.0)
        with pytest.raises(ValueError):
            net.degrade_link("a", "b", loss_probability=2.0)
        with pytest.raises(ValueError):
            net.add_loss_window(-0.5)
        with pytest.raises(ValueError):
            net.add_duplication_window(1.5)


class TestMessage:
    def test_unique_ids(self):
        m1 = Message(src="a", dst="b", kind="k")
        m2 = Message(src="a", dst="b", kind="k")
        assert m1.msg_id != m2.msg_id

    def test_duplicate_copies_payload_and_reply_to(self):
        m = Message(src="a", dst="b", kind="k", payload={"x": 1}, reply_to=77)
        d = m.duplicate()
        assert d.msg_id != m.msg_id
        assert d.reply_to == 77
        assert d.payload == {"x": 1}
        d.payload["x"] = 2
        assert m.payload["x"] == 1  # independent copy

    def test_getitem_and_get(self):
        m = Message(src="a", dst="b", kind="k", payload={"x": 1})
        assert m["x"] == 1
        assert m.get("y", "dflt") == "dflt"

    def test_duplicate_preserves_span_id(self):
        m = Message(src="a", dst="b", kind="k", span_id=42)
        assert m.duplicate().span_id == 42


class TestNetworkStats:
    def test_copy_is_independent(self, sim):
        net, a, b = make_pair(sim)
        a.send("b", "data", {"n": 1})
        sim.run()
        snap = net.stats.copy()
        assert snap.total_messages == 1
        assert snap.by_kind["data"] == 1
        a.send("b", "data", {"n": 2})
        sim.run()
        # later traffic must not leak into the earlier snapshot
        assert snap.total_messages == 1
        assert snap.by_kind["data"] == 1
        assert net.stats.total_messages == 2
        # nor may mutating the copy touch the live stats
        snap.by_kind["data"] += 10
        assert net.stats.by_kind["data"] == 2

    def test_diff_yields_counters_since_snapshot(self, sim):
        net, a, b = make_pair(sim)
        a.send("b", "data", {"n": 1})
        sim.run()
        before = net.stats.copy()
        a.send("b", "data", {"n": 2})
        a.send("b", "ping", {"n": 3})
        sim.run()
        delta = net.stats.diff(before)
        assert delta.total_messages == 3  # data + ping + ping's reply
        assert delta.by_kind["data"] == 1
        assert delta.by_kind["ping"] == 1
        assert delta.by_pair[("a", "b")] == 2
        # no phantom negative/zero-count keys from the subtraction
        assert all(v > 0 for v in delta.by_kind.values())

    def test_diff_of_drops(self, sim):
        net, a, b = make_pair(sim)
        before = net.stats.copy()
        token = net.partition(["a"], ["b"])
        a.send("b", "data", {"n": 1})
        sim.run()
        delta = net.stats.diff(before)
        assert delta.dropped == 1
        assert delta.total_messages == 1  # sends are recorded, then dropped
        net.heal(token)


class TestRngStreamIsolation:
    """Per-purpose RNG streams: enabling a fault lane must never shift
    the draws of another lane (the golden determinism contract in the
    module docstring).  Before the split, a single shared ``sim.rng``
    meant e.g. ``duplicate_probability=0.0001`` consumed a dup draw per
    message and thereby reshuffled every later delivery delay."""

    def _delivery_times(self, **net_kwargs):
        sim = Simulator(seed=7)
        net, a, b = make_pair(
            sim, delay_model=JitteredDelay(ConstantDelay(10.0), 8.0), **net_kwargs
        )
        for n in range(30):
            a.send("b", "data", {"n": n})
        sim.run()
        return b.received

    def test_fault_flag_noop_is_byte_identical(self):
        """Setting a fault probability that never fires (or a window
        that can't fire) leaves the whole trace untouched."""
        baseline = self._delivery_times()
        assert baseline == self._delivery_times(duplicate_probability=1e-12)
        assert baseline == self._delivery_times(loss_probability=1e-12)

    def test_loss_preserves_survivor_delays(self):
        """With real loss, every *surviving* message is delivered at
        exactly the delay the lossless run gave it — loss filters the
        trace, it does not reshuffle it."""
        baseline = {n: t for t, n in self._delivery_times()}
        lossy = self._delivery_times(loss_probability=0.3)
        assert 0 < len(lossy) < len(baseline)
        for t, n in lossy:
            assert baseline[n] == t

    def test_duplication_preserves_primary_delays(self):
        """Duplicate copies draw from the dup stream; every primary
        delivery still happens at exactly its lossless-run instant (the
        duplicates are pure additions to the trace)."""
        from collections import Counter

        baseline = Counter(self._delivery_times())
        duped = Counter(self._delivery_times(duplicate_probability=0.4))
        assert sum(duped.values()) > 30
        missing = baseline - duped
        assert not missing, f"primary deliveries perturbed: {missing}"

    def test_streams_are_seed_derived(self):
        """Same seed, same trace; different seed, different trace."""
        assert self._delivery_times() == self._delivery_times()
        sim = Simulator(seed=8)
        net, a, b = make_pair(sim, delay_model=JitteredDelay(ConstantDelay(10.0), 8.0))
        for n in range(30):
            a.send("b", "data", {"n": n})
        sim.run()
        assert b.received != self._delivery_times()
