"""Tests for the baseline protocols: majority, primary/backup, ROWA,
ROWA-Async."""

import pytest

from repro.protocols import (
    VersionedStore,
    build_majority_cluster,
    build_primary_backup_cluster,
    build_rowa_async_cluster,
    build_rowa_cluster,
)
from repro.sim import ConstantDelay, Network, RpcTimeout, Simulator
from repro.types import ZERO_LC, LogicalClock


def world(seed=0, delay=10.0, **net_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(delay), **net_kwargs)
    return sim, net


SERVERS = [f"s{i}" for i in range(5)]


class TestVersionedStore:
    def test_initial_state(self):
        store = VersionedStore()
        assert store.get("x") == (None, ZERO_LC)
        assert "x" not in store
        assert len(store) == 0

    def test_apply_newer_wins(self):
        store = VersionedStore()
        assert store.apply("x", "a", LogicalClock(1, "n")) is True
        assert store.apply("x", "b", LogicalClock(3, "n")) is True
        assert store.apply("x", "c", LogicalClock(2, "n")) is False
        assert store.get("x") == ("b", LogicalClock(3, "n"))

    def test_equal_clock_not_applied(self):
        store = VersionedStore()
        store.apply("x", "a", LogicalClock(1, "n"))
        assert store.apply("x", "b", LogicalClock(1, "n")) is False


class TestMajority:
    def test_write_read_roundtrip(self):
        sim, net = world()
        cluster = build_majority_cluster(sim, net, SERVERS)
        client = cluster.client("c", prefer="s0")

        def scenario():
            w = yield from client.write("x", "v1")
            r = yield from client.read("x")
            return (r.value, r.lc == w.lc, w.latency, r.latency)

        value, same, wlat, rlat = sim.run_process(scenario())
        assert (value, same) == ("v1", True)
        assert wlat == 40.0  # two rounds
        assert rlat == 20.0  # one round

    def test_read_sees_latest_despite_partial_replicas(self):
        """A majority write followed by a majority read must intersect."""
        sim, net = world(seed=7)
        cluster = build_majority_cluster(sim, net, SERVERS)
        c0 = cluster.client("c0")
        c1 = cluster.client("c1")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.write("x", "v2")
            r = yield from c1.read("x")
            return r.value

        assert sim.run_process(scenario()) == "v2"

    def test_minority_crash_tolerated(self):
        sim, net = world()
        cluster = build_majority_cluster(sim, net, SERVERS)
        cluster.server("s0").crash()
        cluster.server("s1").crash()
        client = cluster.client("c", prefer="s0")

        def scenario():
            yield from client.write("x", "v")
            r = yield from client.read("x")
            return r.value

        assert sim.run_process(scenario(), until=100_000.0) == "v"

    def test_lc_advances_across_clients(self):
        sim, net = world()
        cluster = build_majority_cluster(sim, net, SERVERS)
        c0, c1 = cluster.client("c0"), cluster.client("c1")

        def scenario():
            w1 = yield from c0.write("x", "a")
            w2 = yield from c1.write("x", "b")
            return w1.lc < w2.lc

        assert sim.run_process(scenario()) is True


class TestPrimaryBackup:
    def test_roundtrip_and_latency(self):
        sim, net = world()
        cluster = build_primary_backup_cluster(sim, net, SERVERS)
        client = cluster.client("c")

        def scenario():
            w = yield from client.write("x", "v1")
            r = yield from client.read("x")
            return (r.value, w.latency, r.latency)

        assert sim.run_process(scenario()) == ("v1", 20.0, 20.0)

    def test_backups_receive_updates(self):
        sim, net = world()
        cluster = build_primary_backup_cluster(sim, net, SERVERS)
        client = cluster.client("c")

        def scenario():
            yield from client.write("x", "v1")
            yield sim.sleep(100.0)  # propagation

        sim.run_process(scenario())
        for backup in cluster.backups:
            assert backup.store.get("x")[0] == "v1"

    def test_primary_down_blocks_everything(self):
        sim, net = world()
        cluster = build_primary_backup_cluster(sim, net, SERVERS)
        cluster.primary.crash()
        client = cluster.client("c")
        client.max_attempts = 2
        client.rpc_timeout_ms = 100.0

        def scenario():
            try:
                yield from client.read("x")
            except RpcTimeout:
                return "unavailable"

        assert sim.run_process(scenario()) == "unavailable"

    def test_custom_primary(self):
        sim, net = world()
        cluster = build_primary_backup_cluster(sim, net, SERVERS, primary_id="s3")
        assert cluster.primary.node_id == "s3"
        assert {b.node_id for b in cluster.backups} == set(SERVERS) - {"s3"}

    def test_writes_are_ordered_by_primary(self):
        sim, net = world()
        cluster = build_primary_backup_cluster(sim, net, SERVERS)
        c0, c1 = cluster.client("c0"), cluster.client("c1")

        def scenario():
            w1 = yield from c0.write("x", "a")
            w2 = yield from c1.write("x", "b")
            r = yield from c0.read("x")
            return (w1.lc < w2.lc, r.value)

        assert sim.run_process(scenario()) == (True, "b")


class TestRowa:
    def test_roundtrip_and_latency(self):
        sim, net = world()
        cluster = build_rowa_cluster(sim, net, SERVERS)
        client = cluster.client("c", prefer="s2")

        def scenario():
            w = yield from client.write("x", "v1")
            r = yield from client.read("x")
            return (r.value, w.latency, r.latency, r.server)

        value, wlat, rlat, server = sim.run_process(scenario())
        assert value == "v1"
        assert wlat == 20.0  # parallel write-all, one round
        assert rlat == 20.0
        assert server == "s2"

    def test_every_replica_has_value_after_write(self):
        sim, net = world()
        cluster = build_rowa_cluster(sim, net, SERVERS)
        client = cluster.client("c")

        def scenario():
            yield from client.write("x", "v1")

        sim.run_process(scenario())
        for server in cluster.servers:
            assert server.store.get("x")[0] == "v1"

    def test_any_single_replica_serves_fresh_read(self):
        sim, net = world(seed=5)
        cluster = build_rowa_cluster(sim, net, SERVERS)
        writer = cluster.client("w")
        readers = [cluster.client(f"r{i}", prefer=s) for i, s in enumerate(SERVERS)]

        def scenario():
            yield from writer.write("x", "fresh")
            values = []
            for reader in readers:
                r = yield from reader.read("x")
                values.append(r.value)
            return values

        assert sim.run_process(scenario()) == ["fresh"] * 5

    def test_one_replica_down_blocks_writes_not_reads(self):
        sim, net = world()
        cluster = build_rowa_cluster(
            sim, net, SERVERS,
            qrpc_config={"initial_timeout_ms": 100.0, "max_attempts": 2},
        )
        cluster.server("s4").crash()
        client = cluster.client("c", prefer="s0")

        def scenario():
            r = yield from client.read("x")  # fine
            from repro.quorum import QrpcError

            try:
                yield from client.write("x", "v")
            except QrpcError:
                return (r.value, "write-blocked")

        assert sim.run_process(scenario(), until=100_000.0) == (None, "write-blocked")

    def test_sequential_writes_ordered(self):
        sim, net = world()
        cluster = build_rowa_cluster(sim, net, SERVERS)
        client = cluster.client("c")

        def scenario():
            w1 = yield from client.write("x", "a")
            w2 = yield from client.write("x", "b")
            r = yield from client.read("x")
            return (w1.lc < w2.lc, r.value)

        assert sim.run_process(scenario()) == (True, "b")


class TestRowaAsync:
    def test_local_roundtrip(self):
        sim, net = world()
        cluster = build_rowa_async_cluster(sim, net, SERVERS)
        client = cluster.client("c", prefer="s1")

        def scenario():
            w = yield from client.write("x", "v1")
            r = yield from client.read("x")
            return (r.value, w.latency, r.latency)

        assert sim.run_process(scenario(), until=50.0) == ("v1", 20.0, 20.0)

    def test_eager_push_propagates_quickly(self):
        sim, net = world()
        cluster = build_rowa_async_cluster(sim, net, SERVERS)
        writer = cluster.client("w", prefer="s0")
        reader = cluster.client("r", prefer="s4")

        def scenario():
            yield from writer.write("x", "v1")
            yield sim.sleep(50.0)  # push arrives in one delay
            r = yield from reader.read("x")
            return r.value

        assert sim.run_process(scenario(), until=200.0) == "v1"

    def test_stale_read_within_propagation_window(self):
        """The defining ROWA-Async anomaly: a remote replica serves the
        old value until propagation reaches it."""
        sim, net = world()
        cluster = build_rowa_async_cluster(sim, net, SERVERS)
        writer = cluster.client("w", prefer="s0")
        reader = cluster.client("r", prefer="s4")

        def scenario():
            yield from writer.write("x", "new")
            # read immediately: the push (10ms s0->s4) has not landed
            # at s4 when the read (10ms r->s4) arrives only if issued
            # by a closer client; force it by reading from s4 directly
            # at time of write completion.
            r = yield from reader.read("x")
            return r.value

        # reader->s4 takes 10ms; push s0->s4 lands at 30ms (write done
        # at 20ms at s0... the push was sent at 10ms, lands at 20ms).
        # Use zero-delay reader to catch the window instead:
        value = sim.run_process(scenario(), until=1000.0)
        # Either stale or fresh depending on timing; assert only that the
        # system eventually converges:
        def converged():
            yield sim.sleep(5000.0)
            r = yield from reader.read("x")
            return r.value

        assert sim.run_process(converged(), until=20_000.0) == "new"

    def test_anti_entropy_heals_partition(self):
        """Updates lost during a partition are repaired by gossip."""
        sim, net = world(seed=9)
        cluster = build_rowa_async_cluster(
            sim, net, SERVERS, gossip_interval_ms=500.0
        )
        writer = cluster.client("w", prefer="s0")
        reader = cluster.client("r", prefer="s4")
        # isolate s4 so the eager push is lost
        net.partition(["s0", "s1", "s2", "s3"], ["s4"])

        def scenario():
            yield from writer.write("x", "healed")
            yield sim.sleep(2000.0)
            net.heal()
            yield sim.sleep(10_000.0)  # several gossip rounds
            r = yield from reader.read("x")
            return r.value

        assert sim.run_process(scenario(), until=60_000.0) == "healed"

    def test_gossip_digest_traffic_exists(self):
        sim, net = world()
        cluster = build_rowa_async_cluster(sim, net, SERVERS, gossip_interval_ms=100.0)

        def scenario():
            yield sim.sleep(1000.0)

        sim.run_process(scenario(), until=1000.0)
        assert net.stats.by_kind["ra_digest"] > 0

    def test_no_gossip_when_disabled(self):
        sim, net = world()
        cluster = build_rowa_async_cluster(sim, net, SERVERS, gossip_interval_ms=0.0)

        def scenario():
            yield sim.sleep(1000.0)

        sim.run_process(scenario(), until=1000.0)
        assert net.stats.by_kind["ra_digest"] == 0

    def test_concurrent_writes_converge_lww(self):
        sim, net = world(seed=3)
        cluster = build_rowa_async_cluster(sim, net, SERVERS, gossip_interval_ms=200.0)
        w0 = cluster.client("w0", prefer="s0")
        w1 = cluster.client("w1", prefer="s4")

        def writes():
            p0 = sim.spawn(w0.write("x", "from-s0"))
            p1 = sim.spawn(w1.write("x", "from-s4"))
            yield p0
            yield p1
            yield sim.sleep(10_000.0)
            values = [s.store.get("x")[0] for s in cluster.servers]
            return values

        values = sim.run_process(writes(), until=60_000.0)
        assert len(set(values)) == 1  # all replicas converged
        assert values[0] in ("from-s0", "from-s4")
