"""Tests for the measured-availability harness (Figure 8 cross-check)."""

import pytest

from repro.analysis import protocol_unavailability
from repro.harness.availability import (
    AvailabilitySimConfig,
    AvailabilitySimResult,
    run_availability_sim,
)

# A high per-node failure probability so a short simulation produces
# statistically meaningful rejection counts.
P = 0.15
N = 5
W = 0.25


def run(protocol, epochs=120, seed=3, p=P, **kwargs):
    return run_availability_sim(
        AvailabilitySimConfig(
            protocol=protocol,
            write_ratio=W,
            num_replicas=N,
            p=p,
            epochs=epochs,
            seed=seed,
            max_attempts=4,
            **kwargs,
        )
    )


class TestConfigValidation:
    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            AvailabilitySimConfig(protocol="chain")

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            AvailabilitySimConfig(p=1.5)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            AvailabilitySimConfig(epochs=0)


class TestPerfectConditions:
    @pytest.mark.parametrize("protocol", ["dqvl", "majority", "rowa", "rowa_async"])
    def test_no_failures_means_full_availability(self, protocol):
        result = run(protocol, epochs=10, seed=1, p=0.0)
        assert result.total_requests > 0
        assert result.unavailability == 0.0


class TestMeasuredShapes:
    """The Figure 8 claims, verified on measured (not analytic) numbers."""

    def test_majority_matches_analytic(self):
        result = run("majority")
        analytic = protocol_unavailability("majority", W, N, P)
        assert result.unavailability == pytest.approx(analytic, rel=0.8)

    def test_dqvl_tracks_majority_and_lease_masking(self):
        """DQVL's measured unavailability is close to the majority's —
        and no worse than its own *pessimistic* analytic bound: the paper
        notes valid leases mask failures shorter than the lease."""
        dqvl = run("dqvl")
        majority = run("majority")
        analytic = protocol_unavailability("dqvl", W, N, P)
        assert dqvl.unavailability <= analytic * 1.5
        assert dqvl.unavailability == pytest.approx(
            majority.unavailability, abs=0.03
        )

    def test_rowa_writes_suffer(self):
        """ROWA's unavailability is dominated by its write-all path."""
        rowa = run("rowa")
        majority = run("majority")
        assert rowa.unavailability > 2.0 * majority.unavailability

    def test_primary_backup_pinned_to_primary(self):
        result = run("primary_backup")
        # about p, far above the quorum protocols
        assert 0.5 * P <= result.unavailability <= 1.2 * P

    def test_rowa_async_stale_vs_no_stale(self):
        """Counting stale reads as rejections (the fair comparison)
        costs ROWA-Async a large availability factor."""
        stale_ok = run("rowa_async")
        no_stale = run("rowa_async_no_stale")
        assert no_stale.total_requests == stale_ok.total_requests
        assert no_stale.unavailability > 3.0 * stale_ok.unavailability

    def test_determinism(self):
        a = run("majority", epochs=40)
        b = run("majority", epochs=40)
        assert a.unavailability == b.unavailability
        assert a.total_requests == b.total_requests

    def test_result_accessors(self):
        result = run("rowa_async_no_stale", epochs=30)
        assert isinstance(result, AvailabilitySimResult)
        assert result.rejected + result.stale_rejected >= result.stale_rejected
        assert 0.0 <= result.availability <= 1.0
        assert result.availability == pytest.approx(1 - result.unavailability)
