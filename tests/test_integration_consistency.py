"""End-to-end consistency integration tests.

Runs every protocol under concurrent multi-client workloads — with and
without fault injection — and checks the recorded histories against the
regular-semantics checker.  This is the executable form of the paper's
Section 3.3 correctness claim, plus the demonstration that ROWA-Async
(and only ROWA-Async) violates regular semantics.
"""

import pytest

from repro.consistency import History, check_regular, staleness_report
from repro.core import DqvlConfig, build_dqvl_cluster
from repro.harness import ExperimentConfig, run_response_time
from repro.protocols import build_rowa_async_cluster
from repro.sim import ConstantDelay, MatrixDelay, Network, Simulator
from repro.workload import BernoulliOpStream, UniformKeyChooser, closed_loop

STRONG_PROTOCOLS = ["dqvl", "basic_dq", "majority", "rowa", "primary_backup"]


class TestRegularSemanticsEndToEnd:
    @pytest.mark.parametrize("protocol", STRONG_PROTOCOLS)
    @pytest.mark.parametrize("write_ratio", [0.05, 0.5])
    def test_protocol_is_regular(self, protocol, write_ratio):
        cfg = ExperimentConfig(
            protocol=protocol,
            write_ratio=write_ratio,
            ops_per_client=80,
            warmup_ops=5,
            seed=17,
        )
        result = run_response_time(cfg)
        violations = check_regular(result.full_history())
        assert violations == [], violations[:3]

    @pytest.mark.parametrize("protocol", STRONG_PROTOCOLS)
    def test_protocol_regular_under_low_locality(self, protocol):
        """Low locality maximises cross-replica traffic — the hard case."""
        cfg = ExperimentConfig(
            protocol=protocol,
            write_ratio=0.3,
            locality=0.3,
            ops_per_client=60,
            warmup_ops=5,
            seed=23,
        )
        result = run_response_time(cfg)
        assert check_regular(result.full_history()) == []

    def test_dqvl_regular_with_contended_object(self):
        """Three clients hammer the SAME object from different replicas —
        the anti-locality worst case the protocol must survive."""
        sim = Simulator(seed=29)
        net = Network(sim, ConstantDelay(15.0))
        config = DqvlConfig(
            lease_length_ms=1500.0,
            inval_initial_timeout_ms=100.0,
            qrpc_initial_timeout_ms=100.0,
        )
        cluster = build_dqvl_cluster(
            sim, net,
            [f"iqs{i}" for i in range(3)],
            [f"oqs{i}" for i in range(3)],
            config,
        )
        history = History()
        procs = []
        for k in range(3):
            client = cluster.client(f"c{k}", prefer_oqs=f"oqs{k}")
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(["hot"]), write_ratio=0.4, label=f"c{k}-"
            )
            procs.append(
                sim.spawn(closed_loop(sim, client, stream, history, num_ops=50))
            )
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        assert check_regular(history) == []

    def test_dqvl_regular_under_loss_and_crashes(self):
        sim = Simulator(seed=31)
        net = Network(sim, ConstantDelay(15.0), loss_probability=0.1)
        config = DqvlConfig(
            lease_length_ms=1000.0,
            inval_initial_timeout_ms=100.0,
            qrpc_initial_timeout_ms=100.0,
        )
        cluster = build_dqvl_cluster(
            sim, net,
            [f"iqs{i}" for i in range(5)],
            [f"oqs{i}" for i in range(5)],
            config,
        )
        # crash/recover an OQS node and an IQS node mid-run
        from repro.sim import crash_for

        crash_for(sim, cluster.oqs_node("oqs1"), at=2_000.0, duration=3_000.0)
        crash_for(sim, cluster.iqs_node("iqs0"), at=4_000.0, duration=3_000.0)

        history = History()
        procs = []
        for k in range(3):
            client = cluster.client(f"c{k}", prefer_oqs=f"oqs{k}")
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(["a", "b"]), write_ratio=0.3, label=f"c{k}-"
            )
            procs.append(
                sim.spawn(closed_loop(sim, client, stream, history, num_ops=40))
            )
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        assert check_regular(history) == []

    def test_dqvl_regular_during_network_partition(self):
        """A partition separating one OQS node: writes proceed after the
        lease expires; the rejoined node must not serve stale data."""
        sim = Simulator(seed=37)
        net = Network(sim, ConstantDelay(15.0))
        config = DqvlConfig(
            lease_length_ms=800.0,
            inval_initial_timeout_ms=100.0,
            qrpc_initial_timeout_ms=100.0,
        )
        cluster = build_dqvl_cluster(
            sim, net,
            [f"iqs{i}" for i in range(3)],
            [f"oqs{i}" for i in range(3)],
            config,
        )
        everyone_else = [f"iqs{i}" for i in range(3)] + ["oqs0", "oqs1"]
        from repro.sim import partition_for

        partition_for(sim, net, [everyone_else, ["oqs2"]], at=1_500.0, duration=3_000.0)

        history = History()
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c2 = cluster.client("c2", prefer_oqs="oqs2")
        net.delay_model  # c2 partitioned with oqs2? clients stay connected
        stream0 = BernoulliOpStream(
            sim.rng, UniformKeyChooser(["k"]), write_ratio=0.5, label="c0-"
        )
        stream2 = BernoulliOpStream(
            sim.rng, UniformKeyChooser(["k"]), write_ratio=0.0, label="c2-"
        )
        p0 = sim.spawn(closed_loop(sim, c0, stream0, history, num_ops=40))
        p2 = sim.spawn(closed_loop(sim, c2, stream2, history, num_ops=40))
        sim.run(until=3_600_000.0)
        assert p0.done and p2.done
        assert check_regular(history) == []


class TestRowaAsyncAnomalies:
    def test_stale_read_violates_regular_semantics(self):
        """Deterministic construction of the ROWA-Async anomaly: a write
        completes at one replica while a distant replica still serves
        the old value."""
        sim = Simulator(seed=0)
        delays = MatrixDelay({}, default_ms=1.0)
        delays.set("s0", "s1", 100.0)  # slow inter-replica link
        net = Network(sim, delays)
        cluster = build_rowa_async_cluster(
            sim, net, ["s0", "s1"], gossip_interval_ms=10_000.0
        )
        writer = cluster.client("w", prefer="s0")
        reader = cluster.client("r", prefer="s1")
        history = History()

        def scenario():
            w1 = yield from writer.write("x", "v1")
            history.record_write(w1)
            yield sim.sleep(500.0)  # v1 fully propagated
            w2 = yield from writer.write("x", "v2")  # completes at t~502
            history.record_write(w2)
            r = yield from reader.read("x")  # push still in flight
            history.record_read(r)
            return r.value

        value = sim.run_process(scenario(), until=600_000.0)
        assert value == "v1"  # the stale read happened
        violations = check_regular(history)
        assert len(violations) == 1

    def test_staleness_unbounded_during_partition(self):
        """With the propagation path severed, staleness grows without
        bound — the paper's core criticism of ROWA-Async."""
        sim = Simulator(seed=1)
        net = Network(sim, ConstantDelay(5.0))
        cluster = build_rowa_async_cluster(
            sim, net, ["s0", "s1"], gossip_interval_ms=1_000.0
        )
        net.partition(["s0"], ["s1"])
        writer = cluster.client("w", prefer="s0")
        reader = cluster.client("r", prefer="s1")
        history = History()

        def scenario():
            w = yield from writer.write("x", "new")
            history.record_write(w)
            for _ in range(5):
                yield sim.sleep(60_000.0)  # a minute at a time
                r = yield from reader.read("x")
                history.record_read(r)

        sim.run_process(scenario(), until=3_600_000.0)
        report = staleness_report(history)
        assert report.stale_reads == 5
        assert report.max_staleness_ms > 250_000.0

    def test_workload_level_violations_appear(self):
        """Under cross-node contention the harness-level run shows
        ROWA-Async violating regular semantics while DQVL does not."""
        # Contend on one object from all clients; clients sit next to
        # their replica (5 ms) while replicas are far apart (100 ms), so
        # writes complete long before their epidemic push lands — the
        # realistic edge geometry in which the anomaly shows.
        sim = Simulator(seed=41)
        delays = MatrixDelay({}, default_ms=100.0)
        for k in range(3):
            delays.set(f"c{k}", f"s{k}", 5.0)
        net = Network(sim, delays)
        cluster = build_rowa_async_cluster(
            sim, net, [f"s{i}" for i in range(3)], gossip_interval_ms=2_000.0
        )
        history = History()
        procs = []
        for k in range(3):
            client = cluster.client(f"c{k}", prefer=f"s{k}")
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(["hot"]), write_ratio=0.4, label=f"c{k}-"
            )
            procs.append(
                sim.spawn(closed_loop(sim, client, stream, history, num_ops=60))
            )
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        assert len(check_regular(history)) > 0


class TestSimulationMatchesAnalyticModel:
    """The simulator's steady-state latencies match the closed forms."""

    def test_dqvl_read_hit(self):
        from repro.analysis import expected_latency

        cfg = ExperimentConfig(
            protocol="dqvl", write_ratio=0.0, ops_per_client=50,
            warmup_ops=5, seed=2,
        )
        res = run_response_time(cfg)
        assert res.summary.reads.mean == pytest.approx(
            expected_latency("dqvl", "read", local=True, miss=False), abs=1.0
        )

    def test_majority_read_and_write(self):
        from repro.analysis import expected_latency

        cfg = ExperimentConfig(
            protocol="majority", write_ratio=0.5, ops_per_client=60,
            warmup_ops=5, seed=3,
        )
        res = run_response_time(cfg)
        assert res.summary.reads.mean == pytest.approx(
            expected_latency("majority", "read"), abs=1.0
        )
        assert res.summary.writes.mean == pytest.approx(
            expected_latency("majority", "write"), abs=1.0
        )

    def test_rowa_latencies(self):
        from repro.analysis import expected_latency

        cfg = ExperimentConfig(
            protocol="rowa", write_ratio=0.5, ops_per_client=60,
            warmup_ops=5, seed=4,
        )
        res = run_response_time(cfg)
        assert res.summary.reads.mean == pytest.approx(
            expected_latency("rowa", "read"), abs=1.0
        )
        assert res.summary.writes.mean == pytest.approx(
            expected_latency("rowa", "write"), abs=1.0
        )

    def test_rowa_async_flat(self):
        from repro.analysis import expected_latency

        cfg = ExperimentConfig(
            protocol="rowa_async", write_ratio=0.5, ops_per_client=60,
            warmup_ops=5, seed=5,
        )
        res = run_response_time(cfg)
        assert res.summary.overall.mean == pytest.approx(
            expected_latency("rowa_async", "read"), abs=1.0
        )
