"""Tests for the edge topology, front ends, and deployments."""

import pytest

from repro.edge import (
    EdgeTopology,
    EdgeTopologyConfig,
    LocalityRedirection,
    OperationFailed,
    PROTOCOL_DEPLOYERS,
    deploy_dqvl,
    deploy_majority,
    deploy_primary_backup,
    deploy_rowa_async,
)
from repro.sim import Message, Simulator


@pytest.fixture
def topo():
    sim = Simulator(seed=0)
    return EdgeTopology(sim, EdgeTopologyConfig(num_edges=4, num_clients=2))


class TestTopologyDelays:
    def test_same_host_zero_delay(self, topo):
        topo.place_on_edge("a", 0)
        topo.place_on_edge("b", 0)
        assert topo.delay_model.delay("a", "b", topo.sim.rng) == 0.0

    def test_edge_to_edge(self, topo):
        topo.place_on_edge("a", 0)
        topo.place_on_edge("b", 1)
        assert topo.delay_model.delay("a", "b", topo.sim.rng) == 80.0

    def test_client_to_home_edge_is_lan(self, topo):
        topo.place_on_client("app", 0)
        topo.place_on_edge("srv", 0)  # client 0's home is edge 0
        assert topo.delay_model.delay("app", "srv", topo.sim.rng) == 8.0
        assert topo.delay_model.delay("srv", "app", topo.sim.rng) == 8.0

    def test_client_to_distant_edge_is_wan(self, topo):
        topo.place_on_client("app", 0)
        topo.place_on_edge("srv", 2)
        assert topo.delay_model.delay("app", "srv", topo.sim.rng) == 86.0

    def test_unplaced_node_raises(self, topo):
        topo.place_on_edge("a", 0)
        with pytest.raises(KeyError):
            topo.delay_model.delay("a", "ghost", topo.sim.rng)

    def test_processing_delay_charged_at_edges(self):
        sim = Simulator(seed=0)
        topo = EdgeTopology(
            sim, EdgeTopologyConfig(num_edges=2, num_clients=1, processing_ms=3.0)
        )
        topo.place_on_client("app", 0)
        topo.place_on_edge("srv", 0)
        # toward the edge: LAN + processing; toward the client: LAN only
        assert topo.delay_model.delay("app", "srv", sim.rng) == 11.0
        assert topo.delay_model.delay("srv", "app", sim.rng) == 8.0

    def test_host_index_bounds(self, topo):
        with pytest.raises(IndexError):
            topo.edge_host(99)
        with pytest.raises(IndexError):
            topo.client_host(5)

    def test_home_edge_wraps(self):
        sim = Simulator(seed=0)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=5))
        assert topo.home_edge_index(4) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EdgeTopologyConfig(num_edges=0)
        with pytest.raises(ValueError):
            EdgeTopologyConfig(lan_ms=-1)


class TestRedirection:
    def test_full_locality_always_home(self):
        import random

        policy = LocalityRedirection("fe0", ["fe0", "fe1", "fe2"], 1.0)
        rng = random.Random(0)
        assert all(policy.pick(rng) == "fe0" for _ in range(50))

    def test_zero_locality_never_home(self):
        import random

        policy = LocalityRedirection("fe0", ["fe0", "fe1", "fe2"], 0.0)
        rng = random.Random(0)
        assert all(policy.pick(rng) != "fe0" for _ in range(50))

    def test_intermediate_locality_rate(self):
        import random

        policy = LocalityRedirection("fe0", ["fe0", "fe1"], 0.7)
        rng = random.Random(1)
        home = sum(policy.pick(rng) == "fe0" for _ in range(2000))
        assert 1300 < home < 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityRedirection("fe0", ["fe0"], 0.5)
        with pytest.raises(ValueError):
            LocalityRedirection("feX", ["fe0", "fe1"], 1.0)
        with pytest.raises(ValueError):
            LocalityRedirection("fe0", ["fe0", "fe1"], 1.5)


class TestDeployments:
    @pytest.mark.parametrize("name", sorted(PROTOCOL_DEPLOYERS))
    def test_every_protocol_serves_via_front_end(self, name):
        sim = Simulator(seed=1)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=1))
        deployment = PROTOCOL_DEPLOYERS[name](topo)
        app = deployment.app_client(0)

        def scenario():
            yield from app.write("k", "v")
            r = yield from app.read("k")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v"

    @pytest.mark.parametrize("name", sorted(PROTOCOL_DEPLOYERS))
    def test_every_protocol_direct_client(self, name):
        sim = Simulator(seed=2)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=1))
        deployment = PROTOCOL_DEPLOYERS[name](topo)
        client = deployment.direct_client(0)

        def scenario():
            yield from client.write("k", "v")
            r = yield from client.read("k")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v"

    def test_dqvl_deployment_read_hit_latency(self):
        sim = Simulator(seed=3)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=1))
        deployment = deploy_dqvl(topo)
        client = deployment.direct_client(0)

        def scenario():
            yield from client.write("k", "v")
            yield from client.read("k")  # miss
            r = yield from client.read("k")  # hit: one LAN round trip
            return (r.hit, r.latency)

        assert sim.run_process(scenario(), until=600_000.0) == (True, 16.0)

    def test_dqvl_num_iqs_subset(self):
        sim = Simulator(seed=3)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=5, num_clients=1))
        deployment = deploy_dqvl(topo, num_iqs=3)
        assert len(deployment.cluster.iqs_nodes) == 3
        assert len(deployment.cluster.oqs_nodes) == 5
        with pytest.raises(ValueError):
            deploy_dqvl(EdgeTopology(Simulator(0), EdgeTopologyConfig(num_edges=3)), num_iqs=9)

    def test_set_preferred_edge_switches_replica(self):
        sim = Simulator(seed=4)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=1))
        deployment = deploy_majority(topo)
        client = deployment.direct_client(0)
        deployment.set_preferred_edge(client, 2)
        assert client.prefer == "srv2"

    def test_primary_backup_has_no_replica_choice(self):
        sim = Simulator(seed=4)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=1))
        deployment = deploy_primary_backup(topo)
        client = deployment.direct_client(0)
        deployment.set_preferred_edge(client, 2)  # must be a harmless no-op
        assert client.primary_id == "srv0"

    def test_front_end_reports_errors_as_operation_failed(self):
        sim = Simulator(seed=5)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=1))
        deployment = deploy_rowa_async(topo, client_max_attempts=2)
        # crash the whole storage tier
        for server in deployment.cluster.servers:
            server.crash()
        app = deployment.app_client(0, request_timeout_ms=120_000.0)

        def scenario():
            try:
                yield from app.read("k")
            except OperationFailed:
                return "failed"

        assert sim.run_process(scenario(), until=600_000.0) == "failed"

    def test_protocol_message_count_excludes_fe_traffic(self):
        sim = Simulator(seed=6)
        topo = EdgeTopology(sim, EdgeTopologyConfig(num_edges=3, num_clients=1))
        deployment = deploy_majority(topo)
        app = deployment.app_client(0)

        def scenario():
            yield from app.read("k")

        sim.run_process(scenario(), until=600_000.0)
        protocol = deployment.protocol_message_count()
        total = topo.network.stats.total_messages
        assert 0 < protocol < total  # fe_read traffic excluded
