"""Tests for QRPC: quorum gathering, retransmission, failure handling."""

import pytest

from repro.quorum import (
    READ,
    WRITE,
    MajorityQuorumSystem,
    QrpcError,
    QuorumCall,
    RowaQuorumSystem,
    qrpc,
)
from repro.sim import ConstantDelay, Network, Node, Simulator


class EchoServer(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.requests = 0

    def on_q(self, msg):
        self.requests += 1
        self.reply(msg, payload={"from": self.node_id, "x": msg.get("x")})


def make_world(n=5, delay=10.0, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(delay))
    servers = [EchoServer(sim, net, f"n{i}") for i in range(n)]
    client = Node(sim, net, "client")
    return sim, net, servers, client


class TestBasicQrpc:
    def test_read_quorum_gathered(self):
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])

        def proc():
            replies = yield from qrpc(client, system, READ, "q", {"x": 1})
            return replies

        replies = sim.run_process(proc())
        assert len(replies) >= 3
        assert system.is_read_quorum(set(replies))
        assert all(r["x"] == 1 for r in replies.values())

    def test_write_quorum_gathered(self):
        sim, net, servers, client = make_world()
        system = RowaQuorumSystem([s.node_id for s in servers])

        def proc():
            replies = yield from qrpc(client, system, WRITE, "q", {})
            return replies

        replies = sim.run_process(proc())
        assert set(replies) == {s.node_id for s in servers}

    def test_invalid_mode_rejected(self):
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])
        with pytest.raises(ValueError):
            QuorumCall(client, system, "NEITHER", request_for=lambda t: ("q", {}))

    def test_completes_at_quorum_latency(self):
        sim, net, servers, client = make_world(delay=10.0)
        system = MajorityQuorumSystem([s.node_id for s in servers])

        def proc():
            yield from qrpc(client, system, READ, "q", {})
            return sim.now

        assert sim.run_process(proc()) == 20.0  # one round trip


class TestRetransmission:
    def test_retries_until_quorum_after_heal(self):
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])
        # block everything; heal after 1 second
        for s in servers:
            net.block("client", s.node_id)
        sim.schedule(1000.0, net.heal)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=100.0
            )
            return (sim.now, len(replies))

        when, count = sim.run_process(proc())
        assert when > 1000.0
        assert count >= 3

    def test_gives_up_after_max_attempts(self):
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])
        for s in servers:
            net.block("client", s.node_id)

        def proc():
            try:
                yield from qrpc(
                    client, system, READ, "q", {},
                    initial_timeout_ms=50.0, max_attempts=3,
                )
            except QrpcError as exc:
                return exc.attempts

        assert sim.run_process(proc()) == 3

    def test_exponential_backoff_caps(self):
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])
        for s in servers:
            net.block("client", s.node_id)

        def proc():
            try:
                yield from qrpc(
                    client, system, READ, "q", {},
                    initial_timeout_ms=100.0, backoff=2.0,
                    max_timeout_ms=200.0, max_attempts=4,
                )
            except QrpcError:
                return sim.now

        # attempts waits: 100 + 200 + 200 + 200 = 700
        assert sim.run_process(proc()) == pytest.approx(700.0)

    def test_replies_accumulate_across_attempts(self):
        """Partial quorums from different attempts combine."""
        sim, net, servers, client = make_world(n=3, seed=3)
        system = MajorityQuorumSystem([s.node_id for s in servers], read_size=3, write_size=1)
        # one server unreachable for a while
        net.block("client", "n0")
        sim.schedule(500.0, net.heal)

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=100.0
            )
            return set(replies)

        assert sim.run_process(proc()) == {"n0", "n1", "n2"}

    def test_crashed_server_does_not_block_majority(self):
        sim, net, servers, client = make_world()
        servers[0].crash()
        servers[1].crash()
        system = MajorityQuorumSystem([s.node_id for s in servers])

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, initial_timeout_ms=100.0
            )
            return set(replies)

        replies = sim.run_process(proc())
        assert len(replies) == 3
        assert "n0" not in replies and "n1" not in replies


class TestVariation:
    def test_custom_done_predicate(self):
        """The DQVL-style variation: loop until a protocol condition."""
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])
        seen = set()

        def request_for(target):
            return ("q", {"x": target})

        call = QuorumCall(
            client, system, READ,
            request_for=request_for,
            done=lambda replies: len(replies) >= 4,  # more than a quorum
            initial_timeout_ms=100.0,
        )

        def proc():
            replies = yield from call.run()
            return len(replies)

        assert sim.run_process(proc()) >= 4

    def test_request_factory_can_skip_targets(self):
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])

        def request_for(target):
            if target == "n0":
                return None
            return ("q", {})

        call = QuorumCall(
            client, system, READ, request_for=request_for,
            initial_timeout_ms=50.0,
        )

        def proc():
            replies = yield from call.run()
            return replies

        replies = sim.run_process(proc())
        assert "n0" not in replies
        assert servers[0].requests == 0

    def test_vacuously_true_predicate_sends_nothing(self):
        sim, net, servers, client = make_world()
        system = MajorityQuorumSystem([s.node_id for s in servers])
        call = QuorumCall(
            client, system, READ,
            request_for=lambda t: ("q", {}),
            done=lambda replies: True,
        )

        def proc():
            replies = yield from call.run()
            return replies

        assert sim.run_process(proc()) == {}
        assert all(s.requests == 0 for s in servers)

    def test_prefer_included_every_attempt(self):
        sim, net, servers, client = make_world(seed=9)
        system = MajorityQuorumSystem([s.node_id for s in servers])

        def proc():
            replies = yield from qrpc(
                client, system, READ, "q", {}, prefer="n2",
            )
            return replies

        replies = sim.run_process(proc())
        assert "n2" in replies

    def test_local_node_preferred_when_member(self):
        sim = Simulator(seed=0)
        net = Network(sim, ConstantDelay(10.0))
        servers = [EchoServer(sim, net, f"n{i}") for i in range(5)]
        # the client *is* n0 here: member of the system
        system = MajorityQuorumSystem([s.node_id for s in servers])

        def proc():
            replies = yield from qrpc(servers[0], system, READ, "q", {})
            return replies

        replies = sim.run_process(proc())
        assert "n0" in replies
