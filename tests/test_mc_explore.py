"""Tests for the repro.mc explorer: runner, strategies, shrinking.

The expensive end-to-end properties (weakened DQVL found within budget,
healthy protocols clean over a large budget) are CI's ``mc-smoke`` job;
here each moving part is exercised at small budgets.
"""

import pytest

from repro.mc import (
    McRunConfig,
    RecordingController,
    explore,
    run_schedule,
    save_mc_repro,
    shrink_choices,
    walk_policy,
)
from repro.mc.corpus import load_mc_repro, replay_mc_repro


class TestRecordingController:
    def test_forced_prefix_then_canonical(self):
        ctl = RecordingController([2, 1])
        assert ctl.choose_event(3) == 2
        assert ctl.choose_event(3) == 1
        assert ctl.choose_event(3) == 0  # past the prefix: canonical
        assert ctl.choices == [2, 1, 0]

    def test_out_of_range_forced_choice_is_clamped(self):
        ctl = RecordingController([99, -5])
        assert ctl.choose_event(2) == 1
        assert ctl.choose_event(2) == 0
        # the *clamped* value is what gets recorded (replayable as-is)
        assert ctl.choices == [1, 0]

    def test_delivery_choice_defers_by_quantum(self):
        ctl = RecordingController([1], defer_ms=100.0, max_defer=2)
        assert ctl.message_delay(None, 8.0) == pytest.approx(108.0)
        assert ctl.message_delay(None, 8.0) == pytest.approx(8.0)
        assert [d.kind for d in ctl.decisions] == ["deliver", "deliver"]
        assert [d.n for d in ctl.decisions] == [3, 3]

    def test_max_defer_zero_records_no_delivery_decisions(self):
        ctl = RecordingController(max_defer=0)
        assert ctl.message_delay(None, 8.0) == 8.0
        assert ctl.decisions == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RecordingController(defer_ms=-1.0)
        with pytest.raises(ValueError):
            RecordingController(max_defer=-1)

    def test_walk_policy_is_seed_deterministic(self):
        a = walk_policy("s:1", 0.5)
        b = walk_policy("s:1", 0.5)
        assert [a("event", 4) for _ in range(50)] == \
               [b("event", 4) for _ in range(50)]
        never = walk_policy("s:2", 0.0)
        assert all(never("event", 4) == 0 for _ in range(20))


class TestRunSchedule:
    def test_replay_is_byte_identical(self):
        config = McRunConfig()
        first = run_schedule(config)
        second = run_schedule(config)
        assert first.trace_text == second.trace_text
        assert first.ok and first.stats["ops_recorded"] > 0

    def test_forced_choices_change_the_run_but_stay_deterministic(self):
        config = McRunConfig()
        base = run_schedule(config)
        # defer the first few deliveries: different trace, same determinism
        forced = [1] * 5
        deviated = run_schedule(config, forced)
        assert deviated.trace_text != base.trace_text
        assert deviated.trace_text == run_schedule(config, forced).trace_text

    def test_weakened_canonical_run_violates(self):
        """skip_write_invalidation breaks on the canonical schedule —
        the explorer's run 0 already catches it."""
        result = run_schedule(McRunConfig(weaken="skip_write_invalidation"))
        assert {v["type"] for v in result.violations} == {"regular"}

    def test_config_validation_delegates_to_chaos(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            McRunConfig(protocol="nope")
        with pytest.raises(ValueError, match="unknown weakener"):
            McRunConfig(weaken="nope")


class TestExplore:
    def test_walk_finds_weakened_violation_and_shrinks(self):
        result = explore(
            McRunConfig(weaken="ignore_volume_expiry"),
            strategy="walk", budget=50,
        )
        assert not result.ok
        assert result.witness is not None
        assert result.shrunk.violations
        # ddmin re-validates by re-execution, so the shrunk choice list
        # must reproduce standalone
        rerun = run_schedule(result.config, result.shrunk.choices)
        assert rerun.violations
        assert result.shrunk.stats["deviations"] <= result.witness.stats["deviations"]

    def test_healthy_walk_budget_is_clean(self):
        result = explore(McRunConfig(), strategy="walk", budget=15)
        assert result.ok and result.runs == 15 and result.shrunk is None

    def test_dfs_probes_canonical_schedule_first(self):
        result = explore(
            McRunConfig(weaken="skip_write_invalidation"),
            strategy="dfs", budget=10,
        )
        assert not result.ok
        assert result.runs == 1  # canonical == the empty prefix
        assert result.shrunk.stats["deviations"] == 0

    def test_dfs_enumerates_distinct_prefixes(self):
        result = explore(
            McRunConfig(), strategy="dfs", budget=12, max_depth=5, shrink=False
        )
        assert result.ok and result.runs == 12

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            explore(McRunConfig(), strategy="bfs")
        with pytest.raises(ValueError, match="budget"):
            explore(McRunConfig(), budget=0)


class TestShrinkAndCorpus:
    def _witness(self):
        return explore(
            McRunConfig(weaken="ignore_volume_expiry"),
            strategy="walk", budget=50, shrink=False,
        )

    def test_shrink_respects_budget(self):
        result = self._witness()
        shrunk, runs = shrink_choices(result.config, result.witness, max_runs=3)
        # ddmin may finish the probe pair it started plus the final
        # re-validation, but never a whole extra round
        assert runs <= 3 + 3
        assert shrunk.violations

    def test_save_load_roundtrip(self, tmp_path):
        result = self._witness()
        result.shrunk = result.witness
        path = save_mc_repro(result, str(tmp_path))
        assert path.endswith("dqvl_seed0_ignore_volume_expiry.json")
        config, choices, expected = load_mc_repro(path)
        assert config == result.config
        assert expected == result.witness.expected_types
        replay = run_schedule(config, choices)
        assert {v["type"] for v in replay.violations} >= set(expected)

    def test_save_without_witness_rejected(self, tmp_path):
        clean = explore(McRunConfig(), strategy="walk", budget=2)
        with pytest.raises(ValueError, match="no violation"):
            save_mc_repro(clean, str(tmp_path))

    def test_unknown_format_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 99}')
        with pytest.raises(ValueError, match="unsupported mc repro format"):
            load_mc_repro(str(bad))

    def test_healthy_replay_strips_weakener(self, tmp_path):
        result = self._witness()
        result.shrunk = result.witness
        path = save_mc_repro(result, str(tmp_path))
        healthy = replay_mc_repro(path, healthy=True)
        assert healthy.ok
