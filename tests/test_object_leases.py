"""Tests for finite and adaptive object leases (footnote 4 / ref [9])."""

import pytest

from repro.core import DqvlConfig, build_dqvl_cluster
from repro.core.leases import AdaptiveObjectLeasePolicy, ObjectLeaseTable
from repro.sim import ConstantDelay, Network, Simulator


def make_cluster(seed=0, **config_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(10.0))
    config = DqvlConfig(
        lease_length_ms=60_000.0,  # long volume lease: isolate object leases
        inval_initial_timeout_ms=100.0,
        qrpc_initial_timeout_ms=100.0,
        **config_kwargs,
    )
    cluster = build_dqvl_cluster(
        sim, net,
        ["iqs0", "iqs1", "iqs2"],
        ["oqs0", "oqs1", "oqs2"],
        config,
    )
    return sim, net, cluster


class TestConfig:
    def test_fixed_and_adaptive_exclusive(self):
        with pytest.raises(ValueError):
            DqvlConfig(object_lease_ms=1000.0, adaptive_object_leases=True)

    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            DqvlConfig(object_lease_ms=0.0)
        with pytest.raises(ValueError):
            DqvlConfig(object_lease_min_ms=10.0, object_lease_max_ms=5.0)

    def test_finite_flag(self):
        assert not DqvlConfig().finite_object_leases
        assert DqvlConfig(object_lease_ms=500.0).finite_object_leases
        assert DqvlConfig(adaptive_object_leases=True).finite_object_leases


class TestObjectLeaseTable:
    def test_grant_and_expiry(self):
        table = ObjectLeaseTable(max_drift=0.01)
        table.grant("x", "j", now=100.0, length_ms=1000.0)
        assert not table.is_expired("x", "j", now=1100.0)
        assert table.is_expired("x", "j", now=1111.0)  # 100 + 1010 + eps
        assert table.is_expired("y", "j", now=0.0)  # never granted


class TestAdaptivePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveObjectLeasePolicy(0.0, 10.0)
        with pytest.raises(ValueError):
            AdaptiveObjectLeasePolicy(10.0, 5.0)
        with pytest.raises(ValueError):
            AdaptiveObjectLeasePolicy(10.0, 100.0, initial_ms=5.0)

    def test_hot_reader_earns_longer_leases(self):
        policy = AdaptiveObjectLeasePolicy(100.0, 1600.0)
        lengths = [policy.on_renewal("x", now=t * 50.0) for t in range(6)]
        assert lengths[0] == 100.0
        assert lengths[-1] == 1600.0  # doubled up to the cap

    def test_slow_reader_keeps_short_leases(self):
        policy = AdaptiveObjectLeasePolicy(100.0, 1600.0)
        a = policy.on_renewal("x", now=0.0)
        b = policy.on_renewal("x", now=10_000.0)  # long after expiry
        assert a == b == 100.0

    def test_write_halves(self):
        policy = AdaptiveObjectLeasePolicy(100.0, 1600.0)
        policy.on_renewal("x", now=0.0)
        policy.on_renewal("x", now=10.0)  # 200
        policy.on_renewal("x", now=20.0)  # 400
        policy.on_write("x")
        assert policy.length_for("x") == 200.0
        for _ in range(5):
            policy.on_write("x")
        assert policy.length_for("x") == 100.0  # floored

    def test_per_object_independence(self):
        policy = AdaptiveObjectLeasePolicy(100.0, 1600.0)
        policy.on_renewal("x", now=0.0)
        policy.on_renewal("x", now=10.0)
        assert policy.length_for("x") > policy.length_for("y")


class TestFiniteLeaseProtocol:
    def test_hit_until_object_lease_expires(self):
        sim, net, cluster = make_cluster(object_lease_ms=1_000.0)
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            r1 = yield from client.read("x")  # miss, takes object lease
            r2 = yield from client.read("x")  # hit
            yield sim.sleep(2_000.0)  # object lease lapses (volume fine)
            r3 = yield from client.read("x")  # must renew the object
            return (r1.hit, r2.hit, r3.hit, r3.value)

        assert sim.run_process(scenario()) == (False, True, False, "v1")

    def test_expired_object_lease_suppresses_invalidation(self):
        """A write behind an expired *object* lease needs no invalidation
        and no delayed-queue entry — the footnote-4 saving."""
        sim, net, cluster = make_cluster(object_lease_ms=500.0)
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            yield sim.sleep(1_500.0)  # object lease gone
            snap = net.snapshot()
            yield from client.write("x", "v2")
            diff = net.stats.diff(snap)
            r = yield from client.read("x")
            return (diff.by_kind.get("inval", 0), r.value)

        invals, value = sim.run_process(scenario())
        assert invals == 0
        assert value == "v2"
        assert sum(n.delayed_enqueued for n in cluster.iqs_nodes) == 0

    def test_live_object_lease_still_invalidated(self):
        sim, net, cluster = make_cluster(object_lease_ms=30_000.0)
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            snap = net.snapshot()
            yield from client.write("x", "v2")
            return net.stats.diff(snap).by_kind.get("inval", 0)

        assert sim.run_process(scenario()) > 0

    def test_no_stale_reads_with_finite_leases_and_drift(self):
        sim = Simulator(seed=5)
        from repro.sim import DriftingClock

        max_drift = 0.02
        net = Network(sim, ConstantDelay(10.0))
        ids = ["iqs0", "iqs1", "iqs2", "oqs0", "oqs1", "oqs2"]
        clocks = {
            node_id: DriftingClock(sim, drift=d, max_drift=max_drift)
            for node_id, d in zip(ids, [0.02, -0.02, 0.0, -0.02, 0.02, 0.01])
        }
        config = DqvlConfig(
            lease_length_ms=2_000.0,
            object_lease_ms=700.0,
            max_drift=max_drift,
            inval_initial_timeout_ms=100.0,
            qrpc_initial_timeout_ms=100.0,
        )
        cluster = build_dqvl_cluster(sim, net, ids[:3], ids[3:], config, clocks=clocks)
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            stale = []
            for i in range(12):
                yield from client.write("x", f"v{i}")
                yield sim.sleep(sim.rng.uniform(0, 900))
                r = yield from client.read("x")
                if r.value != f"v{i}":
                    stale.append((i, r.value))
            return stale

        assert sim.run_process(scenario(), until=600_000.0) == []

    def test_adaptive_leases_work_end_to_end(self):
        sim, net, cluster = make_cluster(
            adaptive_object_leases=True,
            object_lease_min_ms=500.0,
            object_lease_max_ms=8_000.0,
        )
        client = cluster.client("c0", prefer_oqs="oqs0")

        def scenario():
            yield from client.write("x", "v1")
            values = []
            for _ in range(6):
                r = yield from client.read("x")
                values.append(r.value)
                yield sim.sleep(400.0)
            return values

        values = sim.run_process(scenario(), until=600_000.0)
        assert values == ["v1"] * 6
        # the hot object earned a longer lease on some IQS server
        lengths = [
            node.lease_policy.length_for("x") for node in cluster.iqs_nodes
        ]
        assert max(lengths) > 500.0
