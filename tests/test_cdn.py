"""Tests for the edge-CDN scenario family (repro.edge.cdn) and its
sharded execution (repro.harness.shards).

Small configs keep these fast: the properties under test (determinism,
kernel-cost scaling, throttling, shard merging) do not depend on the
population being large — that is the point of the aggregate model.
"""

import dataclasses

import pytest

from repro.edge.cdn import CdnResult, CdnScenarioConfig, run_cdn
from repro.edge.topology import EdgeTopology, EdgeTopologyConfig
from repro.harness.shards import (
    merge_cdn_points,
    run_sharded_cdn,
    shard_cdn_configs,
)
from repro.harness.sweeps import CdnPoint, run_sweep
from repro.scenario import ScenarioConfig
from repro.sim import Simulator


def _small(**overrides) -> CdnScenarioConfig:
    """A cheap scenario: majority protocol (no renewal keepers), a few
    hundred modeled users, compressed horizon."""
    kwargs = dict(
        protocol="majority",
        seed=3,
        regions=2,
        pops_per_region=2,
        users=200,
        ops_per_user_per_s=0.5,
        write_ratio=0.1,
        num_objects=100,
        num_volumes=8,
        issuers_per_pop=4,
        queue_limit=64,
        horizon_ms=400.0,
        drain_ms=30_000.0,
    )
    kwargs.update(overrides)
    return CdnScenarioConfig(**kwargs)


class TestConfig:
    def test_validation(self):
        with pytest.raises(KeyError):
            CdnScenarioConfig(protocol="nope")
        with pytest.raises(ValueError):
            CdnScenarioConfig(users=0)
        with pytest.raises(ValueError):
            CdnScenarioConfig(arrivals="weird")
        with pytest.raises(ValueError):
            CdnScenarioConfig(balance="random")

    def test_region_users_even_split(self):
        config = _small(users=10, regions=3)
        assert [config.region_users(r) for r in range(3)] == [4, 3, 3]
        assert config.num_pops == 6


class TestRegionTopology:
    def test_intra_vs_cross_region_delay(self):
        sim = Simulator(seed=0)
        config = EdgeTopologyConfig(
            num_edges=4, num_clients=0, regions=2, intra_region_ms=20.0
        )
        topo = EdgeTopology(sim, config)
        assert [topo.region_of_edge(k) for k in range(4)] == [0, 0, 1, 1]
        dm = topo.delay_model
        assert dm._host_delay(topo.edge_host(0), topo.edge_host(1)) == 20.0
        assert (
            dm._host_delay(topo.edge_host(0), topo.edge_host(2))
            == config.server_wan_ms
        )

    def test_flat_topology_unchanged_without_regions(self):
        sim = Simulator(seed=0)
        config = EdgeTopologyConfig(num_edges=4, num_clients=0)
        topo = EdgeTopology(sim, config)
        assert topo.region_of_edge(3) == 0
        dm = topo.delay_model
        assert (
            dm._host_delay(topo.edge_host(0), topo.edge_host(1))
            == config.server_wan_ms
        )

    def test_region_validation(self):
        with pytest.raises(ValueError):
            EdgeTopologyConfig(num_edges=4, num_clients=0, regions=5)


class TestRunCdn:
    def test_basic_run_completes_ops(self):
        result = run_cdn(_small())
        assert isinstance(result, CdnResult)
        assert result.stats.arrivals > 10
        assert result.stats.completed > 10
        assert result.stats.completed == len(
            [op for op in result.history.ops if op.ok]
        )
        assert result.summary.overall.count == result.stats.completed
        # Every front end participated (least-loaded balancing + one
        # pool per PoP).
        assert result.fe_counters["requests_served"] > 0
        assert result.sim_time_ms >= 400.0

    def test_same_seed_byte_identical(self):
        config = _small()
        a = run_cdn(config)
        b = run_cdn(dataclasses.replace(config))
        assert a.to_json() == b.to_json()

    def test_different_seed_differs(self):
        a = run_cdn(_small(seed=3))
        b = run_cdn(_small(seed=4))
        assert a.to_json() != b.to_json()

    def test_kernel_cost_tracks_arrivals_not_users(self):
        """1000x more modeled users at 1000x lower per-user rate is the
        same aggregate process: identical events, byte-identical trace
        modulo the user count in the echoed config."""
        a = run_cdn(_small(users=200, ops_per_user_per_s=0.5))
        b = run_cdn(_small(users=200_000, ops_per_user_per_s=0.0005))
        assert a.events_processed == b.events_processed
        assert a.stats.arrivals == b.stats.arrivals
        assert a.summary == b.summary

    def test_open_loop_latency_includes_queue_wait(self):
        """An under-provisioned PoP (1 issuer, majority RTTs) must show
        queueing in the recorded latency, not just service time."""
        result = run_cdn(_small(
            issuers_per_pop=1, users=600, ops_per_user_per_s=1.0,
            horizon_ms=300.0,
        ))
        assert result.stats.queue_wait_ms > 0.0
        assert result.summary.overall.p99 > result.summary.overall.p50

    def test_flash_crowd_adds_arrivals(self):
        base = run_cdn(_small())
        flash = run_cdn(_small(
            flash_start_ms=100.0, flash_peak_multiplier=4.0,
            flash_ramp_ms=50.0, flash_hold_ms=200.0, flash_decay_ms=50.0,
        ))
        assert flash.stats.arrivals > base.stats.arrivals

    def test_mmpp_arrivals_run(self):
        result = run_cdn(_small(arrivals="mmpp", mmpp_burst_multiplier=3.0,
                                mmpp_dwell_normal_ms=100.0,
                                mmpp_dwell_burst_ms=100.0))
        assert result.stats.completed > 0

    def test_front_end_throttling(self):
        """A tiny admission cap under load rejects work and the failures
        land in the history (availability < 1)."""
        result = run_cdn(_small(
            fe_max_inflight=1, users=800, ops_per_user_per_s=1.0,
            horizon_ms=300.0,
        ))
        throttled = (
            result.fe_counters["reads_throttled"]
            + result.fe_counters["writes_throttled"]
        )
        assert throttled > 0
        assert result.stats.failed > 0
        assert result.summary.availability < 1.0

    def test_dqvl_protocol_with_volume_leases(self):
        result = run_cdn(_small(
            protocol="dqvl", users=100, ops_per_user_per_s=0.5,
            horizon_ms=300.0,
        ))
        assert result.stats.completed > 0
        # DQVL reads report hit/miss; the majority baseline does not.
        assert result.summary.read_hit_rate is not None

    def test_trace_produces_budget(self):
        result = run_cdn(_small(trace=True, users=100, horizon_ms=200.0))
        assert result.budget  # non-empty group -> phase -> summary table

    def test_events_per_arrival_property(self):
        result = run_cdn(_small())
        assert result.events_per_arrival == (
            result.events_processed / result.stats.arrivals
        )


class TestSharding:
    def test_shard_configs_split(self):
        base = _small(users=10, seed=42)
        shards = shard_cdn_configs(base, 4)
        assert [c.users for c in shards] == [3, 3, 2, 2]
        assert len({c.seed for c in shards}) == 4
        assert all(c.seed != base.seed for c in shards)
        assert all(c.regions == base.regions for c in shards)
        # Deterministic plan: same base -> same shards.
        assert shards == shard_cdn_configs(base, 4)

    def test_shard_clamps_to_users(self):
        assert len(shard_cdn_configs(_small(users=3), 8)) == 3
        with pytest.raises(ValueError):
            shard_cdn_configs(_small(), 0)

    def test_sharded_run_merges_deterministically(self, tmp_path):
        base = _small(users=100, ops_per_user_per_s=0.5, horizon_ms=300.0)
        a = run_sharded_cdn(base, num_groups=2, workers=1, cache=False,
                            cache_path=str(tmp_path / "c1"))
        b = run_sharded_cdn(base, num_groups=2, workers=2, cache=False,
                            cache_path=str(tmp_path / "c2"))
        assert a.to_json() == b.to_json()
        assert a.num_groups == 2
        # Merged counters are the exact sums over group points.
        assert a.stats["arrivals"] == sum(
            p.stats["arrivals"] for p in a.points
        )
        assert a.events_processed == sum(
            p.events_processed for p in a.points
        )
        assert a.summary.overall.count == sum(
            p.summary.overall.count for p in a.points
        )
        assert a.fe_counters["requests_served"] == sum(
            p.fe_counters["requests_served"] for p in a.points
        )

    def test_merge_queue_peak_is_max(self):
        base = _small(users=4)
        shards = shard_cdn_configs(base, 2)
        points = []
        for i, config in enumerate(shards):
            result = run_cdn(config)
            points.append(CdnPoint(
                config=config,
                summary=result.summary,
                stats=dict(result.stats.to_json_obj(), queue_peak=5 + i),
                region_stats=[s.to_json_obj() for s in result.region_stats],
                fe_counters=result.fe_counters,
                events_processed=result.events_processed,
                sim_time_ms=result.sim_time_ms,
                extras={"read_ms": [], "write_ms": [], "hits_true": 0,
                        "hits_known": 0, "failures": 0, "total_ops": 0},
            ))
        merged = merge_cdn_points(base, points)
        assert merged.stats["queue_peak"] == 6
        assert merged.sim_time_ms == max(p.sim_time_ms for p in points)


class TestSweepIntegration:
    def test_cdn_point_cache_round_trip(self, tmp_path):
        config = _small(users=60, horizon_ms=200.0)
        cache_path = str(tmp_path / "cache")
        first = run_sweep([config], workers=1, cache=True,
                          cache_path=cache_path)
        second = run_sweep([config], workers=1, cache=True,
                           cache_path=cache_path)
        assert isinstance(first[0], CdnPoint)
        assert not first[0].from_cache
        assert second[0].from_cache
        assert second[0].summary == first[0].summary
        assert second[0].stats == first[0].stats
        assert second[0].fe_counters == first[0].fe_counters
        assert second[0].events_processed == first[0].events_processed


class TestScenarioToCdn:
    def test_field_mapping(self):
        scenario = ScenarioConfig(
            protocol="majority", seed=9, write_ratio=0.2, num_keys=500,
            time_limit_ms=1_500.0, num_edges=3, jitter_ms=1.0,
        )
        config = scenario.to_cdn(users=1_000)
        assert config.protocol == "majority"
        assert config.seed == 9
        assert config.write_ratio == 0.2
        assert config.num_objects == 500
        assert config.horizon_ms == 1_500.0
        assert config.jitter_ms == 1.0
        assert config.regions == 1 and config.pops_per_region == 3
        assert config.users == 1_000

    def test_overrides_win_over_num_edges(self):
        scenario = ScenarioConfig(num_edges=3)
        config = scenario.to_cdn(regions=2, pops_per_region=2)
        assert config.regions == 2 and config.pops_per_region == 2

    def test_lease_fields_map_to_deploy_kwargs(self):
        scenario = ScenarioConfig(protocol="dqvl", lease_length_ms=5_000.0)
        config = scenario.to_cdn(num_volumes=16)
        dqvl = config.deploy_kwargs["config"]
        assert dqvl.lease_length_ms == 5_000.0
        assert dqvl.proactive_renewal is True
        assert dqvl.volume_map.num_volumes == 16

    def test_lease_fields_reject_non_dqvl(self):
        scenario = ScenarioConfig(protocol="majority", lease_length_ms=750.0)
        with pytest.raises(ValueError):
            scenario.to_cdn()

    def test_weaken_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(weaken="drop_renewals").to_cdn()

    def test_round_trips_into_run(self):
        config = ScenarioConfig(protocol="majority", seed=1).to_cdn(
            users=80, ops_per_user_per_s=0.5, regions=1, pops_per_region=2,
            horizon_ms=200.0, num_objects=50, issuers_per_pop=2,
        )
        result = run_cdn(config)
        assert result.stats.completed > 0
