"""Tests for the unified observability layer (repro.obs).

Covers the span tracer's tree queries and memory bound, the metrics
registry, the JSONL/Chrome exporters (record shapes, span filtering,
message-id densification, fault annotation tracks), and the end-to-end
determinism contract: identical seeds produce byte-identical exports.
"""

import json

import pytest

from repro.chaos.faults import Fault, FaultSchedule
from repro.harness.experiment import ExperimentConfig, run_response_time
from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    Observability,
    SpanTracer,
    format_top_slow,
    select_spans,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestSpanTracer:
    def test_ids_start_at_one_and_increment(self, sim):
        tracer = SpanTracer(sim)
        assert tracer.span("a", node="n").span_id == 1
        assert tracer.span("b", node="n").span_id == 2

    def test_parenting_accepts_span_or_id(self, sim):
        tracer = SpanTracer(sim)
        root = tracer.span("op", category="op", node="c")
        by_span = tracer.span("round", parent=root, node="c")
        by_id = tracer.span("round", parent=root.span_id, node="c")
        assert by_span.parent_id == root.span_id
        assert by_id.parent_id == root.span_id
        assert [s.span_id for s in tracer.children(root)] == [2, 3]
        assert [s.span_id for s in tracer.roots()] == [1]

    def test_subtree_depth_first(self, sim):
        tracer = SpanTracer(sim)
        a = tracer.span("a")
        b = tracer.span("b", parent=a)
        c = tracer.span("c", parent=b)
        d = tracer.span("d", parent=a)
        assert [s.span_id for s in tracer.subtree(a)] == [
            a.span_id, b.span_id, c.span_id, d.span_id
        ]

    def test_finish_is_idempotent(self, sim):
        tracer = SpanTracer(sim)
        span = tracer.span("op")
        span.finish(status="ok")
        first_end = span.end
        span.finish(status="changed")
        assert span.end == first_end
        assert span.attrs["status"] == "changed"

    def test_top_slow_orders_by_duration_then_id(self, sim):
        tracer = SpanTracer(sim)
        fast = tracer.span("r", category="op").finish()
        slow = tracer.span("w", category="op").finish()
        slow.end = slow.start + 100.0
        other = tracer.span("w2", category="op").finish()
        other.end = other.start + 100.0
        unfinished = tracer.span("u", category="op")
        top = tracer.top_slow(3)
        assert [s.span_id for s in top] == [slow.span_id, other.span_id,
                                            fast.span_id]
        assert unfinished not in top

    def test_max_records_bounds_spans_plus_events(self, sim):
        tracer = SpanTracer(sim, max_records=3)
        tracer.span("a")
        tracer.event("e1")
        tracer.span("b")
        tracer.event("e2")  # over the bound
        tracer.span("c")    # over the bound
        assert len(tracer.spans) + len(tracer.events) == 3
        assert tracer.dropped == 2
        # ids keep advancing even for dropped spans (determinism)
        assert tracer.span("d").span_id == 4

    def test_events_for(self, sim):
        tracer = SpanTracer(sim)
        span = tracer.span("op", node="c")
        span.event("msg_send", msg=7)
        tracer.event("unrelated")
        (event,) = tracer.events_for(span)
        assert event.name == "msg_send"
        assert event.node == "c"


class TestMetricsRegistry:
    def test_same_name_and_labels_dedup(self):
        reg = MetricsRegistry()
        a = reg.counter("net.messages", kind="inval")
        b = reg.counter("net.messages", kind="inval")
        c = reg.counter("net.messages", kind="renew")
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.gauge("g", a=1, b=2) is reg.gauge("g", b=2, a=1)

    def test_counter_gauge_basics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.find("c").value == 3.5
        reg.gauge("g").set(7.0)
        reg.gauge("g").add(-2.0)
        assert reg.find("g").value == 5.0
        assert reg.find("absent") is None

    def test_histogram_buckets_and_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(10.0, 100.0))
        for v in (1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.buckets == [2, 1, 1]  # <=10, <=100, +inf
        assert h.count == 4
        assert h.sum == 556.0
        assert h.max == 500.0
        assert h.quantile(0.5) == 10.0    # bucket upper bound
        assert h.quantile(1.0) == 500.0   # overflow reports max
        assert reg.histogram("empty").quantile(0.5) == 0.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(10.0, 1.0))

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", z="1").inc()
        snap = reg.snapshot()
        assert [e["name"] for e in snap] == ["a", "b"]
        assert snap[0]["labels"] == {"z": "1"}
        json.dumps(snap)  # must be serialisable as-is

    def test_null_registry_is_a_black_hole(self):
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.histogram("y").observe(1.0)
        assert NULL_METRICS.snapshot() == []
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.find("x") is None


def _toy_tracer(sim):
    """op -> round -> (validate); plus one span outside the op subtree."""
    tracer = SpanTracer(sim)
    op = tracer.span("read", category="op", node="appsc0", key="k")
    rnd = tracer.span("qrpc_round", category="qrpc", node="appsc0", parent=op)
    tracer.event("msg_send", span=rnd, node="appsc0", msg=9001)
    tracer.event("msg_recv", span=rnd, node="oqs0", msg=9001)
    tracer.span("validate", category="lease", node="oqs0", parent=rnd).finish()
    rnd.finish(outcome="quorum")
    op.finish(status="ok")
    tracer.span("renew_volume", category="lease", node="oqs1").finish()
    return tracer, op


class TestSelectSpans:
    def test_no_filter_returns_all_sorted(self, sim):
        tracer, _ = _toy_tracer(sim)
        spans = select_spans(tracer)
        assert [s.span_id for s in spans] == [1, 2, 3, 4]

    def test_filter_keeps_matching_subtrees(self, sim):
        tracer, op = _toy_tracer(sim)
        kept = select_spans(tracer, span_filter="op")
        assert {s.span_id for s in kept} == {1, 2, 3}  # not the lone renewal
        by_name = select_spans(tracer, span_filter="renew_volume")
        assert [s.span_id for s in by_name] == [4]


class TestJsonlExport:
    def test_record_kinds_and_shapes(self, sim):
        tracer, _ = _toy_tracer(sim)
        faults = [Fault.make("partition", start=5.0, duration=10.0,
                             groups=(("oqs0",), ("iqs0",)))]
        reg = MetricsRegistry()
        reg.counter("net.messages").inc(2)
        text = spans_to_jsonl(tracer, faults=faults, metrics=reg)
        records = [json.loads(line) for line in text.splitlines()]
        kinds = [r["record"] for r in records]
        assert kinds[0] == "meta"
        assert kinds.count("span") == 4
        assert kinds.count("event") == 2
        assert kinds.count("fault") == 1
        assert kinds.count("metric") == 1
        meta = records[0]
        assert meta["spans"] == 4 and meta["dropped"] == 0
        fault = next(r for r in records if r["record"] == "fault")
        assert fault["kind"] == "partition"
        assert fault["groups"] == [["oqs0"], ["iqs0"]]

    def test_msg_ids_densified_by_first_appearance(self, sim):
        tracer, _ = _toy_tracer(sim)
        records = [json.loads(l) for l in spans_to_jsonl(tracer).splitlines()]
        msgs = [r["attrs"]["msg"] for r in records if r["record"] == "event"]
        assert msgs == [1, 1]  # process-global 9001 remapped

    def test_span_filter_drops_unrelated_events(self, sim):
        tracer, _ = _toy_tracer(sim)
        tracer.event("stray", span=4, node="oqs1")
        text = spans_to_jsonl(tracer, span_filter="op")
        records = [json.loads(l) for l in text.splitlines()]
        names = [r["name"] for r in records if r["record"] == "event"]
        assert "stray" not in names


class TestChromeExport:
    def test_valid_chrome_trace_json(self, sim):
        tracer, _ = _toy_tracer(sim)
        faults = FaultSchedule([
            Fault.make("partition", start=5.0, duration=10.0,
                       groups=(("oqs0",), ("iqs0",)), extra=1.5),
        ])
        doc = json.loads(spans_to_chrome(tracer, faults=faults))
        evs = doc["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert {"M", "X", "s", "f", "i"} <= phases
        # one complete event per span + one per fault window
        assert sum(1 for e in evs if e["ph"] == "X") == 5
        # ts/dur are microseconds
        fault = next(e for e in evs if e.get("cat") == "fault")
        assert (fault["ts"], fault["dur"]) == (5_000.0, 10_000.0)
        assert fault["args"]["params"] == {"extra": 1.5}
        # chaos rides on its own process row
        assert fault["pid"] != evs[0]["pid"]

    def test_flow_arrows_tie_children_to_parents(self, sim):
        tracer, _ = _toy_tracer(sim)
        doc = json.loads(spans_to_chrome(tracer))
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert {e["id"] for e in starts} == {2, 3}  # the two child spans
        assert {e["id"] for e in finishes} == {2, 3}
        assert all(e["bp"] == "e" for e in finishes)

    def test_thread_per_node(self, sim):
        tracer, _ = _toy_tracer(sim)
        doc = json.loads(spans_to_chrome(tracer))
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"appsc0", "oqs0", "oqs1"} <= names


class TestFormatTopSlow:
    def test_renders_rounds_under_ops(self, sim):
        tracer, op = _toy_tracer(sim)
        op.end = op.start + 42.0
        text = format_top_slow(tracer, n=1)
        assert "#1 read" in text
        assert "42.00 ms" in text
        assert "qrpc:qrpc_round" in text

    def test_empty_tracer(self, sim):
        assert "no finished" in format_top_slow(SpanTracer(sim))


def _traced_run(seed=3):
    config = ExperimentConfig(
        protocol="dqvl", write_ratio=0.3, ops_per_client=5, warmup_ops=2,
        num_clients=2, num_edges=3, seed=seed, trace=True,
    )
    return run_response_time(config)


class TestEndToEnd:
    def test_ops_link_to_rounds_and_messages(self):
        result = _traced_run()
        tracer = result.obs.tracer
        ops = tracer.op_spans()
        assert ops and all(s.finished for s in ops)
        some_round = None
        for op in ops:
            rounds = tracer.children(op)
            assert rounds, f"operation {op!r} has no qrpc rounds"
            some_round = rounds[0]
        sends = [e for e in tracer.events_for(some_round)
                 if e.name == "msg_send"]
        assert sends, "qrpc round recorded no message sends"

    def test_protocol_metrics_collected(self):
        result = _traced_run()
        metrics = result.obs.metrics
        assert metrics.find("proto.read_hit_rate") is not None
        assert metrics.find("kernel.events_processed").value > 0
        assert metrics.find("net.total_messages").value > 0
        assert metrics.find("net.messages", kind="dq_read") is not None

    def test_same_seed_exports_are_byte_identical(self):
        faults = FaultSchedule([
            Fault.make("partition", start=50.0, duration=100.0,
                       groups=(("oqs0",), ("iqs0", "iqs1", "iqs2"))),
        ])

        def export(_):
            config = ExperimentConfig(
                protocol="dqvl", write_ratio=0.3, ops_per_client=5,
                warmup_ops=2, num_clients=2, num_edges=3, seed=3,
                trace=True, fault_schedule=faults,
            )
            result = run_response_time(config)
            obs = result.obs
            return (
                spans_to_jsonl(obs.tracer, faults=faults, metrics=obs.metrics),
                spans_to_chrome(obs.tracer, faults=faults),
            )

        first, second = export(0), export(1)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_different_seeds_differ(self):
        a = spans_to_jsonl(_traced_run(seed=3).obs.tracer)
        b = spans_to_jsonl(_traced_run(seed=4).obs.tracer)
        assert a != b


class TestObservabilityDisabled:
    def test_network_obs_defaults_to_none(self):
        config = ExperimentConfig(
            protocol="dqvl", ops_per_client=3, warmup_ops=1,
            num_clients=1, num_edges=3, seed=1,
        )
        result = run_response_time(config)
        assert result.obs is None

    def test_install_is_chainable_and_bounded(self, sim):
        from repro.sim import ConstantDelay, Network

        net = Network(sim, ConstantDelay(1.0))
        obs = Observability(sim, max_records=10).install(net)
        assert net.obs is obs
        assert obs.tracer.max_records == 10
