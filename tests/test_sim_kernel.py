"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (
    Future,
    ProcessFailure,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


@pytest.fixture
def sim():
    return Simulator(seed=42)


class TestScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_at_right_time(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10.0]

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(30.0, lambda: order.append("c"))
        sim.schedule(10.0, lambda: order.append("a"))
        sim.schedule(20.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, sim):
        order = []
        for i in range(10):
            sim.schedule(5.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_timer_does_not_fire(self, sim):
        fired = []
        timer = sim.schedule(5.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled

    def test_run_until_stops_and_advances_clock(self, sim):
        fired = []
        sim.schedule(100.0, lambda: fired.append(1))
        sim.run(until=50.0)
        assert sim.now == 50.0
        assert fired == []
        sim.run()
        assert fired == [1]
        assert sim.now == 100.0

    def test_run_until_exact_boundary_runs_event(self, sim):
        fired = []
        sim.schedule(50.0, lambda: fired.append(1))
        sim.run(until=50.0)
        assert fired == [1]

    def test_max_events_limit(self, sim):
        count = []
        for _ in range(10):
            sim.call_soon(lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.call_soon(lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_nested_scheduling(self, sim):
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(5.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(10.0, outer)
        sim.run()
        assert times == [10.0, 15.0]

    def test_determinism_same_seed(self):
        def run_once(seed):
            sim = Simulator(seed=seed)
            trace = []

            def proc():
                for _ in range(20):
                    yield sim.sleep(sim.rng.uniform(0, 10))
                    trace.append(round(sim.now, 6))

            sim.run_process(proc())
            return trace

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)


class TestFuture:
    def test_resolve_and_value(self, sim):
        f = sim.future("f")
        f.resolve(99)
        assert f.done and not f.failed
        assert f.value == 99

    def test_pending_value_raises(self, sim):
        f = sim.future()
        with pytest.raises(SimulationError):
            _ = f.value

    def test_double_resolve_raises(self, sim):
        f = sim.future()
        f.resolve(1)
        with pytest.raises(SimulationError):
            f.resolve(2)

    def test_fail_stores_exception(self, sim):
        f = sim.future()
        f.fail(ValueError("boom"))
        assert f.failed
        with pytest.raises(ValueError):
            _ = f.value

    def test_try_resolve(self, sim):
        f = sim.future()
        assert f.try_resolve(1) is True
        assert f.try_resolve(2) is False
        assert f.value == 1

    def test_callback_after_completion_still_fires(self, sim):
        f = sim.future()
        f.resolve(5)
        seen = []
        f.add_callback(lambda fut: seen.append(fut.value))
        sim.run()
        assert seen == [5]

    def test_callbacks_are_asynchronous(self, sim):
        """Callbacks fire via the event queue, never synchronously."""
        f = sim.future()
        seen = []
        f.add_callback(lambda fut: seen.append(1))
        f.resolve(None)
        assert seen == []  # not yet
        sim.run()
        assert seen == [1]


class TestProcess:
    def test_process_returns_value(self, sim):
        def proc():
            yield sim.sleep(5)
            return "done"

        assert sim.run_process(proc()) == "done"
        assert sim.now == 5.0

    def test_process_waits_on_future(self, sim):
        f = sim.future()
        sim.schedule(7.0, f.resolve, "hello")

        def proc():
            value = yield f
            return (value, sim.now)

        assert sim.run_process(proc()) == ("hello", 7.0)

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.sleep(3)
            return 10

        def parent():
            value = yield sim.spawn(child())
            return value * 2

        assert sim.run_process(parent()) == 20

    def test_yield_from_composition(self, sim):
        def inner():
            yield sim.sleep(2)
            return 5

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        assert sim.run_process(outer()) == 10
        assert sim.now == 4.0

    def test_failed_future_raises_in_process(self, sim):
        f = sim.future()
        sim.schedule(1.0, f.fail, RuntimeError("bad"))

        def proc():
            try:
                yield f
            except RuntimeError as exc:
                return f"caught {exc}"

        assert sim.run_process(proc()) == "caught bad"

    def test_child_failure_wrapped(self, sim):
        def child():
            yield sim.sleep(1)
            raise ValueError("inner")

        def parent():
            try:
                yield sim.spawn(child())
            except ProcessFailure as exc:
                assert isinstance(exc.cause, ValueError)
                return "wrapped"

        assert sim.run_process(parent()) == "wrapped"

    def test_uncaught_process_exception_propagates(self, sim):
        def proc():
            yield sim.sleep(1)
            raise KeyError("oops")

        with pytest.raises(KeyError):
            sim.run_process(proc())

    def test_yielding_non_future_fails_process(self, sim):
        def proc():
            yield 42

        with pytest.raises(SimulationError):
            sim.run_process(proc())

    def test_unfinished_process_detected(self, sim):
        def proc():
            yield sim.future()  # never resolved

        with pytest.raises(SimulationError, match="did not finish"):
            sim.run_process(proc())

    def test_immediate_return(self, sim):
        def proc():
            return 1
            yield  # pragma: no cover

        assert sim.run_process(proc()) == 1


class TestCombinators:
    def test_all_of_collects_in_order(self, sim):
        f1, f2, f3 = sim.future(), sim.future(), sim.future()
        sim.schedule(3.0, f1.resolve, "a")
        sim.schedule(1.0, f2.resolve, "b")
        sim.schedule(2.0, f3.resolve, "c")

        def proc():
            values = yield all_of(sim, [f1, f2, f3])
            return (values, sim.now)

        assert sim.run_process(proc()) == (["a", "b", "c"], 3.0)

    def test_all_of_empty(self, sim):
        def proc():
            values = yield all_of(sim, [])
            return values

        assert sim.run_process(proc()) == []

    def test_all_of_fails_fast(self, sim):
        f1, f2 = sim.future(), sim.future()
        sim.schedule(1.0, f1.fail, RuntimeError("x"))

        def proc():
            try:
                yield all_of(sim, [f1, f2])
            except RuntimeError:
                return sim.now

        assert sim.run_process(proc()) == 1.0

    def test_any_of_returns_first(self, sim):
        f1, f2 = sim.future(), sim.future()
        sim.schedule(5.0, f1.resolve, "slow")
        sim.schedule(2.0, f2.resolve, "fast")

        def proc():
            index, value = yield any_of(sim, [f1, f2])
            return (index, value, sim.now)

        assert sim.run_process(proc()) == (1, "fast", 2.0)

    def test_any_of_requires_inputs(self, sim):
        with pytest.raises(SimulationError):
            any_of(sim, [])

    def test_any_of_with_sleep_as_timeout(self, sim):
        never = sim.future()

        def proc():
            index, _ = yield any_of(sim, [never, sim.sleep(10)])
            return (index, sim.now)

        assert sim.run_process(proc()) == (1, 10.0)


class TestFastLaneEdgeCases:
    """Edge cases at the boundary between the zero-delay ready lane and
    the timer heap (see DESIGN.md, "kernel fast path")."""

    def test_callback_on_already_done_future(self, sim):
        fired = []
        f = sim.future()
        f.resolve(7)
        f.add_callback(lambda fut: fired.append(fut.value))
        assert fired == []  # never synchronous
        sim.run()
        assert fired == [7]

    def test_cancel_racing_same_tick_event(self, sim):
        """An event can cancel a zero-delay timer scheduled for the same
        tick; the cancelled callback must not run and must not count."""
        fired = []
        holder = {}
        sim.call_soon(lambda: holder["t"].cancel())
        holder["t"] = sim.schedule(0.0, fired.append, "victim")
        sim.call_soon(fired.append, "after")
        sim.run()
        assert fired == ["after"]
        assert sim.events_processed == 2  # canceller + "after", not the victim

    def test_cancel_racing_same_instant_timer(self, sim):
        """A timer event cancelling another timer due at the same instant."""
        fired = []
        victim = sim.schedule(5.0, fired.append, "victim")
        sim.schedule(5.0, lambda: victim.cancel())
        # scheduled before the canceller, so it fires first — too late to save
        early = sim.schedule(5.0, fired.append, "early")
        del early
        sim.run()
        assert fired == ["victim", "early"] or fired == ["early"]
        # deterministic answer: victim was scheduled *before* the canceller,
        # so it fires first and the cancel is a no-op on an executed event
        assert fired == ["victim", "early"]

    def test_any_of_with_immediately_failed_input(self, sim):
        boom = sim.future()
        boom.fail(RuntimeError("early failure"))
        slow = sim.future()

        def proc():
            try:
                yield any_of(sim, [slow, boom])
            except RuntimeError as exc:
                return str(exc)

        assert sim.run_process(proc()) == "early failure"

    def test_max_events_stops_mid_tick(self, sim):
        """run(max_events=...) can stop between same-tick ready events and
        a later run() resumes in the original FIFO order."""
        fired = []
        for label in "abcde":
            sim.call_soon(fired.append, label)
        sim.run(max_events=2)
        assert fired == ["a", "b"]
        sim.run(max_events=1)
        assert fired == ["a", "b", "c"]
        sim.run()
        assert fired == ["a", "b", "c", "d", "e"]
        assert sim.events_processed == 5

    def test_max_events_stops_before_draining_timers(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "t1")
        sim.schedule(1.0, fired.append, "t2")
        sim.run(max_events=1)
        assert fired == ["t1"] and sim.now == 1.0
        sim.run()
        assert fired == ["t1", "t2"]

    def test_zero_delay_schedule_returns_cancellable_timer(self, sim):
        fired = []
        t = sim.schedule(0.0, fired.append, "x")
        assert t is not None and not t.cancelled
        t.cancel()
        sim.run()
        assert fired == [] and sim.events_processed == 0


class TestGoldenTrace:
    """Locks the kernel's exact event interleaving.

    The trace below was captured from the pre-fast-lane single-heap
    kernel (strict ``(time, seq)`` order).  The two-lane kernel must
    reproduce it byte for byte: any divergence means the determinism
    contract (DESIGN.md) has been broken, even if all behavioural tests
    still pass.
    """

    EXPECTED = [
        (0.0, "a-start"),
        (0.0, "b-start"),
        (0.0, "late-cb-7"),
        (0.0, "b-zero-slept"),
        (0.0, "b-soon"),
        (1.0, "t1"),
        (2.0, "a-slept"),
        (2.899361, "rng0"),
        (4.0, "b-resolved"),
        (4.0, "a-got-X"),
        (4.0, "c-all-['A', 'B']"),
        (4.221558, "rng1"),
        (4.244033, "rng2"),
        (5.0, "t5-a"),
        (5.0, "t5-b"),
        (5.0, "chain0"),
        (5.0, "t5-c"),
        (5.0, "chain1"),
        (5.0, "chain2"),
        (5.0, "c-any-0-None"),
        (5.0, "chain3"),
        (6.976961, "rng3"),
        (9.794768, "rng4"),
        (9.794768, "end"),
        ("events", 37),
    ]

    @staticmethod
    def scenario_trace():
        sim = Simulator(seed=1234)
        trace = []

        def ev(label):
            trace.append((round(sim.now, 6), label))

        # plain timers, out of order, some at the same instant
        sim.schedule(5.0, ev, "t5-a")
        sim.schedule(1.0, ev, "t1")
        sim.schedule(5.0, ev, "t5-b")
        t = sim.schedule(3.0, ev, "t3-cancelled")
        t.cancel()

        # zero-delay lane interleaved with same-time timers
        def chain(n):
            ev(f"chain{n}")
            if n < 3:
                sim.call_soon(chain, n + 1)

        sim.schedule(5.0, chain, 0)
        sim.schedule(5.0, ev, "t5-c")

        # futures + callbacks + processes
        f = sim.future("f")

        def proc_a():
            ev("a-start")
            yield sim.sleep(2.0)
            ev("a-slept")
            value = yield f
            ev(f"a-got-{value}")
            return "A"

        def proc_b():
            ev("b-start")
            yield sim.sleep(0.0)
            ev("b-zero-slept")
            sim.call_soon(ev, "b-soon")
            yield sim.sleep(4.0)
            f.resolve("X")
            ev("b-resolved")
            return "B"

        pa = sim.spawn(proc_a(), name="a")
        pb = sim.spawn(proc_b(), name="b")

        def proc_c():
            results = yield all_of(sim, [pa, pb])
            ev(f"c-all-{results}")
            idx, val = yield any_of(sim, [sim.sleep(1.0), sim.future("never")])
            ev(f"c-any-{idx}-{val}")

        sim.spawn(proc_c(), name="c")

        # rng-driven timers entangle the RNG stream with event order
        def rng_proc():
            for i in range(5):
                yield sim.sleep(sim.rng.uniform(0.0, 3.0))
                ev(f"rng{i}")

        sim.spawn(rng_proc(), name="rng")

        # callback added to an already-done future fires via the queue
        done = sim.future("done")
        done.resolve(7)
        done.add_callback(lambda fut: ev(f"late-cb-{fut.value}"))

        sim.run()
        trace.append((round(sim.now, 6), "end"))
        trace.append(("events", sim.events_processed))
        return trace

    def test_trace_matches_golden(self):
        assert self.scenario_trace() == self.EXPECTED

    def test_trace_is_repeatable(self):
        assert self.scenario_trace() == self.scenario_trace()
