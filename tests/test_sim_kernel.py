"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (
    Future,
    ProcessFailure,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


@pytest.fixture
def sim():
    return Simulator(seed=42)


class TestScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_at_right_time(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10.0]

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(30.0, lambda: order.append("c"))
        sim.schedule(10.0, lambda: order.append("a"))
        sim.schedule(20.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, sim):
        order = []
        for i in range(10):
            sim.schedule(5.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_timer_does_not_fire(self, sim):
        fired = []
        timer = sim.schedule(5.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled

    def test_run_until_stops_and_advances_clock(self, sim):
        fired = []
        sim.schedule(100.0, lambda: fired.append(1))
        sim.run(until=50.0)
        assert sim.now == 50.0
        assert fired == []
        sim.run()
        assert fired == [1]
        assert sim.now == 100.0

    def test_run_until_exact_boundary_runs_event(self, sim):
        fired = []
        sim.schedule(50.0, lambda: fired.append(1))
        sim.run(until=50.0)
        assert fired == [1]

    def test_max_events_limit(self, sim):
        count = []
        for _ in range(10):
            sim.call_soon(lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.call_soon(lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_nested_scheduling(self, sim):
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(5.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(10.0, outer)
        sim.run()
        assert times == [10.0, 15.0]

    def test_determinism_same_seed(self):
        def run_once(seed):
            sim = Simulator(seed=seed)
            trace = []

            def proc():
                for _ in range(20):
                    yield sim.sleep(sim.rng.uniform(0, 10))
                    trace.append(round(sim.now, 6))

            sim.run_process(proc())
            return trace

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)


class TestFuture:
    def test_resolve_and_value(self, sim):
        f = sim.future("f")
        f.resolve(99)
        assert f.done and not f.failed
        assert f.value == 99

    def test_pending_value_raises(self, sim):
        f = sim.future()
        with pytest.raises(SimulationError):
            _ = f.value

    def test_double_resolve_raises(self, sim):
        f = sim.future()
        f.resolve(1)
        with pytest.raises(SimulationError):
            f.resolve(2)

    def test_fail_stores_exception(self, sim):
        f = sim.future()
        f.fail(ValueError("boom"))
        assert f.failed
        with pytest.raises(ValueError):
            _ = f.value

    def test_try_resolve(self, sim):
        f = sim.future()
        assert f.try_resolve(1) is True
        assert f.try_resolve(2) is False
        assert f.value == 1

    def test_callback_after_completion_still_fires(self, sim):
        f = sim.future()
        f.resolve(5)
        seen = []
        f.add_callback(lambda fut: seen.append(fut.value))
        sim.run()
        assert seen == [5]

    def test_callbacks_are_asynchronous(self, sim):
        """Callbacks fire via the event queue, never synchronously."""
        f = sim.future()
        seen = []
        f.add_callback(lambda fut: seen.append(1))
        f.resolve(None)
        assert seen == []  # not yet
        sim.run()
        assert seen == [1]


class TestProcess:
    def test_process_returns_value(self, sim):
        def proc():
            yield sim.sleep(5)
            return "done"

        assert sim.run_process(proc()) == "done"
        assert sim.now == 5.0

    def test_process_waits_on_future(self, sim):
        f = sim.future()
        sim.schedule(7.0, f.resolve, "hello")

        def proc():
            value = yield f
            return (value, sim.now)

        assert sim.run_process(proc()) == ("hello", 7.0)

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.sleep(3)
            return 10

        def parent():
            value = yield sim.spawn(child())
            return value * 2

        assert sim.run_process(parent()) == 20

    def test_yield_from_composition(self, sim):
        def inner():
            yield sim.sleep(2)
            return 5

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        assert sim.run_process(outer()) == 10
        assert sim.now == 4.0

    def test_failed_future_raises_in_process(self, sim):
        f = sim.future()
        sim.schedule(1.0, f.fail, RuntimeError("bad"))

        def proc():
            try:
                yield f
            except RuntimeError as exc:
                return f"caught {exc}"

        assert sim.run_process(proc()) == "caught bad"

    def test_child_failure_wrapped(self, sim):
        def child():
            yield sim.sleep(1)
            raise ValueError("inner")

        def parent():
            try:
                yield sim.spawn(child())
            except ProcessFailure as exc:
                assert isinstance(exc.cause, ValueError)
                return "wrapped"

        assert sim.run_process(parent()) == "wrapped"

    def test_uncaught_process_exception_propagates(self, sim):
        def proc():
            yield sim.sleep(1)
            raise KeyError("oops")

        with pytest.raises(KeyError):
            sim.run_process(proc())

    def test_yielding_non_future_fails_process(self, sim):
        def proc():
            yield 42

        with pytest.raises(SimulationError):
            sim.run_process(proc())

    def test_unfinished_process_detected(self, sim):
        def proc():
            yield sim.future()  # never resolved

        with pytest.raises(SimulationError, match="did not finish"):
            sim.run_process(proc())

    def test_immediate_return(self, sim):
        def proc():
            return 1
            yield  # pragma: no cover

        assert sim.run_process(proc()) == 1


class TestCombinators:
    def test_all_of_collects_in_order(self, sim):
        f1, f2, f3 = sim.future(), sim.future(), sim.future()
        sim.schedule(3.0, f1.resolve, "a")
        sim.schedule(1.0, f2.resolve, "b")
        sim.schedule(2.0, f3.resolve, "c")

        def proc():
            values = yield all_of(sim, [f1, f2, f3])
            return (values, sim.now)

        assert sim.run_process(proc()) == (["a", "b", "c"], 3.0)

    def test_all_of_empty(self, sim):
        def proc():
            values = yield all_of(sim, [])
            return values

        assert sim.run_process(proc()) == []

    def test_all_of_fails_fast(self, sim):
        f1, f2 = sim.future(), sim.future()
        sim.schedule(1.0, f1.fail, RuntimeError("x"))

        def proc():
            try:
                yield all_of(sim, [f1, f2])
            except RuntimeError:
                return sim.now

        assert sim.run_process(proc()) == 1.0

    def test_any_of_returns_first(self, sim):
        f1, f2 = sim.future(), sim.future()
        sim.schedule(5.0, f1.resolve, "slow")
        sim.schedule(2.0, f2.resolve, "fast")

        def proc():
            index, value = yield any_of(sim, [f1, f2])
            return (index, value, sim.now)

        assert sim.run_process(proc()) == (1, "fast", 2.0)

    def test_any_of_requires_inputs(self, sim):
        with pytest.raises(SimulationError):
            any_of(sim, [])

    def test_any_of_with_sleep_as_timeout(self, sim):
        never = sim.future()

        def proc():
            index, _ = yield any_of(sim, [never, sim.sleep(10)])
            return (index, sim.now)

        assert sim.run_process(proc()) == (1, 10.0)
