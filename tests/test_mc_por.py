"""Tests for partial-order reduction: footprints, independence, pruning.

The soundness pillar here is :func:`crosscheck_por` — an *empirical*
proof on a small config that the pruned DFS reaches exactly the same
set of observable outcomes as the full one.  The other tests pin the
independence relation's conflict table, the RNG draw accounting, and
the acceptance ratio (POR runs <= 40% of the full DFS at equal depth).
"""

import random

import pytest

from repro.mc import (
    McRunConfig,
    crosscheck_por,
    explore,
    explore_sweep_edges,
    run_schedule,
)
from repro.mc.por import UNIVERSAL, CountingRandom, Footprint, independent

#: smallest interesting scenario: one client, two ops, one key — the
#: exhaustive cross-check stays under a hundred runs at depth 6
TINY = dict(num_clients=1, ops_per_client=2, num_keys=1)


class TestIndependence:
    def test_distinct_nodes_commute(self):
        assert independent(Footprint(node="oqs0"), Footprint(node="iqs1"))

    def test_same_node_conflicts(self):
        fp = Footprint(node="oqs0")
        assert not independent(fp, Footprint(node="oqs0"))

    def test_unknown_node_conflicts_with_everything(self):
        assert not independent(Footprint(node=None), Footprint(node="a"))
        assert not independent(Footprint(node="a"), Footprint(node=None))

    def test_universal_conflicts_with_everything(self):
        assert not independent(UNIVERSAL, Footprint(node="a"))
        assert not independent(Footprint(node="a"), UNIVERSAL)

    def test_shared_message_token_conflicts(self):
        a = Footprint(node="a", tokens=frozenset({7}))
        b = Footprint(node="b", tokens=frozenset({7, 9}))
        assert not independent(a, b)
        assert independent(a, Footprint(node="b", tokens=frozenset({9})))

    def test_shared_key_conflicts(self):
        a = Footprint(node="a", keys=frozenset({"k0"}))
        b = Footprint(node="b", keys=frozenset({"k0"}))
        assert not independent(a, b)
        assert independent(a, Footprint(node="b", keys=frozenset({"k1"})))

    def test_rng_conflicts_only_pairwise(self):
        drawer_a = Footprint(node="a", rng=True)
        drawer_b = Footprint(node="b", rng=True)
        bystander = Footprint(node="c")
        # two drawers swap their position in the shared draw sequence
        assert not independent(drawer_a, drawer_b)
        # a non-drawing event leaves the sequence untouched either side
        assert independent(drawer_a, bystander)
        assert independent(bystander, drawer_b)


class TestCountingRandom:
    def test_bit_identical_to_plain_random(self):
        counted, plain = CountingRandom(42), random.Random(42)
        assert [counted.random() for _ in range(20)] == \
               [plain.random() for _ in range(20)]
        assert counted.randrange(100) == plain.randrange(100)
        assert counted.gauss(0, 1) == plain.gauss(0, 1)

    def test_draws_count_all_entry_points(self):
        rng = CountingRandom(0)
        assert rng.draws == 0
        rng.random()
        assert rng.draws == 1
        rng.randrange(10)  # goes through getrandbits
        assert rng.draws > 1


class TestTrackedRuns:
    def test_trace_bytes_identical_with_and_without_tracking(self):
        config = McRunConfig()
        plain = run_schedule(config)
        tracked = run_schedule(config, track_footprints=True)
        assert plain.trace_text == tracked.trace_text

    def test_footprints_populated_only_when_tracking(self):
        config = McRunConfig()
        plain = run_schedule(config)
        assert all(d.footprints is None for d in plain.decisions)
        tracked = run_schedule(config, track_footprints=True)
        events = [d for d in tracked.decisions if d.kind == "event"]
        assert events, "default scenario must hit same-instant slots"
        assert all(
            d.footprints is not None and len(d.footprints) == d.n
            for d in events
        )
        # deliver decisions carry no footprints (they are not prunable)
        assert all(
            d.footprints is None
            for d in tracked.decisions if d.kind == "deliver"
        )


class TestPorDfs:
    def test_por_prunes_at_least_60_percent_of_branches(self):
        """The acceptance ratio: at equal depth on the default scenario,
        the POR DFS must run <= 40% of the plain DFS's schedules."""
        config = McRunConfig()
        full = explore(config, strategy="dfs", budget=2_000,
                       max_depth=6, shrink=False, por=False)
        por = explore(config, strategy="dfs", budget=2_000,
                      max_depth=6, shrink=False, por=True)
        assert full.ok and por.ok
        assert full.pruned == 0 and por.pruned > 0
        assert por.runs <= 0.40 * full.runs

    def test_por_still_finds_canonical_witness(self):
        result = explore(
            McRunConfig(weaken="skip_write_invalidation"),
            strategy="dfs", budget=10, por=True,
        )
        assert not result.ok and result.runs == 1

    def test_crosscheck_equivalence_on_tiny_config(self):
        report = crosscheck_por(McRunConfig(**TINY), max_depth=6,
                                budget=5_000)
        assert report["equivalent"]
        assert report["pruned"] > 0
        assert report["por_runs"] < report["full_runs"]
        assert report["missing"] == 0 and report["extra"] == 0

    def test_crosscheck_rejects_insufficient_budget(self):
        with pytest.raises(ValueError, match="too small to exhaust"):
            crosscheck_por(McRunConfig(**TINY), max_depth=6, budget=3)


class TestSweepEdges:
    def test_sweep_stops_at_first_witness(self):
        results = explore_sweep_edges(
            McRunConfig(weaken="skip_write_invalidation"), [2, 3],
            strategy="dfs", budget=10, shrink=False,
        )
        # the bug fires at 2 edges, so 3 edges is never explored
        assert len(results) == 1
        assert results[0].config.num_edges == 2
        assert not results[0].ok

    def test_sweep_covers_every_size_when_clean(self):
        results = explore_sweep_edges(
            McRunConfig(), [2, 3],
            strategy="dfs", budget=8, max_depth=4, shrink=False,
        )
        assert [r.config.num_edges for r in results] == [2, 3]
        assert all(r.ok for r in results)
