"""Model-based (stateful) testing of the lease state machines.

A hypothesis rule machine drives one IQS-side lease table and one
OQS-side lease view through arbitrary interleavings of time advance,
volume grants, writes (direct or delayed invalidation), object
renewals, acks, and epoch bumps — delivering messages synchronously
(the asynchronous cases are covered by the protocol fuzz tests).

The invariant checked after every step is the heart of DQVL's safety:

    if the holder considers (volume, object) valid, then the holder's
    recorded clock for the object IS the latest write's clock.

i.e. with synchronous delivery there is no interleaving of grants,
delayed invalidations, epoch GC, and renewals that leaves a *valid*
stale entry behind.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.leases import IqsLeaseTable, OqsLeaseView
from repro.types import ZERO_LC, LogicalClock

OBJECTS = ["a", "b", "c"]
VOLUME = "v"
LEASE_MS = 100.0


class LeaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.table = IqsLeaseTable(lease_length_ms=LEASE_MS, max_delayed=4)
        self.view = OqsLeaseView()
        self.now = 0.0
        self.counter = 0
        self.last_write = {obj: ZERO_LC for obj in OBJECTS}

    # -- helper -------------------------------------------------------------

    def _deliver_inval(self, obj, lc):
        self.view.apply_invalidation("i", obj, lc)
        # the holder acks; the granter records it
        self.table.ack_delayed(VOLUME, "j", lc)

    # -- rules ---------------------------------------------------------------

    @rule(dt=st.floats(min_value=0.1, max_value=80.0))
    def advance_time(self, dt):
        self.now += dt

    @rule()
    def grant_volume(self):
        grant = self.table.grant(VOLUME, "j", now=self.now, requestor_time=self.now)
        self.view.apply_grant("i", grant)
        if grant.delayed:
            max_lc = max(d.lc for d in grant.delayed)
            self.table.ack_delayed(VOLUME, "j", max_lc)

    @rule(obj=st.sampled_from(OBJECTS))
    def renew_object(self, obj):
        """Only meaningful under a live volume lease (the protocol only
        sends object renewals then), but harmless anytime."""
        self.view.apply_renewal(
            "i", obj, epoch=self.table.epoch(VOLUME, "j"),
            lc=self.last_write[obj],
        )

    @rule(obj=st.sampled_from(OBJECTS))
    def write(self, obj):
        self.counter += 1
        lc = LogicalClock(self.counter, "w")
        self.last_write[obj] = lc
        if self.table.is_expired(VOLUME, "j", self.now):
            self.table.enqueue_delayed(VOLUME, "j", obj, lc)
        else:
            self._deliver_inval(obj, lc)

    @rule()
    def gc_epoch(self):
        self.table.bump_epoch(VOLUME, "j")

    # -- the invariant -------------------------------------------------------

    @invariant()
    def valid_implies_fresh(self):
        if not hasattr(self, "view"):
            return  # before initialize
        for obj in OBJECTS:
            if self.view.object_valid(VOLUME, obj, "i", self.now):
                held = self.view.object_clock(obj, "i")
                assert held == self.last_write[obj], (
                    f"holder serves {obj}@{held}, "
                    f"latest write is {self.last_write[obj]}"
                )

    @invariant()
    def holder_never_outlives_granter(self):
        """Zero drift: if the holder's volume lease is valid, the
        granter must not consider it expired."""
        if not hasattr(self, "view"):
            return
        if self.view.volume_valid(VOLUME, "i", self.now):
            assert not self.table.is_expired(VOLUME, "j", self.now)


TestLeaseMachine = LeaseMachine.TestCase
TestLeaseMachine.settings = settings(
    max_examples=120, stateful_step_count=60, deadline=None
)
