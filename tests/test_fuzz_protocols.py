"""Randomized protocol fuzzing across many seeds.

Each case builds a small cluster, drives concurrent clients with a
random mix of reads/writes/contention (and, for the hard variants,
message loss plus crash/recovery), then checks the recorded history
against regular semantics.  Failures print the seed, making every case
deterministically replayable.
"""

import pytest

from repro.consistency import History, check_regular
from repro.core import DqvlConfig, build_basic_dq_cluster, build_dqvl_cluster
from repro.sim import ConstantDelay, JitteredDelay, Network, Simulator, crash_for
from repro.workload import BernoulliOpStream, UniformKeyChooser, ZipfKeyChooser, closed_loop

SEEDS = [11, 23, 37, 41, 59]


def run_fuzz(
    seed: int,
    builder,
    *,
    loss: float = 0.0,
    jitter_ms: float = 0.0,
    crashes: bool = False,
    n_iqs: int = 3,
    n_oqs: int = 3,
    clients: int = 3,
    ops: int = 40,
    lease_ms: float = 1_200.0,
):
    sim = Simulator(seed=seed)
    delay = ConstantDelay(12.0)
    if jitter_ms:
        delay = JitteredDelay(delay, jitter_ms)
    net = Network(sim, delay, loss_probability=loss)
    config = DqvlConfig(
        lease_length_ms=lease_ms,
        inval_initial_timeout_ms=80.0,
        qrpc_initial_timeout_ms=80.0,
    )
    cluster = builder(
        sim, net,
        [f"iqs{i}" for i in range(n_iqs)],
        [f"oqs{i}" for i in range(n_oqs)],
        config,
    )
    if crashes:
        crash_for(sim, cluster.oqs_nodes[0], at=1_500.0, duration=2_500.0)
        crash_for(sim, cluster.iqs_nodes[-1], at=3_000.0, duration=2_000.0)

    history = History()
    procs = []
    rng = sim.rng
    write_ratio = 0.15 + 0.5 * rng.random()
    keys = ["hot"] + [f"k{i}" for i in range(3)]
    for c in range(clients):
        client = cluster.client(f"c{c}", prefer_oqs=f"oqs{c % n_oqs}")
        stream = BernoulliOpStream(
            rng, ZipfKeyChooser(keys, s=1.0), write_ratio, label=f"c{c}-"
        )
        procs.append(sim.spawn(closed_loop(sim, client, stream, history, ops)))
    sim.run(until=3_600_000.0)
    assert all(p.done for p in procs), f"seed={seed}: workload stuck"
    violations = check_regular(history)
    assert violations == [], f"seed={seed}: {violations[:3]}"


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_dqvl_clean_network(seed):
    run_fuzz(seed, build_dqvl_cluster)


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_dqvl_lossy_jittery(seed):
    run_fuzz(seed, build_dqvl_cluster, loss=0.08, jitter_ms=15.0)


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_dqvl_with_crashes(seed):
    run_fuzz(seed, build_dqvl_cluster, crashes=True)


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_dqvl_everything_at_once(seed):
    run_fuzz(
        seed, build_dqvl_cluster,
        loss=0.05, jitter_ms=10.0, crashes=True,
        n_iqs=5, n_oqs=5, lease_ms=900.0,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_dqvl_short_leases(seed):
    """Sub-RTT-scale leases churn constantly; correctness must hold."""
    run_fuzz(seed, build_dqvl_cluster, lease_ms=200.0)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_fuzz_dqvl_finite_object_leases(seed):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(12.0), loss_probability=0.05)
    config = DqvlConfig(
        lease_length_ms=1_500.0,
        object_lease_ms=400.0,
        inval_initial_timeout_ms=80.0,
        qrpc_initial_timeout_ms=80.0,
    )
    cluster = build_dqvl_cluster(
        sim, net, ["iqs0", "iqs1", "iqs2"], ["oqs0", "oqs1", "oqs2"], config
    )
    history = History()
    procs = []
    for c in range(3):
        client = cluster.client(f"c{c}", prefer_oqs=f"oqs{c}")
        stream = BernoulliOpStream(
            sim.rng, UniformKeyChooser(["hot", "k1"]), 0.35, label=f"c{c}-"
        )
        procs.append(sim.spawn(closed_loop(sim, client, stream, history, 35)))
    sim.run(until=3_600_000.0)
    assert all(p.done for p in procs)
    assert check_regular(history) == [], f"seed={seed}"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_fuzz_basic_dq(seed):
    run_fuzz(seed, build_basic_dq_cluster, loss=0.05)
