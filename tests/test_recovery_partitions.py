"""Crash-recovery modes and network-partition scenarios for DQVL."""

import pytest

from repro.consistency import History, check_regular
from repro.core import DqvlConfig, build_dqvl_cluster
from repro.quorum import QrpcError
from repro.sim import ConstantDelay, Network, Simulator
from repro.workload import BernoulliOpStream, UniformKeyChooser, closed_loop


def make_cluster(seed=0, n=3, volatile=False, lease_ms=1_000.0,
                 client_max_attempts=None):
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantDelay(15.0))
    config = DqvlConfig(
        lease_length_ms=lease_ms,
        inval_initial_timeout_ms=100.0,
        qrpc_initial_timeout_ms=100.0,
        volatile_oqs_recovery=volatile,
        client_max_attempts=client_max_attempts,
    )
    cluster = build_dqvl_cluster(
        sim, net,
        [f"iqs{i}" for i in range(n)],
        [f"oqs{i}" for i in range(n)],
        config,
    )
    return sim, net, cluster


class TestVolatileRecovery:
    def test_restart_loses_cache_and_revalidates(self):
        sim, net, cluster = make_cluster(volatile=True)
        client = cluster.client("c0", prefer_oqs="oqs0")
        node = cluster.oqs_node("oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            assert node.local_value("x")[0] == "v1"
            node.crash()
            node.recover()
            assert node.local_value("x")[0] is None  # amnesia
            r = yield from client.read("x")
            return (r.hit, r.value)

        hit, value = sim.run_process(scenario(), until=600_000.0)
        assert hit is False  # must revalidate
        assert value == "v1"

    def test_stable_storage_keeps_cache(self):
        sim, net, cluster = make_cluster(volatile=False)
        client = cluster.client("c0", prefer_oqs="oqs0")
        node = cluster.oqs_node("oqs0")

        def scenario():
            yield from client.write("x", "v1")
            yield from client.read("x")
            node.crash()
            node.recover()
            r = yield from client.read("x")
            return (r.hit, r.value)

        hit, value = sim.run_process(scenario(), until=600_000.0)
        # leases were still valid across the instant restart
        assert (hit, value) == (True, "v1")

    def test_volatile_recovery_is_regular_under_churn(self):
        from repro.sim import crash_for

        sim, net, cluster = make_cluster(seed=7, volatile=True, lease_ms=800.0)
        crash_for(sim, cluster.oqs_node("oqs0"), at=1_000.0, duration=1_500.0)
        crash_for(sim, cluster.oqs_node("oqs1"), at=3_000.0, duration=1_000.0)
        history = History()
        procs = []
        for c in range(3):
            client = cluster.client(f"c{c}", prefer_oqs=f"oqs{c}")
            stream = BernoulliOpStream(
                sim.rng, UniformKeyChooser(["hot", "k"]), 0.35, label=f"c{c}-"
            )
            procs.append(sim.spawn(closed_loop(sim, client, stream, history, 35)))
        sim.run(until=3_600_000.0)
        assert all(p.done for p in procs)
        assert check_regular(history) == []


class TestPartitions:
    def test_iqs_minority_partition_rejects_writes(self):
        """A client that can only reach a minority of the IQS cannot
        write (regular semantics would be forfeited) — the paper's
        availability model in action."""
        sim, net, cluster = make_cluster(n=5, client_max_attempts=3)
        client = cluster.client("c0", prefer_oqs="oqs0")
        # client + 2 IQS nodes on one side; 3 IQS nodes on the other
        net.partition(
            ["c0", "iqs0", "iqs1", "oqs0", "oqs1", "oqs2", "oqs3", "oqs4"],
            ["iqs2", "iqs3", "iqs4"],
        )

        def scenario():
            try:
                yield from client.write("x", "v1")
            except QrpcError:
                return "rejected"

        assert sim.run_process(scenario(), until=600_000.0) == "rejected"

    def test_iqs_majority_side_still_writes(self):
        sim, net, cluster = make_cluster(n=5)
        client = cluster.client("c0", prefer_oqs="oqs0")
        # only a minority of the IQS is cut off
        net.partition(
            ["c0", "iqs0", "iqs1", "iqs2", "oqs0", "oqs1", "oqs2", "oqs3", "oqs4"],
            ["iqs3", "iqs4"],
        )

        def scenario():
            w = yield from client.write("x", "v1")
            r = yield from client.read("x")
            return r.value

        assert sim.run_process(scenario(), until=600_000.0) == "v1"

    def test_reads_on_partitioned_cache_reject_rather_than_serve_stale(self):
        """An OQS node cut off from the whole IQS: once its leases lapse
        it cannot validate, so reads error out instead of returning
        possibly-stale data — the regular-semantics trade."""
        sim, net, cluster = make_cluster(lease_ms=600.0, client_max_attempts=3)
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            # isolate oqs0 (and its client) from the IQS
            net.partition(
                ["c0", "oqs0"],
                ["iqs0", "iqs1", "iqs2", "oqs1", "oqs2", "c1"],
            )
            yield sim.sleep(2_000.0)  # leases lapse
            try:
                yield from c0.read("x")
                outcome = "served"
            except QrpcError:
                outcome = "rejected"
            # meanwhile the majority side keeps making progress
            yield from c1.write("x", "v2")
            r = yield from c1.read("x")
            return (outcome, r.value)

        outcome, value = sim.run_process(scenario(), until=600_000.0)
        assert outcome == "rejected"
        assert value == "v2"

    def test_heal_reconverges(self):
        sim, net, cluster = make_cluster(lease_ms=600.0)
        c0 = cluster.client("c0", prefer_oqs="oqs0")
        c1 = cluster.client("c1", prefer_oqs="oqs1")

        def scenario():
            yield from c0.write("x", "v1")
            yield from c0.read("x")
            net.partition(
                ["c0", "oqs0"],
                ["iqs0", "iqs1", "iqs2", "oqs1", "oqs2", "c1"],
            )
            yield from c1.write("x", "v2")  # completes via lease expiry
            net.heal()
            r = yield from c0.read("x")
            return (r.value, r.hit)

        value, hit = sim.run_process(scenario(), until=600_000.0)
        assert value == "v2"
        assert hit is False  # had to revalidate after the partition
