"""Tests for the chaos campaign runner.

The two sides of the harness's evidence:

* healthy protocols survive randomized nemesis schedules with zero
  violations (and identical results on every replay);
* deliberately weakened protocols are *caught* — a harness that cannot
  light up proves nothing with its zeros.
"""

import dataclasses

import pytest

from repro.chaos import ChaosRunConfig, run_campaign, run_chaos
from repro.chaos.campaign import EVENTUALLY_CONSISTENT

# Small-but-real run: enough traffic to exercise leases and recoveries
# without dominating the test suite's wall clock.
SMALL = dict(
    num_clients=2,
    ops_per_client=15,
    horizon_ms=6_000.0,
)

# The weakened-detection configs mirror the shipped corpus entries.
WEAKENED = dict(ops_per_client=30, write_ratio=0.35)


class TestConfigValidation:
    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            ChaosRunConfig(protocol="paxos")

    def test_unknown_nemesis(self):
        with pytest.raises(ValueError, match="unknown nemesis"):
            ChaosRunConfig(nemeses=("chaos_monkey",))

    def test_unknown_weakener(self):
        with pytest.raises(ValueError, match="unknown weakener"):
            ChaosRunConfig(weaken="ignore_everything")

    def test_horizon_must_precede_time_limit(self):
        with pytest.raises(ValueError, match="horizon_ms"):
            ChaosRunConfig(horizon_ms=10_000.0, time_limit_ms=5_000.0)

    def test_nemeses_coerced_to_tuple(self):
        config = ChaosRunConfig(nemeses=["loss_burst"])
        assert config.nemeses == ("loss_burst",)
        assert hash(config)  # stays hashable (sweep cache key)


class TestHealthyRuns:
    def test_dqvl_survives_default_nemeses(self):
        result = run_chaos(ChaosRunConfig(seed=1, **SMALL))
        assert result.ok, result.violations
        assert result.stats["ops_recorded"] > 0
        assert result.stats["invariant_samples"] > 0
        assert len(result.schedule) > 0

    @pytest.mark.parametrize("protocol", ["primary_backup", "majority"])
    def test_other_protocols_survive(self, protocol):
        result = run_chaos(ChaosRunConfig(protocol=protocol, seed=2, **SMALL))
        assert result.ok, result.violations

    def test_run_is_deterministic(self):
        config = ChaosRunConfig(seed=3, **SMALL)
        assert run_chaos(config).to_json_obj() == run_chaos(config).to_json_obj()

    def test_schedule_override_replays(self):
        """A run under an explicit schedule equals the original run that
        generated it — the contract the shrinker is built on."""
        config = ChaosRunConfig(seed=4, **SMALL)
        first = run_chaos(config)
        again = run_chaos(config, schedule=first.schedule)
        assert again.to_json_obj() == first.to_json_obj()

    def test_rowa_async_exempt_from_regular_but_reports_staleness(self):
        assert "rowa_async" in EVENTUALLY_CONSISTENT
        result = run_chaos(
            ChaosRunConfig(protocol="rowa_async", seed=5, **SMALL)
        )
        assert not [v for v in result.violations if v["type"] == "regular"]
        assert result.stats["staleness"]["total_reads"] > 0


class TestWeakenedDetection:
    def test_ignore_volume_expiry_caught_by_invariant_monitor(self):
        result = run_chaos(
            ChaosRunConfig(seed=0, weaken="ignore_volume_expiry", **WEAKENED)
        )
        kinds = {v["type"] for v in result.violations}
        assert "invariant" in kinds, result.violations
        assert any(
            v.get("invariant") == "lease_serve"
            for v in result.violations if v["type"] == "invariant"
        )

    def test_ignore_object_invalidations_caught_by_history_checker(self):
        result = run_chaos(
            ChaosRunConfig(
                seed=0, weaken="ignore_object_invalidations", **WEAKENED
            )
        )
        assert any(v["type"] == "regular" for v in result.violations)

    def test_skip_write_invalidation_caught(self):
        result = run_chaos(
            ChaosRunConfig(seed=0, weaken="skip_write_invalidation", **WEAKENED)
        )
        assert not result.ok

    def test_weakener_requires_dqvl_deployment(self):
        with pytest.raises(ValueError, match="DQVL"):
            run_chaos(
                ChaosRunConfig(
                    protocol="majority", seed=0,
                    weaken="ignore_volume_expiry", **SMALL
                )
            )


class TestCampaignFanout:
    def test_run_campaign_returns_chaos_points(self, tmp_path):
        from repro.harness.sweeps import ChaosPoint

        configs = [
            ChaosRunConfig(seed=s, protocol="primary_backup", **SMALL)
            for s in (0, 1)
        ]
        cache = str(tmp_path / "chaos-cache.jsonl")
        points = run_campaign(configs, workers=1, cache_path=cache)
        assert len(points) == 2
        assert all(isinstance(p, ChaosPoint) for p in points)
        assert all(p.ok for p in points)
        assert [p.config for p in points] == configs

        again = run_campaign(configs, workers=1, cache_path=cache)
        assert all(p.from_cache for p in again)
        assert [p.violations for p in again] == [p.violations for p in points]

    def test_points_rebuild_schedules(self, tmp_path):
        """The cached point carries the schedule as JSON, so a failing
        campaign row can be fed straight to the shrinker."""
        from repro.chaos.faults import FaultSchedule

        config = ChaosRunConfig(seed=6, protocol="primary_backup", **SMALL)
        cache = str(tmp_path / "chaos-cache.jsonl")
        (point,) = run_campaign([config], workers=1, cache_path=cache)
        rebuilt = FaultSchedule.from_json_obj(point.schedule)
        assert rebuilt.faults == run_chaos(config).schedule.faults
