"""Tests for the ddmin schedule shrinker and repro persistence."""

import pytest

from repro.chaos import (
    ChaosRunConfig,
    Fault,
    FaultSchedule,
    load_repro,
    save_repro,
    shrink_schedule,
)
from repro.chaos.shrink import ShrinkResult

WEAKENED = dict(ops_per_client=30, write_ratio=0.35)


class TestShrink:
    def test_clean_schedule_rejected(self):
        config = ChaosRunConfig(
            seed=1, num_clients=2, ops_per_client=10, horizon_ms=6_000.0
        )
        with pytest.raises(ValueError, match="does not produce any violation"):
            shrink_schedule(config)

    def test_shrinks_weakened_run_to_small_repro(self):
        """The acceptance bar: a weakened variant's dozen-fault nemesis
        schedule shrinks to a handful of windows that still witness the
        bug."""
        config = ChaosRunConfig(
            seed=0, weaken="ignore_volume_expiry", **WEAKENED
        )
        result = shrink_schedule(config, allow_empty=False)
        assert 1 <= len(result.shrunk) <= 6
        assert len(result.shrunk) < len(result.original)
        assert result.violations
        assert result.runs <= 100
        assert result.expected_types  # e.g. ['invariant', 'regular']

    def test_empty_probe_finds_fault_free_bugs(self):
        """ignore_object_invalidations violates with *no* faults at all;
        with allow_empty the shrinker reports exactly that."""
        config = ChaosRunConfig(
            seed=0, weaken="ignore_object_invalidations", **WEAKENED
        )
        result = shrink_schedule(config)
        assert len(result.shrunk) == 0
        assert result.violations
        assert result.runs == 2  # baseline + the empty probe


class TestReproPersistence:
    def _result(self):
        config = ChaosRunConfig(seed=9, weaken="ignore_volume_expiry")
        sched = FaultSchedule([
            Fault.make("partition", 100.0, 900.0,
                       groups=(("oqs1",), ("iqs0", "iqs1", "iqs2", "oqs0"))),
        ])
        return ShrinkResult(
            config=config,
            original=sched,
            shrunk=sched,
            violations=[{"type": "invariant"}, {"type": "regular"}],
            runs=3,
        )

    def test_save_load_roundtrip(self, tmp_path):
        result = self._result()
        path = save_repro(result, str(tmp_path))
        config, schedule, expected = load_repro(path)
        assert config == result.config
        assert schedule.faults == result.shrunk.faults
        assert expected == ["invariant", "regular"]

    def test_default_name_encodes_config(self, tmp_path):
        path = save_repro(self._result(), str(tmp_path))
        assert path.endswith("dqvl_seed9_ignore_volume_expiry.json")

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ValueError, match="unsupported repro format"):
            load_repro(str(path))
