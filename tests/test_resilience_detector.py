"""Units for the resilience layer: failure detector, circuit breaker,
derived QRPC timeouts, and the NodeResilience policy streams.

Everything here is deterministic by construction — the detector and the
breaker draw no randomness, and the NodeResilience streams are
string-seeded per (simulation seed, node), so same-seed assertions are
exact equalities, not tolerances.
"""

import pytest

from repro.edge.topology import EdgeTopologyConfig
from repro.quorum import MajorityQuorumSystem
from repro.resilience import (
    CircuitBreaker,
    FailureDetector,
    NodeResilience,
    ResilienceConfig,
    derive_qrpc_timeouts,
)
from repro.sim import Simulator


def make_detector(**overrides):
    clock = {"now": 0.0}
    config = ResilienceConfig(**overrides)
    det = FailureDetector(lambda: clock["now"], config)
    return det, clock


class TestFailureDetector:
    def test_first_reply_seeds_the_rtt_estimate(self):
        det, _ = make_detector()
        det.observe_reply("n1", 100.0)
        # First sample: srtt = rtt, rttvar = rtt/2 -> expected = rtt * 3.
        assert det.expected_rtt("n1") == pytest.approx(300.0)

    def test_ewma_converges_toward_the_observed_rtt(self):
        det, _ = make_detector()
        det.observe_reply("n1", 400.0)
        for _ in range(200):
            det.observe_reply("n1", 100.0)
        assert det.expected_rtt("n1") == pytest.approx(100.0, rel=0.05)

    def test_suspicion_accrues_on_timeouts_and_resets_on_reply(self):
        det, _ = make_detector(suspicion_threshold=2.0)
        assert not det.is_suspect("n1")
        det.observe_timeout("n1", 400.0)
        assert not det.is_suspect("n1")
        det.observe_timeout("n1", 400.0)
        assert det.is_suspect("n1")
        det.observe_reply("n1", 50.0)
        assert not det.is_suspect("n1")
        assert det.suspicion("n1") == 0.0

    def test_suspicions_counter_counts_transitions_not_timeouts(self):
        det, _ = make_detector(suspicion_threshold=2.0)
        for _ in range(5):
            det.observe_timeout("n1", 400.0)
        assert det.suspicions == 1  # one healthy -> suspect transition
        det.observe_reply("n1", 10.0)
        det.observe_timeout("n1", 400.0)
        det.observe_timeout("n1", 400.0)
        assert det.suspicions == 2

    def test_long_waits_are_stronger_evidence(self):
        det, _ = make_detector(suspicion_threshold=100.0)
        det.observe_reply("n1", 10.0)  # expected ~ 30ms
        det.observe_timeout("n1", 400.0)  # way past expectation
        heavy = det.suspicion("n1")
        det2, _ = make_detector(suspicion_threshold=100.0)
        det2.observe_reply("n1", 10.0)
        det2.observe_timeout("n1", 31.0)  # barely past expectation
        assert heavy > det2.suspicion("n1")
        assert heavy <= 4.0  # increment is clamped

    def test_quantile_needs_min_samples(self):
        det, _ = make_detector(min_rtt_samples=4)
        for rtt in (10.0, 20.0, 30.0):
            det.observe_reply("n1", rtt)
        assert det.rtt_quantile(0.95) is None
        det.observe_reply("n1", 40.0)
        assert det.rtt_quantile(0.95) == 40.0  # nearest rank of 4 samples

    def test_timeout_for_falls_back_cold_and_adapts_warm(self):
        det, _ = make_detector(
            min_rtt_samples=4, timeout_quantile=0.95, timeout_multiplier=2.0
        )
        assert det.timeout_for(400.0, 6_400.0) == 400.0
        for rtt in (100.0, 110.0, 120.0, 130.0):
            det.observe_reply("n1", rtt)
        warm = det.timeout_for(400.0, 6_400.0)
        assert warm == pytest.approx(260.0)  # q95 = 130, x2
        assert det.timeout_for(400.0, 200.0) == 200.0  # capped

    def test_hedge_delay_none_when_it_cannot_beat_the_round(self):
        det, _ = make_detector(min_rtt_samples=4, hedge_quantile=0.9)
        assert det.hedge_delay(400.0) is None  # no estimate yet
        for rtt in (100.0, 100.0, 100.0, 100.0):
            det.observe_reply("n1", rtt)
        assert det.hedge_delay(400.0) == pytest.approx(100.0)
        assert det.hedge_delay(90.0) is None  # would fire after the timer


class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=1_000.0):
        clock = {"now": 0.0}
        return CircuitBreaker(lambda: clock["now"], threshold, cooldown), clock

    def test_trips_after_consecutive_failures(self):
        br, _ = self.make()
        assert br.allow()
        br.record_failure()
        assert br.allow()  # one failure is not enough
        br.record_failure()
        assert not br.allow()
        assert br.state == "open"
        assert br.trips == 1

    def test_success_resets_the_consecutive_count(self):
        br, _ = self.make()
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.allow()  # the counter restarted

    def test_half_open_probe_closes_on_success(self):
        br, clock = self.make(cooldown=1_000.0)
        br.record_failure()
        br.record_failure()
        clock["now"] = 500.0
        assert not br.allow()  # still cooling down
        clock["now"] = 1_000.0
        assert br.allow()  # the single half-open probe
        assert br.state == "half_open"
        assert not br.allow()  # no second probe
        br.record_success()
        assert br.state == "closed"
        assert br.allow()

    def test_half_open_probe_failure_reopens_without_new_trip(self):
        br, clock = self.make(cooldown=1_000.0)
        br.record_failure()
        br.record_failure()
        clock["now"] = 1_000.0
        assert br.allow()
        br.record_failure()
        assert br.state == "open"
        assert br.trips == 1  # a failed probe is not a fresh trip
        assert not br.allow()
        clock["now"] = 2_000.0
        assert br.allow()

    def test_retry_after_reports_remaining_cooldown(self):
        br, clock = self.make(cooldown=1_000.0)
        br.record_failure()
        br.record_failure()
        clock["now"] = 300.0
        assert br.retry_after_ms(fallback=99.0) == pytest.approx(700.0)
        clock["now"] = 5_000.0
        br.allow()  # flips to half-open
        assert br.retry_after_ms(fallback=99.0) == 99.0


class TestDerivedTimeouts:
    def test_default_topology_derivation(self):
        initial, cap = derive_qrpc_timeouts(EdgeTopologyConfig())
        # 2 * (86ms one-way + 5ms jitter + processing) * 2 safety.
        assert initial == pytest.approx(344.0)
        assert cap == pytest.approx(initial * 16.0)

    def test_scales_with_the_delay_distribution(self):
        lan = derive_qrpc_timeouts(
            EdgeTopologyConfig(server_wan_ms=1.0, client_wan_ms=1.0)
        )
        wan = derive_qrpc_timeouts(
            EdgeTopologyConfig(server_wan_ms=300.0)
        )
        assert lan[0] < derive_qrpc_timeouts(EdgeTopologyConfig())[0] < wan[0]
        assert lan[0] >= 1.0  # floor

    def test_cap_never_below_initial(self):
        initial, cap = derive_qrpc_timeouts(EdgeTopologyConfig(), rounds=0)
        assert cap == initial


class TestNodeResilience:
    def test_same_seed_same_streams(self):
        system = MajorityQuorumSystem([f"n{i}" for i in range(5)])

        def draws(seed):
            res = NodeResilience(Simulator(seed=seed), "c0")
            quorums = [res.sample_quorum(system, "READ") for _ in range(10)]
            intervals = [res.next_interval(100.0, 100.0, 6_400.0)
                         for _ in range(10)]
            return quorums, intervals

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)

    def test_streams_are_independent(self):
        """Burning the backoff stream must not shift quorum selection."""
        system = MajorityQuorumSystem([f"n{i}" for i in range(5)])
        a = NodeResilience(Simulator(seed=0), "c0")
        b = NodeResilience(Simulator(seed=0), "c0")
        for _ in range(50):
            b.next_interval(100.0, 100.0, 6_400.0)
        quorums_a = [a.sample_quorum(system, "READ") for _ in range(10)]
        quorums_b = [b.sample_quorum(system, "READ") for _ in range(10)]
        assert quorums_a == quorums_b

    def test_resilience_draws_nothing_from_sim_rng(self):
        sim = Simulator(seed=0)
        state = sim.rng.getstate()
        res = NodeResilience(sim, "c0")
        system = MajorityQuorumSystem([f"n{i}" for i in range(5)])
        res.sample_quorum(system, "READ")
        res.next_interval(100.0, 100.0, 6_400.0)
        res.pick_hedge(system, frozenset(["n0"]), {})
        assert sim.rng.getstate() == state

    def test_suspected_members_are_swapped_out(self):
        system = MajorityQuorumSystem([f"n{i}" for i in range(5)])
        res = NodeResilience(Simulator(seed=0), "c0")
        for _ in range(3):
            res.detector.observe_timeout("n0", 400.0)
            res.detector.observe_timeout("n1", 400.0)
        for _ in range(20):
            quorum = res.sample_quorum(system, "READ", prefer="n0")
            # Three healthy nodes remain; a 3-of-5 majority never needs
            # a suspect, and the suspected prefer loses its privilege.
            assert "n0" not in quorum and "n1" not in quorum

    def test_swap_keeps_suspects_when_unavoidable(self):
        system = MajorityQuorumSystem(["n0", "n1", "n2"])
        res = NodeResilience(Simulator(seed=0), "c0")
        for _ in range(3):
            res.detector.observe_timeout("n0", 400.0)
            res.detector.observe_timeout("n1", 400.0)
        quorum = res.sample_quorum(system, "READ")
        assert system.is_read_quorum(set(quorum))  # still a real quorum

    def test_pick_hedge_prefers_healthy_untargeted(self):
        system = MajorityQuorumSystem([f"n{i}" for i in range(5)])
        res = NodeResilience(Simulator(seed=0), "c0")
        for _ in range(3):
            res.detector.observe_timeout("n3", 400.0)
        for _ in range(20):
            pick = res.pick_hedge(system, frozenset(["n0", "n1"]), {"n2": object()})
            assert pick == "n4"  # the only healthy untargeted non-responder
        assert res.pick_hedge(
            system, frozenset(["n0", "n1", "n2", "n3", "n4"]), {}
        ) is None

    def test_round_timeout_counts_adaptive_rounds(self):
        res = NodeResilience(Simulator(seed=0), "c0")
        res.round_timeout(400.0, 6_400.0)
        assert res.adaptive_rounds == 0  # cold: fallback used
        for rtt in (50.0, 50.0, 50.0, 50.0):
            res.detector.observe_reply("n1", rtt)
        assert res.round_timeout(400.0, 6_400.0) == pytest.approx(100.0)
        assert res.adaptive_rounds == 1

    def test_unjittered_backoff_is_plain_exponential(self):
        res = NodeResilience(
            Simulator(seed=0), "c0", ResilienceConfig(jittered_backoff=False)
        )
        assert res.next_interval(100.0, 100.0, 6_400.0) == 200.0
        assert res.next_interval(6_000.0, 100.0, 6_400.0) == 6_400.0

    def test_jittered_backoff_stays_in_the_decorrelated_envelope(self):
        res = NodeResilience(Simulator(seed=0), "c0")
        prev = 100.0
        for _ in range(100):
            nxt = res.next_interval(prev, 100.0, 6_400.0)
            assert 100.0 <= nxt <= min(6_400.0, max(100.0, prev * 3.0))
            prev = nxt
