"""Tests for the command-line interface and figure generators."""

import json

import pytest

from repro.cli import build_parser, main
from repro.harness.figures import FIGURES, generate_figure


class TestFigureGenerators:
    def test_registry_covers_all_panels(self):
        assert set(FIGURES) == {
            "fig6a", "fig6b", "fig7a", "fig7b",
            "fig8a", "fig8b", "fig9a", "fig9b",
        }

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            generate_figure("fig99")

    def test_analytic_figures_fast_and_shaped(self):
        for name in ("fig8a", "fig8b", "fig9a", "fig9b"):
            x_label, x_values, series = generate_figure(name)
            assert len(x_values) >= 5
            for ys in series.values():
                assert len(ys) == len(x_values)

    def test_simulated_figure_small_scale(self):
        x_label, x_values, series = generate_figure("fig6a", ops=20, seed=1)
        assert x_label == "metric"
        assert set(series) == {
            "dqvl", "majority", "primary_backup", "rowa", "rowa_async",
            "dqvl_tuned",
        }


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_protocols_command(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "dqvl" in out and "fig6a" in out

    def test_figure_command_table(self, capsys):
        assert main(["figure", "fig9a"]) == 0
        out = capsys.readouterr().out
        assert "write_ratio" in out
        assert "dqvl" in out

    def test_figure_command_json(self, capsys):
        assert main(["figure", "fig8b", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure"] == "fig8b"
        assert "dqvl" in payload["series"]

    def test_run_command_json(self, capsys):
        assert main([
            "run", "--protocol", "rowa", "--ops", "20",
            "--write-ratio", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol"] == "rowa"
        assert payload["requests"] == 60

    def test_run_command_table(self, capsys):
        assert main(["run", "--protocol", "rowa_async", "--ops", "10"]) == 0
        assert "rowa_async" in capsys.readouterr().out

    def test_run_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "paxos"])

    def test_availability_command(self, capsys):
        assert main([
            "availability", "--protocol", "rowa_async",
            "--epochs", "20", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.0 <= payload["measured_unavailability"] <= 1.0
        assert payload["requests"] > 0


class TestReport:
    def test_report_analytic_subset(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([
            "report", "--figures", "fig8a", "fig9b",
            "--out", str(out), "--no-charts",
        ]) == 0
        text = out.read_text()
        assert "# Dual-Quorum Replication" in text
        assert "## fig8a" in text and "## fig9b" in text
        assert "## fig6a" not in text

    def test_report_with_charts(self, tmp_path):
        out = tmp_path / "report.md"
        from repro.harness.report import generate_report

        path = generate_report(
            out_path=str(out), figures=["fig9a"], charts=True
        )
        text = open(path).read()
        assert "write_ratio" in text
        assert "o dqvl" in text  # the chart legend

    def test_report_unknown_figure(self):
        from repro.harness.report import generate_report

        with pytest.raises(KeyError):
            generate_report(figures=["fig0x"])


class TestSweep:
    def test_sweep_table(self, capsys):
        assert main([
            "sweep", "--protocol", "rowa", "--write-ratios", "0.0", "0.5",
            "--localities", "1.0", "--ops", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "rowa" in out and "0.5" in out

    def test_sweep_json_grid_shape(self, capsys):
        assert main([
            "sweep", "--protocol", "rowa_async",
            "--write-ratios", "0.0", "0.3",
            "--localities", "0.5", "1.0",
            "--ops", "15", "--json", "--metric", "read",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "read"
        assert len(payload["grid"]) == 2
        assert all(len(v) == 2 for v in payload["grid"].values())

    def test_sweep_msgs_metric(self, capsys):
        assert main([
            "sweep", "--protocol", "majority", "--write-ratios", "0.2",
            "--localities", "1.0", "--ops", "15", "--metric", "msgs",
        ]) == 0
        assert "msgs" in capsys.readouterr().out


class TestTrace:
    def test_p50_p99_in_run_payload(self, capsys):
        assert main([
            "run", "--protocol", "rowa", "--ops", "15", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["p50_ms"] <= payload["p95_ms"] <= payload["p99_ms"]

    def test_trace_chrome_to_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--ops", "5", "--clients", "1", "--edges", "3",
            "--export", "chrome", "--out", str(out), "--top-slow", "2",
        ]) == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        err = capsys.readouterr().err
        assert "perfetto" in err
        assert "slowest operations" in err

    def test_trace_jsonl_to_stdout(self, capsys):
        assert main([
            "trace", "--ops", "5", "--clients", "1", "--edges", "3",
            "--export", "jsonl", "--span-filter", "op",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "meta"
        assert all(r["category"] in ("op", "qrpc", "lease", "inval")
                   for r in records if r["record"] == "span")

    def test_trace_partition_annotates_faults(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--ops", "5", "--clients", "1", "--edges", "3",
            "--partition", "100:200", "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        faults = [e for e in doc["traceEvents"] if e.get("cat") == "fault"]
        assert len(faults) == 1
        assert faults[0]["name"] == "partition"
        assert faults[0]["ts"] == 100_000.0

    def test_trace_rejects_bad_partition_spec(self, capsys):
        assert main(["trace", "--partition", "nope"]) == 2
        assert "START:DUR" in capsys.readouterr().err


class TestWhy:
    def test_why_smoke_with_conservation(self, capsys):
        assert main([
            "why", "--ops", "8", "--clients", "2", "--edges", "3",
            "--check-conservation",
        ]) == 0
        out = capsys.readouterr().out
        assert "conservation check passed" in out
        assert "slowest operations" in out
        assert "latency budget" in out
        assert "quorum_wait" in out or "net_request" in out

    def test_why_writes_json_artifacts(self, tmp_path, capsys):
        top = tmp_path / "top.json"
        budget = tmp_path / "budget.json"
        assert main([
            "why", "--ops", "8", "--clients", "2", "--edges", "3",
            "--json", str(top), "--budget-out", str(budget),
        ]) == 0
        top_doc = json.loads(top.read_text())
        assert top_doc["version"] == 1 and top_doc["ops"]
        budget_doc = json.loads(budget.read_text())
        assert any("total" in phases for phases in budget_doc.values())
        err = capsys.readouterr().err
        assert "top-slow attribution written" in err
        assert "budget table written" in err

    def test_why_rejects_bad_partition_spec(self, capsys):
        assert main(["why", "--partition", "nope"]) == 2
        assert "START:DUR" in capsys.readouterr().err

    def test_why_gate_record_gate_cycle(self, tmp_path, capsys):
        history = tmp_path / "hist.json"
        # empty history: nothing to regress against
        assert main(["why", "--gate", "--history", str(history)]) == 0
        assert "no phase regressions" in capsys.readouterr().out
        # record a point, then gate against it: same code, no regression
        assert main(["why", "--record", "--history", str(history)]) == 0
        assert history.exists()
        assert main(["why", "--gate", "--history", str(history)]) == 0
        assert "no phase regressions" in capsys.readouterr().out

    def test_why_gate_fails_on_regression(self, tmp_path, capsys):
        history = tmp_path / "hist.json"
        # a baseline claiming near-zero latency: any real measurement
        # regresses against it
        history.write_text(json.dumps({
            "version": 1,
            "points": [{"workloads": {
                "dqvl": {"write": {"total": 0.001}},
            }}],
        }))
        assert main(["why", "--gate", "--history", str(history)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "dqvl/write/total" in out


class TestTraceAttribution:
    def test_trace_top_slow_json_deterministic(self, tmp_path, capsys):
        def run(path):
            assert main([
                "trace", "--ops", "5", "--clients", "1", "--edges", "3",
                "--export", "chrome", "--out", str(tmp_path / "t.json"),
                "--top-slow-json", str(path),
            ]) == 0
            capsys.readouterr()
            return path.read_text()

        first = run(tmp_path / "a.json")
        second = run(tmp_path / "b.json")
        assert first == second
        doc = json.loads(first)
        assert doc["ops"] and all("phases" in op for op in doc["ops"])

    def test_trace_attribution_flag_prints_phases(self, tmp_path, capsys):
        assert main([
            "trace", "--ops", "5", "--clients", "1", "--edges", "3",
            "--export", "chrome", "--out", str(tmp_path / "t.json"),
            "--attribution",
        ]) == 0
        err = capsys.readouterr().err
        assert "ms" in err
        assert any(p in err for p in ("net_request", "quorum_wait", "server"))
