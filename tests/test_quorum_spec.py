"""Tests for the declarative QuorumSpec API (parse/serialise/build)."""

import pytest

from repro.core.config import DqvlConfig
from repro.quorum import (
    DEFAULT_IQS_SPEC,
    DEFAULT_OQS_SPEC,
    GridQuorumSystem,
    MajorityQuorumSystem,
    QuorumSpec,
    RowaQuorumSystem,
    SingleNodeQuorumSystem,
    WeightedVotingSystem,
)


def nodes(n):
    return [f"n{i}" for i in range(n)]


ROUND_TRIP_SPECS = [
    QuorumSpec(kind="majority"),
    QuorumSpec(kind="majority", read_size=2, write_size=4),
    QuorumSpec(kind="grid"),
    QuorumSpec(kind="grid", rows=3, cols=3),
    QuorumSpec(kind="rowa"),
    QuorumSpec(kind="single"),
    QuorumSpec(kind="weighted", votes=(3, 1, 1, 1, 1),
               read_threshold=4, write_threshold=4),
]


class TestRoundTrips:
    @pytest.mark.parametrize("spec", ROUND_TRIP_SPECS, ids=str)
    def test_string_round_trip(self, spec):
        assert QuorumSpec.parse(str(spec)) == spec

    @pytest.mark.parametrize("spec", ROUND_TRIP_SPECS, ids=str)
    def test_json_round_trip(self, spec):
        assert QuorumSpec.from_json(spec.to_json()) == spec

    def test_parse_accepts_spec_and_dict(self):
        spec = QuorumSpec(kind="grid", rows=3, cols=3)
        assert QuorumSpec.parse(spec) is spec
        assert QuorumSpec.parse(spec.to_json()) == spec

    def test_canonical_strings(self):
        assert str(QuorumSpec(kind="majority")) == "majority"
        assert (
            str(QuorumSpec(kind="majority", read_size=2, write_size=4))
            == "majority:r=2,w=4"
        )
        assert str(QuorumSpec(kind="grid", rows=3, cols=3)) == "grid:3x3"
        assert str(QuorumSpec(kind="rowa")) == "rowa"


class TestBuild:
    def test_default_specs_match_seed_construction(self):
        iqs = DEFAULT_IQS_SPEC.build(nodes(5))
        seed = MajorityQuorumSystem(nodes(5))
        assert isinstance(iqs, MajorityQuorumSystem)
        assert iqs.read_quorum_size == seed.read_quorum_size
        assert iqs.write_quorum_size == seed.write_quorum_size
        oqs = DEFAULT_OQS_SPEC.build(nodes(5))
        assert isinstance(oqs, RowaQuorumSystem)

    def test_each_kind_builds_the_right_system(self):
        assert isinstance(
            QuorumSpec.parse("majority:r=2,w=4").build(nodes(5)),
            MajorityQuorumSystem,
        )
        assert isinstance(
            QuorumSpec.parse("grid:3x2").build(nodes(6)), GridQuorumSystem
        )
        assert isinstance(
            QuorumSpec.parse("single").build(nodes(3)), SingleNodeQuorumSystem
        )
        weighted = QuorumSpec.parse("weighted:votes=3-1-1,r=3,w=3")
        assert isinstance(weighted.build(nodes(3)), WeightedVotingSystem)

    def test_grid_without_dims_is_near_square(self):
        grid = QuorumSpec(kind="grid").build(nodes(9))
        assert isinstance(grid, GridQuorumSystem)
        assert (grid.rows, grid.cols) == (3, 3)


class TestRejection:
    def test_non_intersecting_majority_rejected_at_build(self):
        spec = QuorumSpec(kind="majority", read_size=2, write_size=3)
        with pytest.raises(ValueError, match="intersection"):
            spec.build(nodes(9))

    def test_grid_dims_must_fit_node_count(self):
        with pytest.raises(ValueError):
            QuorumSpec(kind="grid", rows=2, cols=2).build(nodes(9))

    def test_zero_weight_voters_rejected(self):
        with pytest.raises(ValueError):
            QuorumSpec(
                kind="weighted", votes=(0, 1, 1),
                read_threshold=2, write_threshold=2,
            )

    def test_weighted_thresholds_must_intersect(self):
        with pytest.raises(ValueError):
            QuorumSpec(
                kind="weighted", votes=(1, 1, 1),
                read_threshold=1, write_threshold=1,
            )

    def test_weighted_votes_must_match_node_count(self):
        spec = QuorumSpec(
            kind="weighted", votes=(2, 1, 1),
            read_threshold=3, write_threshold=2,
        )
        with pytest.raises(ValueError):
            spec.build(nodes(5))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            QuorumSpec(kind="paxos")
        with pytest.raises(ValueError):
            QuorumSpec.parse("paxos")

    def test_foreign_params_rejected(self):
        with pytest.raises(ValueError):
            QuorumSpec(kind="rowa", read_size=1)
        with pytest.raises(ValueError):
            QuorumSpec.parse("grid:r=2,w=2")
        with pytest.raises(ValueError):
            QuorumSpec.from_json({"kind": "majority", "bogus": 1})

    def test_empty_node_list_rejected(self):
        with pytest.raises(ValueError):
            QuorumSpec(kind="rowa").build([])


class TestConfigIntegration:
    def test_dqvl_config_normalises_spec_strings(self):
        config = DqvlConfig(iqs_spec="majority:r=2,w=4", oqs_spec="rowa")
        assert config.iqs_spec == QuorumSpec(
            kind="majority", read_size=2, write_size=4
        )
        assert config.oqs_spec == QuorumSpec(kind="rowa")

    def test_cluster_uses_specs(self):
        from repro.core.cluster import build_dqvl_cluster
        from repro.sim.kernel import Simulator
        from repro.sim.network import ConstantDelay, Network

        sim = Simulator(seed=1)
        net = Network(sim, ConstantDelay(5.0))
        cluster = build_dqvl_cluster(
            sim, net,
            [f"iqs{i}" for i in range(5)],
            [f"oqs{i}" for i in range(5)],
            DqvlConfig(iqs_spec="majority:r=2,w=4"),
        )
        assert cluster.iqs_system.read_quorum_size == 2
        assert cluster.iqs_system.write_quorum_size == 4
        assert isinstance(cluster.oqs_system, RowaQuorumSystem)
