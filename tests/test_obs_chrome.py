"""Chrome trace exporter under chaos: fault annotation tracks,
cross-node flow arrows, and the byte-identity (golden double-run)
contract while a partition is in force.

Complements tests/test_obs.py: that file covers the exporter on toy
tracers and fault-free runs; this one drives traced experiments through
a fault schedule so spans genuinely straddle the partition window (the
QRPC retries it forces are exactly the traffic whose flow arrows and
round spans must still serialise deterministically).
"""

import json

import pytest

from repro.chaos.faults import Fault, FaultSchedule
from repro.harness.experiment import ExperimentConfig, run_response_time
from repro.obs import spans_to_chrome, spans_to_jsonl


def _partition_schedule(start=40.0, duration=400.0):
    """Cut the first OQS edge off from the inner quorum for *duration*
    ms — long enough that in-flight renewals and writes retry inside
    the window."""
    return FaultSchedule([
        Fault.make(
            "partition", start=start, duration=duration,
            groups=(("oqs0",), ("iqs0", "iqs1", "iqs2")),
        ),
    ])


def _partitioned_run(seed=11):
    config = ExperimentConfig(
        protocol="dqvl", write_ratio=0.3, ops_per_client=8, warmup_ops=1,
        num_clients=2, num_edges=3, seed=seed, trace=True,
        fault_schedule=_partition_schedule(),
    )
    return run_response_time(config)


@pytest.fixture(scope="module")
def chrome_doc():
    result = _partitioned_run()
    faults = result.config.fault_schedule
    return json.loads(spans_to_chrome(result.obs.tracer, faults=faults))


def _events(doc, **match):
    return [
        e for e in doc["traceEvents"]
        if all(e.get(k) == v for k, v in match.items())
    ]


class TestFaultAnnotationTrack:
    def test_chaos_process_row_present(self, chrome_doc):
        names = _events(chrome_doc, ph="M", name="process_name")
        assert {"simulation", "chaos"} <= {
            m["args"]["name"] for m in names
        }

    def test_fault_window_matches_schedule(self, chrome_doc):
        windows = _events(chrome_doc, cat="fault")
        assert len(windows) == 1
        (w,) = windows
        assert w["name"] == "partition"
        assert w["ph"] == "X"
        assert w["ts"] == 40_000 and w["dur"] == 400_000  # microseconds
        assert ["oqs0"] in w["args"]["groups"]

    def test_fault_track_has_its_own_thread_name(self, chrome_doc):
        chaos_pid = _events(chrome_doc, cat="fault")[0]["pid"]
        sim_pid = _events(chrome_doc, cat="op")[0]["pid"]
        assert chaos_pid != sim_pid
        thread_names = [
            m["args"]["name"]
            for m in _events(chrome_doc, ph="M", name="thread_name")
            if m["pid"] == chaos_pid
        ]
        assert thread_names == ["partition"]


class TestCrossNodeFlowArrows:
    def test_rounds_flow_from_their_ops(self, chrome_doc):
        starts = _events(chrome_doc, ph="s", cat="flow")
        finishes = _events(chrome_doc, ph="f", cat="flow")
        assert starts and len(starts) == len(finishes)
        # arrows pair up by id, start on the parent's thread and land on
        # the child's
        by_id = {e["id"]: e for e in starts}
        crossings = 0
        for fin in finishes:
            start = by_id[fin["id"]]
            assert start["ts"] == fin["ts"]
            if start["tid"] != fin["tid"]:
                crossings += 1
        # client ops live on client nodes, rounds/renewals on servers —
        # at least one arrow must cross threads (i.e. nodes)
        assert crossings > 0

    def test_spans_straddle_the_partition_window(self, chrome_doc):
        """The schedule is long enough that some op span overlaps the
        fault window — the scenario the annotation track explains."""
        window = _events(chrome_doc, cat="fault")[0]
        w_start, w_end = window["ts"], window["ts"] + window["dur"]
        ops = _events(chrome_doc, cat="op", ph="X")
        overlapping = [
            op for op in ops
            if op["ts"] < w_end and op["ts"] + op["dur"] > w_start
        ]
        assert overlapping, "no op span overlaps the partition window"

    def test_retry_rounds_recorded_inside_window(self, chrome_doc):
        rounds = _events(chrome_doc, cat="qrpc", ph="X")
        retries = [r for r in rounds if r["args"].get("attempt", 1) > 1]
        assert retries, "partition produced no retry rounds"


class TestGoldenDoubleRun:
    def test_same_seed_chrome_and_jsonl_byte_identical(self):
        def export(_):
            result = _partitioned_run()
            faults = result.config.fault_schedule
            obs = result.obs
            return (
                spans_to_chrome(obs.tracer, faults=faults),
                spans_to_jsonl(obs.tracer, faults=faults,
                               metrics=obs.metrics),
            )

        first, second = export(0), export(1)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_no_raw_message_ids_leak_into_args(self, chrome_doc):
        """Densified message ids are per-trace ordinals, so their json
        values stay small even late in the run (raw ids are global and
        would differ between runs that share a process)."""
        msg_ids = [
            e["args"]["msg"]
            for e in _events(chrome_doc, cat="event")
            if "msg" in e.get("args", {})
        ]
        assert msg_ids
        assert sorted(set(msg_ids))[0] == 1
        assert max(msg_ids) <= len(msg_ids)
