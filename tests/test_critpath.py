"""Unit tests for the latency attribution engine (repro.obs.critpath,
repro.obs.budget) and the histogram summary primitives backing it.

The engine's contract (DESIGN.md §15): attribution is a pure function
of the trace — identical seeds give byte-identical attribution JSON —
and per-op phase conservation holds by construction: the extracted
segments tile [op.start, op.end] exactly, so the phase sums match the
measured latency to within float error.
"""

import json

import pytest

from repro.harness.experiment import ExperimentConfig, run_response_time
from repro.obs import (
    PHASES,
    LatencyBudget,
    attribute_op,
    attribute_trace,
    build_index,
    format_attribution,
    format_budget,
    latency_budget,
    top_slow_json,
)
from repro.obs.metrics import Histogram


def _traced(protocol="dqvl", seed=0, write_ratio=0.2, ops=20, locality=1.0):
    config = ExperimentConfig(
        protocol=protocol, write_ratio=write_ratio, locality=locality,
        ops_per_client=ops, warmup_ops=2, num_clients=2, num_edges=3,
        seed=seed, trace=True,
    )
    return run_response_time(config)


@pytest.fixture(scope="module")
def dqvl_run():
    # 60 ops/client: enough writes that at least one invalidation goes
    # through (rather than being suppressed) and shows up on a path.
    return _traced(ops=60)


class TestConservation:
    def test_every_op_conserves_within_1e6(self, dqvl_run):
        atts = attribute_trace(dqvl_run.obs.tracer)
        assert atts, "traced run produced no attributable ops"
        for att in atts:
            assert att.conservation_error <= 1e-6, att.op.name

    def test_segments_tile_the_op_interval(self, dqvl_run):
        for att in attribute_trace(dqvl_run.obs.tracer):
            cursor = att.op.start
            for seg in att.segments:
                assert seg.start == pytest.approx(cursor, abs=1e-9)
                assert seg.end >= seg.start
                cursor = seg.end
            assert cursor == pytest.approx(att.end, abs=1e-9)

    def test_phases_dict_covers_taxonomy_with_zeros(self, dqvl_run):
        att = attribute_trace(dqvl_run.obs.tracer)[0]
        assert tuple(att.phases) == PHASES
        assert sum(att.phases.values()) == pytest.approx(att.total)

    def test_conservation_across_protocols(self):
        for protocol in ("majority", "primary_backup", "rowa", "rowa_async"):
            result = _traced(protocol=protocol, ops=8)
            atts = attribute_trace(result.obs.tracer)
            assert atts, protocol
            assert max(a.conservation_error for a in atts) <= 1e-6, protocol


class TestDqvlStory:
    """The acceptance criterion: local hits pay ~no quorum wait, writes
    and renewal misses do."""

    def test_hits_have_no_quorum_wait_or_lease_time(self, dqvl_run):
        atts = attribute_trace(dqvl_run.obs.tracer)
        hits = [a for a in atts if a.group_key() == "read[hit]"]
        assert hits
        for att in hits:
            assert att.phases["quorum_wait"] == pytest.approx(0.0)
            assert att.phases["lease"] == pytest.approx(0.0)

    def test_writes_carry_quorum_wait_and_inval(self, dqvl_run):
        atts = attribute_trace(dqvl_run.obs.tracer)
        writes = [a for a in atts if a.group_key() == "write"]
        assert writes
        assert sum(a.phases["quorum_wait"] for a in writes) > 0
        assert sum(a.phases["inval"] for a in writes) > 0

    def test_misses_carry_the_lease_detour(self):
        result = _traced(locality=0.5, ops=30)
        atts = attribute_trace(result.obs.tracer)
        misses = [a for a in atts if a.group_key() == "read[miss]"]
        assert misses
        assert sum(a.phases["lease"] for a in misses) > 0


class TestDeterminism:
    def test_same_seed_attributions_identical(self):
        def snapshot():
            tracer = _traced(seed=7, ops=8).obs.tracer
            return json.dumps(
                [a.to_json_obj() for a in attribute_trace(tracer)],
                sort_keys=True,
            )

        assert snapshot() == snapshot()

    def test_same_seed_top_slow_json_byte_identical(self):
        first = top_slow_json(_traced(seed=7, ops=8).obs.tracer, 5)
        second = top_slow_json(_traced(seed=7, ops=8).obs.tracer, 5)
        assert first == second

    def test_different_seeds_differ(self):
        a = top_slow_json(_traced(seed=7, ops=8).obs.tracer, 5)
        b = top_slow_json(_traced(seed=8, ops=8).obs.tracer, 5)
        assert a != b

    def test_top_slow_json_is_canonical(self, dqvl_run):
        text = top_slow_json(dqvl_run.obs.tracer, 3)
        doc = json.loads(text)
        assert text == json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        ) + "\n"
        assert len(doc["ops"]) == 3
        for op in doc["ops"]:
            assert set(PHASES) == set(op["phases"])


class TestTracingOff:
    def test_untraced_run_carries_no_observability(self):
        config = ExperimentConfig(
            protocol="dqvl", write_ratio=0.2, ops_per_client=5,
            warmup_ops=1, num_clients=1, num_edges=3, seed=0,
        )
        assert run_response_time(config).obs is None

    def test_tracing_does_not_perturb_the_simulation(self):
        """Instrumentation is additive observation: the op latencies a
        traced run measures equal the untraced run's, op for op."""
        def latencies(trace):
            config = ExperimentConfig(
                protocol="dqvl", write_ratio=0.2, ops_per_client=8,
                warmup_ops=1, num_clients=2, num_edges=3, seed=5,
                trace=trace,
            )
            result = run_response_time(config)
            return [(op.kind, op.key, op.latency) for op in result.history.ops]

        assert latencies(False) == latencies(True)


class TestFormatting:
    def test_format_attribution_mentions_phases_and_path(self, dqvl_run):
        atts = attribute_trace(dqvl_run.obs.tracer)
        writes = [a for a in atts if a.group_key() == "write"]
        text = format_attribution(writes[0])
        assert "write" in text
        assert "quorum_wait" in text
        assert "ms" in text

    def test_attribute_op_matches_attribute_trace(self, dqvl_run):
        tracer = dqvl_run.obs.tracer
        index = build_index(tracer)
        ops = index.root_ops()
        direct = [attribute_op(index, op).to_json_obj() for op in ops]
        batch = [a.to_json_obj() for a in attribute_trace(tracer)]
        assert direct == batch


class TestBudget:
    def test_budget_groups_and_phases(self, dqvl_run):
        budget = dqvl_run.obs.latency_budget()
        groups = budget.groups
        assert "read[hit]" in groups and "write" in groups
        for phases in groups.values():
            assert "total" in phases
            assert set(PHASES) <= set(phases)

    def test_budget_conserves_means(self, dqvl_run):
        for group, phases in dqvl_run.obs.latency_budget().groups.items():
            phase_sum = sum(
                h.mean for name, h in phases.items() if name != "total"
            )
            assert phase_sum == pytest.approx(
                phases["total"].mean, abs=1e-6
            ), group

    def test_budget_json_deterministic_and_sorted(self, dqvl_run):
        budget = dqvl_run.obs.latency_budget()
        text = budget.to_json()
        doc = json.loads(text)
        assert text == json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        ) + "\n"
        assert list(doc) == sorted(doc)
        assert budget.to_json() == latency_budget(
            attribute_trace(dqvl_run.obs.tracer)
        ).to_json()

    def test_format_budget_skips_empty_phases(self, dqvl_run):
        text = format_budget(dqvl_run.obs.latency_budget(), title="t")
        assert "t" in text and "total" in text
        # hits never touch the degraded path in a fault-free run
        hit_block = text.split("read[hit]")[1].split("write")[0]
        assert "degraded" not in hit_block

    def test_empty_budget(self):
        budget = LatencyBudget()
        assert budget.groups == {}
        assert budget.to_json() == "{}\n"


class TestHistogramSummary:
    def test_interpolated_quantile_within_bucket_width(self):
        hist = Histogram((1.0, 2.0, 4.0, 8.0))
        values = [0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 5.0, 7.0, 7.5, 9.0]
        for v in values:
            hist.observe(v)
        exact = sorted(values)
        for q in (0.5, 0.95, 0.99):
            rank = max(1, int(q * len(values) + 0.5))
            err = abs(hist.quantile_interpolated(q) - exact[rank - 1])
            assert err <= 4.0  # widest finite bucket

    def test_interpolation_refines_the_upper_bound(self):
        hist = Histogram((10.0, 20.0))
        for v in (11.0, 12.0, 13.0, 14.0):
            hist.observe(v)
        # upper-bound quantile snaps to 20; interpolation stays inside
        assert hist.quantile(0.5) == 20.0
        assert 10.0 < hist.quantile_interpolated(0.5) < 20.0

    def test_overflow_bucket_uses_observed_max(self):
        hist = Histogram((1.0,))
        hist.observe(5.0)
        assert hist.quantile_interpolated(0.99) <= 5.0

    def test_summary_shape(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        s = hist.summary()
        assert set(s) == {"count", "sum", "mean", "max", "p50", "p95", "p99"}
        assert s["count"] == 2
        assert s["sum"] == pytest.approx(5.5)
        assert s["mean"] == pytest.approx(2.75)
        assert s["max"] == 5.0

    def test_empty_summary(self):
        s = Histogram((1.0,)).summary()
        assert s["count"] == 0
        assert s["p50"] == 0.0
