"""Tests for the schedule-aware liveness oracles (repro.mc.liveness).

The two seeded-livelock weakeners have committed corpus witnesses
(``tests/mc_corpus/``, replayed by ``test_mc_corpus.py``); here the
oracles themselves are exercised: the retry-rounds bound math, the
healthy-run silence guarantee, in-budget detection of both livelock
weakeners, and the ExploreResult serialisation the corpus rides on.
"""

from types import SimpleNamespace

import pytest

from repro.mc import ExploreResult, McRunConfig, explore, run_schedule
from repro.mc.liveness import MIN_GRANT_SHIPS, LivenessMonitor, rounds_bound
from repro.sim.kernel import Simulator


class TestRoundsBound:
    def test_two_attempt_bound_is_exact(self):
        # 2 * (400 + 800) + lease 400 + deferral 2*1*650 + pad 1000
        assert rounds_bound(2) == pytest.approx(5_100.0)

    def test_backoff_caps_at_max_timeout(self):
        uncapped = rounds_bound(6)
        # timeouts: 400 800 1600 3200 6400 then 12800 -> capped to 6400
        assert uncapped == pytest.approx(
            2 * (400 + 800 + 1600 + 3200 + 6400 + 6400)
            + 400 + 2 * 650 + 1000
        )

    def test_bound_grows_with_attempts(self):
        assert rounds_bound(1) < rounds_bound(2) < rounds_bound(3)


class TestRoundsOracle:
    def _monitor(self):
        return LivenessMonitor(Simulator(seed=0))

    def _op(self, span_ms):
        return SimpleNamespace(kind="read", key="k0", start=0.0,
                               end=span_ms, client="appsc0")

    def test_op_past_bound_is_flagged(self):
        monitor = self._monitor()
        slow = self._op(rounds_bound(2) + 1.0)
        monitor.finalize([slow], client_max_attempts=2)
        report = monitor.report()
        assert [v["type"] for v in report] == ["liveness_rounds"]
        assert "retried past its budget" in report[0]["detail"]

    def test_op_within_bound_is_silent(self):
        monitor = self._monitor()
        monitor.finalize([self._op(rounds_bound(2) - 1.0)],
                         client_max_attempts=2)
        assert monitor.report() == []

    def test_unbounded_retries_skip_the_check(self):
        monitor = self._monitor()
        monitor.finalize([self._op(10_000_000.0)], client_max_attempts=None)
        assert monitor.report() == []


class TestOraclesEndToEnd:
    def test_healthy_canonical_run_is_silent(self):
        result = run_schedule(McRunConfig())
        assert result.violations == []

    def test_keeper_livelock_caught_in_budget(self):
        result = explore(
            McRunConfig(weaken="keeper_abandons_lapse"),
            strategy="walk", budget=20, shrink=False,
        )
        assert not result.ok
        assert "liveness_keeper" in result.witness.expected_types

    def test_inval_livelock_caught_in_budget(self):
        result = explore(
            McRunConfig(weaken="drop_vl_acks"),
            strategy="walk", budget=20, shrink=False,
        )
        assert not result.ok
        assert "liveness_inval" in result.witness.expected_types
        detail = next(
            v["detail"] for v in result.witness.violations
            if v["type"] == "liveness_inval"
        )
        assert f">= {MIN_GRANT_SHIPS}" in detail


class TestExploreResultSerialisation:
    def test_clean_result_round_trips(self):
        result = explore(McRunConfig(), strategy="walk", budget=3)
        back = ExploreResult.from_json(result.to_json())
        assert back.config == result.config
        assert back.runs == result.runs and back.ok
        assert back.witness is None and back.shrunk is None

    def test_witness_round_trip_reexecutes_and_revalidates(self):
        result = explore(
            McRunConfig(weaken="keeper_abandons_lapse"),
            strategy="walk", budget=20,
        )
        assert not result.ok
        back = ExploreResult.from_json(result.to_json())
        # deserialisation re-runs the stored choices, so the rebuilt
        # witness carries freshly observed (not stored) violations
        assert back.witness is not None and back.witness.violations
        assert back.shrunk.expected_types == result.shrunk.expected_types
        assert back.shrunk.trace_text == result.shrunk.trace_text
        assert back.pruned == result.pruned
