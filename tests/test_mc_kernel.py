"""Kernel two-lane merge order and the ScheduleController hook.

Covers the satellite task "test coverage for the kernel two-lane merge
at equal timestamps": ready-lane entries and heap timers due at the
same instant execute in global sequence order, including the
``call_soon``-from-a-timer-callback case — driven both directly (fast
path, no controller) and through a :class:`ScheduleController` that
tries every merge order (controlled path).
"""

import itertools

import pytest

from repro.sim.kernel import ScheduleController, SimulationError, Simulator


class ForcedOrder(ScheduleController):
    """Replays a fixed choice list; canonical 0 beyond it."""

    def __init__(self, choices=()):
        self.choices = list(choices)
        self.asked = []  # the n of every choice point, in order
        self._i = 0

    def choose_event(self, n):
        self.asked.append(n)
        choice = self.choices[self._i] if self._i < len(self.choices) else 0
        self._i += 1
        return choice


class TestFastPathMergeOrder:
    """The uncontrolled loop: global (time, seq) order across lanes."""

    def test_same_instant_timers_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for name in ("t1", "t2", "t3"):
            sim.schedule(5.0, log.append, name)
        sim.run()
        assert log == ["t1", "t2", "t3"]

    def test_call_soon_from_timer_callback_runs_after_due_timers(self):
        """A call_soon issued *while executing* a timer lands behind
        every other timer already due at that instant: the clock
        advance moves all due timers onto the ready lane first."""
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: (log.append("t1"),
                                   sim.call_soon(log.append, "soon")))
        sim.schedule(5.0, log.append, "t2")
        sim.run()
        assert log == ["t1", "t2", "soon"]

    def test_zero_delay_schedule_interleaves_with_call_soon_by_sequence(self):
        sim = Simulator()
        log = []
        sim.call_soon(log.append, "a")
        sim.schedule(0.0, log.append, "b")
        sim.call_soon(log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ready_lane_drains_before_clock_advances(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, ("timer", 5.0))

        def seed():
            log.append(("soon", sim.now))
            sim.call_soon(log.append, ("soon2", sim.now))

        sim.call_soon(seed)
        sim.run()
        assert log == [("soon", 0.0), ("soon2", 0.0), ("timer", 5.0)]


class TestControlledPath:
    """The same orderings through the ScheduleController hook."""

    def _three_timer_sim(self):
        sim = Simulator()
        log = []
        for name in ("t1", "t2", "t3"):
            sim.schedule(5.0, log.append, name)
        return sim, log

    def test_base_controller_reproduces_canonical_order(self):
        """choice 0 everywhere == the fast path's golden order."""
        sim, log = self._three_timer_sim()
        sim.controller = ScheduleController()
        sim.run()
        assert log == ["t1", "t2", "t3"]

    def test_every_merge_order_is_reachable(self):
        """Choice lists enumerate exactly the 3! permutations of a
        same-instant slot (first pick among 3, then among 2)."""
        orders = set()
        for a, b in itertools.product(range(3), range(2)):
            sim, log = self._three_timer_sim()
            sim.controller = ForcedOrder([a, b])
            sim.run()
            orders.add(tuple(log))
        assert orders == set(itertools.permutations(["t1", "t2", "t3"]))

    def test_mixed_lanes_offered_as_one_slot(self):
        """Ready-lane work spawned by a timer joins the slot with the
        remaining due timers: the controller can run it first, reversing
        the canonical order."""
        def build(choices):
            sim = Simulator()
            log = []
            sim.schedule(5.0, lambda: (log.append("t1"),
                                       sim.call_soon(log.append, "soon")))
            sim.schedule(5.0, log.append, "t2")
            ctl = ForcedOrder(choices)
            sim.controller = ctl
            sim.run()
            return log, ctl

        # Canonical: t1 first (seq order), then t2, then the call_soon.
        log, ctl = build([])
        assert log == ["t1", "t2", "soon"]
        # After t1 runs, the slot holds [t2, soon]; choosing index 1
        # flips them — an ordering the fast path can never produce.
        log, ctl = build([0, 1])
        assert log == ["t1", "soon", "t2"]
        assert ctl.asked == [2, 2]

    def test_controller_only_consulted_with_real_choice(self):
        """Singleton slots never reach the controller, so a canonical
        run's decision count == its same-instant contention count."""
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        ctl = ForcedOrder()
        sim.controller = ctl
        sim.run()
        assert log == ["a", "b"]
        assert ctl.asked == []

    def test_out_of_range_choice_clamps_to_canonical(self):
        sim, log = self._three_timer_sim()
        sim.controller = ForcedOrder([99])
        sim.run()
        assert log[0] == "t1"

    def test_cancelled_timers_are_not_offered(self):
        sim = Simulator()
        log = []
        t1 = sim.schedule(5.0, log.append, "t1")
        sim.schedule(5.0, log.append, "t2")
        sim.schedule(5.0, log.append, "t3")
        t1.cancel()
        ctl = ForcedOrder()
        sim.controller = ctl
        sim.run()
        assert log == ["t2", "t3"]
        assert ctl.asked == [2]

    def test_cancellation_from_within_the_slot(self):
        """An event that cancels a same-instant sibling removes it from
        the remaining choices."""
        sim = Simulator()
        log = []
        holder = {}
        sim.schedule(5.0, lambda: holder["t2"].cancel())
        holder["t2"] = sim.schedule(5.0, log.append, "t2")
        sim.schedule(5.0, log.append, "t3")
        ctl = ForcedOrder()
        sim.controller = ctl
        sim.run()
        assert log == ["t3"]
        assert ctl.asked == [3]  # the purge happens before the next ask

    def test_until_and_max_events_respected(self):
        sim = Simulator()
        log = []
        for when in (1.0, 2.0, 3.0):
            sim.schedule(when, log.append, when)
        sim.controller = ScheduleController()
        assert sim.run(until=2.0) == 2.0
        assert log == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run()
        assert log == [1.0, 2.0, 3.0]

        sim2 = Simulator()
        sim2.controller = ScheduleController()
        for _ in range(5):
            sim2.call_soon(log.append, "x")
        sim2.run(max_events=2)
        assert log.count("x") == 2
        assert sim2.events_processed == 2

    def test_sleep_and_processes_work_under_controller(self):
        """Generator processes (sleep entries carry no Timer) run fine
        on the controlled path."""
        sim = Simulator()
        sim.controller = ScheduleController()
        log = []

        def proc():
            yield sim.sleep(5.0)
            log.append(sim.now)
            yield sim.sleep(0.0)
            log.append("after-zero-sleep")

        sim.spawn(proc())
        sim.run()
        assert log == [5.0, "after-zero-sleep"]

    def test_golden_trace_matches_fast_path(self):
        """A busier mixed workload produces the identical event order
        with and without the base controller installed."""
        def run(controlled):
            sim = Simulator(seed=3)
            log = []

            def proc(name, delay):
                yield sim.sleep(delay)
                log.append((name, sim.now))
                sim.call_soon(log.append, (name + "-soon", sim.now))
                yield sim.sleep(delay)
                log.append((name + "-end", sim.now))

            for i in range(4):
                sim.spawn(proc(f"p{i}", float(1 + i % 2)))
                sim.schedule(float(1 + i), log.append, (f"t{i}", float(1 + i)))
            if controlled:
                sim.controller = ScheduleController()
            sim.run()
            return log

        assert run(False) == run(True)
