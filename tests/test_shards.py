"""Sharded scenario execution (repro.harness.shards).

The load-bearing property is the determinism contract: the merged
result is a pure function of ``(base config, num_groups)`` and never of
the worker count.  These tests run small but real simulations.
"""

import dataclasses

import pytest

from repro.harness import ExperimentConfig
from repro.harness.shards import (
    ShardedResult,
    merge_points,
    run_sharded,
    shard_configs,
)


def _base(**kw):
    kw.setdefault("protocol", "rowa")
    kw.setdefault("num_clients", 6)
    kw.setdefault("ops_per_client", 30)
    kw.setdefault("warmup_ops", 2)
    kw.setdefault("seed", 21)
    return ExperimentConfig(**kw)


def _summary_key(result: ShardedResult):
    """Everything observable about a merged result, for equality."""
    s = result.summary
    return (
        dataclasses.astuple(s.reads),
        dataclasses.astuple(s.writes),
        dataclasses.astuple(s.overall),
        s.read_hit_rate,
        s.failures,
        s.availability,
        result.messages_per_request,
        result.total_requests,
        result.sim_time_ms,
        tuple(sorted(result.metrics.items())),
    )


class TestShardConfigs:
    def test_round_robin_sizes_and_distinct_seeds(self):
        parts = shard_configs(_base(num_clients=7), 3)
        assert [p.num_clients for p in parts] == [3, 2, 2]
        assert len({p.seed for p in parts}) == 3
        assert all(p.seed != 21 for p in parts)

    def test_clamped_to_client_count(self):
        parts = shard_configs(_base(num_clients=2), 8)
        assert len(parts) == 2
        assert [p.num_clients for p in parts] == [1, 1]

    def test_rejects_nonpositive_groups(self):
        with pytest.raises(ValueError):
            shard_configs(_base(), 0)

    def test_seeds_are_stable_functions_of_base_seed_and_group(self):
        first = [p.seed for p in shard_configs(_base(), 4)]
        again = [p.seed for p in shard_configs(_base(), 4)]
        assert first == again
        other = [p.seed for p in shard_configs(_base(seed=22), 4)]
        assert first != other

    def test_topologies_are_independent_copies(self):
        base = _base()
        parts = shard_configs(base, 2)
        assert parts[0].topology is not parts[1].topology
        assert parts[0].topology is not base.topology
        # __post_init__ resized each copy to its own group
        assert parts[0].topology.num_clients == parts[0].num_clients


class TestMergeDeterminism:
    def test_worker_count_does_not_change_the_merge(self, tmp_path):
        base = _base()
        serial = run_sharded(base, num_groups=3, workers=1, cache=False)
        wide = run_sharded(base, num_groups=3, workers=3, cache=False)
        assert _summary_key(serial) == _summary_key(wide)

    def test_merge_is_order_independent(self):
        base = _base()
        result = run_sharded(base, num_groups=3, workers=1, cache=False)
        reversed_merge = merge_points(base, list(reversed(result.points)))
        forward = _summary_key(result)
        backward = _summary_key(reversed_merge)
        # sim_time/percentiles/counters all order-independent
        assert forward == backward

    def test_merge_accounts_for_every_group(self):
        base = _base()
        result = run_sharded(base, num_groups=3, workers=1, cache=False)
        assert result.num_groups == 3
        assert result.total_requests == sum(
            p.total_requests for p in result.points
        )
        assert result.sim_time_ms == max(p.sim_time_ms for p in result.points)
        per_group_events = sum(
            p.extras["events_processed"] for p in result.points
        )
        assert result.metrics["kernel.events_processed"] == per_group_events

    def test_single_group_equals_whole_scenario_reseeded(self):
        # One group is still reseeded by the shard plan: the merge of a
        # 1-group run must equal running that group's config directly.
        base = _base()
        one = run_sharded(base, num_groups=1, workers=1, cache=False)
        again = run_sharded(base, num_groups=1, workers=1, cache=False)
        assert _summary_key(one) == _summary_key(again)
        assert one.num_groups == 1
