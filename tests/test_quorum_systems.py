"""Unit and property tests for the quorum systems."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quorum import (
    GridQuorumSystem,
    MajorityQuorumSystem,
    RowaQuorumSystem,
    SingleNodeQuorumSystem,
    WeightedVotingSystem,
    binomial_tail,
    exact_quorum_availability,
)


def nodes(n):
    return [f"n{i}" for i in range(n)]


class TestMajority:
    def test_default_majority_sizes(self):
        q = MajorityQuorumSystem(nodes(9))
        assert q.read_quorum_size == 5
        assert q.write_quorum_size == 5

    def test_even_count_majority(self):
        q = MajorityQuorumSystem(nodes(4))
        assert q.read_quorum_size == 3

    def test_custom_sizes(self):
        q = MajorityQuorumSystem(nodes(9), read_size=3, write_size=7)
        assert q.is_read_quorum(set(nodes(3)))
        assert not q.is_write_quorum(set(nodes(6)))
        assert q.is_write_quorum(set(nodes(7)))

    def test_intersection_constraint_enforced(self):
        with pytest.raises(ValueError):
            MajorityQuorumSystem(nodes(9), read_size=4, write_size=5)

    def test_out_of_range_sizes(self):
        with pytest.raises(ValueError):
            MajorityQuorumSystem(nodes(3), read_size=0, write_size=4)
        with pytest.raises(ValueError):
            MajorityQuorumSystem(nodes(3), read_size=2, write_size=5)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            MajorityQuorumSystem(["a", "a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MajorityQuorumSystem([])

    def test_sample_is_minimal_and_contains_prefer(self):
        q = MajorityQuorumSystem(nodes(9))
        rng = random.Random(0)
        for _ in range(50):
            quorum = q.sample_read_quorum(rng, prefer="n3")
            assert len(quorum) == 5
            assert "n3" in quorum
            assert q.is_read_quorum(quorum)

    def test_availability_closed_form_matches_enumeration(self):
        q = MajorityQuorumSystem(nodes(7))
        p = 0.1
        exact = exact_quorum_availability(q.nodes, q.is_read_quorum, p)
        assert q.read_availability(p) == pytest.approx(exact, rel=1e-9)

    def test_superset_is_quorum(self):
        q = MajorityQuorumSystem(nodes(5))
        assert q.is_read_quorum(set(nodes(5)))

    def test_foreign_nodes_ignored(self):
        q = MajorityQuorumSystem(nodes(3))
        assert not q.is_read_quorum({"x", "y", "z"})


class TestRowa:
    def test_sizes(self):
        q = RowaQuorumSystem(nodes(6))
        assert q.read_quorum_size == 1
        assert q.write_quorum_size == 6

    def test_read_any_one(self):
        q = RowaQuorumSystem(nodes(4))
        assert q.is_read_quorum({"n2"})
        assert not q.is_read_quorum({"zzz"})

    def test_write_needs_all(self):
        q = RowaQuorumSystem(nodes(4))
        assert not q.is_write_quorum(set(nodes(3)))
        assert q.is_write_quorum(set(nodes(4)))

    def test_sample_prefers(self):
        q = RowaQuorumSystem(nodes(5))
        rng = random.Random(1)
        assert q.sample_read_quorum(rng, prefer="n4") == frozenset(["n4"])
        assert q.sample_write_quorum(rng) == frozenset(nodes(5))

    def test_availability_formulas(self):
        q = RowaQuorumSystem(nodes(3))
        p = 0.1
        assert q.read_availability(p) == pytest.approx(1 - 0.1**3)
        assert q.write_availability(p) == pytest.approx(0.9**3)


class TestSingleNode:
    def test_everything_is_that_node(self):
        q = SingleNodeQuorumSystem("primary")
        assert q.is_read_quorum({"primary", "other"})
        assert not q.is_write_quorum({"other"})
        rng = random.Random(0)
        assert q.sample_read_quorum(rng) == frozenset(["primary"])
        assert q.read_availability(0.01) == pytest.approx(0.99)


class TestGrid:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GridQuorumSystem(nodes(7), rows=2, cols=3)  # too many for 2x3
        with pytest.raises(ValueError):
            GridQuorumSystem(nodes(4), rows=2, cols=3)  # last column empty
        with pytest.raises(ValueError):
            GridQuorumSystem(nodes(1), rows=0, cols=0)

    def test_sizes(self):
        q = GridQuorumSystem(nodes(12), rows=3, cols=4)
        assert q.read_quorum_size == 4
        assert q.write_quorum_size == 3 + 4 - 1

    def test_ragged_grid_sizes(self):
        # 7 nodes as <=3 rows x 3 cols: balanced columns of 3, 2, 2
        q = GridQuorumSystem(nodes(7), rows=3, cols=3)
        assert [len(c) for c in q._columns] == [3, 2, 2]
        assert q.read_quorum_size == 3
        assert q.write_quorum_size == 2 + 3 - 1  # shortest column is 2

    def test_balanced_fill_no_tiny_columns(self):
        # 21 nodes as 4x6 must balance to 4,4,4,3,3,3 — never a 1-column
        q = GridQuorumSystem(nodes(21), rows=4, cols=6)
        assert sorted(len(c) for c in q._columns) == [3, 3, 3, 4, 4, 4]

    def test_near_square_constructor(self):
        from repro.quorum.grid import near_square_grid

        for n in (3, 5, 7, 9, 11, 15):
            q = near_square_grid(nodes(n))
            assert q.size == n
            assert q.rows * q.cols >= n > q.rows * (q.cols - 1)

    def test_read_quorum_is_column_cover(self):
        q = GridQuorumSystem(nodes(6), rows=2, cols=3)
        # column-major: columns {n0,n1}, {n2,n3}, {n4,n5}
        assert q.is_read_quorum({"n0", "n2", "n4"})
        assert q.is_read_quorum({"n1", "n3", "n5"})
        assert not q.is_read_quorum({"n0", "n1", "n2"})  # col 3 uncovered

    def test_write_quorum_needs_full_column_plus_cover(self):
        q = GridQuorumSystem(nodes(6), rows=2, cols=3)
        assert q.is_write_quorum({"n0", "n1", "n2", "n4"})  # col0 full + cover
        assert not q.is_write_quorum({"n0", "n2", "n4"})  # no full column

    def test_ragged_quorums_intersect(self):
        import random

        for n in (5, 7, 11, 13):
            q = GridQuorumSystem(
                nodes(n), rows=max(1, int(n**0.5)),
                cols=-(-n // max(1, int(n**0.5))),
            )
            q.check_intersection(random.Random(0), trials=100)

    def test_sampled_quorums_valid(self):
        q = GridQuorumSystem(nodes(12), rows=3, cols=4)
        rng = random.Random(2)
        for _ in range(50):
            assert q.is_read_quorum(q.sample_read_quorum(rng))
            assert q.is_write_quorum(q.sample_write_quorum(rng))

    def test_sample_write_prefer_pins_column(self):
        q = GridQuorumSystem(nodes(6), rows=2, cols=3)
        rng = random.Random(3)
        wq = q.sample_write_quorum(rng, prefer="n1")
        assert {"n1", "n4"} <= wq  # full column of n1

    def test_availability_matches_enumeration(self):
        q = GridQuorumSystem(nodes(6), rows=2, cols=3)
        p = 0.2
        read_exact = exact_quorum_availability(q.nodes, q.is_read_quorum, p)
        write_exact = exact_quorum_availability(q.nodes, q.is_write_quorum, p)
        assert q.read_availability(p) == pytest.approx(read_exact, rel=1e-9)
        assert q.write_availability(p) == pytest.approx(write_exact, rel=1e-9)


class TestWeightedVoting:
    def test_thresholds_enforced(self):
        with pytest.raises(ValueError):
            WeightedVotingSystem({"a": 2, "b": 1}, read_threshold=1, write_threshold=2)
        with pytest.raises(ValueError):
            WeightedVotingSystem({}, 1, 1)
        with pytest.raises(ValueError):
            WeightedVotingSystem({"a": 0}, 1, 1)

    def test_vote_counting(self):
        q = WeightedVotingSystem({"a": 3, "b": 1, "c": 1}, read_threshold=3, write_threshold=3)
        assert q.is_read_quorum({"a"})
        assert not q.is_read_quorum({"b", "c"})

    def test_min_nodes_sizes(self):
        q = WeightedVotingSystem({"a": 3, "b": 1, "c": 1}, read_threshold=4, write_threshold=2)
        assert q.read_quorum_size == 2  # a + any other
        assert q.write_quorum_size == 1  # a alone

    def test_samples_meet_threshold(self):
        q = WeightedVotingSystem(
            {"a": 3, "b": 2, "c": 2, "d": 1}, read_threshold=5, write_threshold=4
        )
        rng = random.Random(4)
        for _ in range(50):
            assert q.is_read_quorum(q.sample_read_quorum(rng))
            assert q.is_write_quorum(q.sample_write_quorum(rng))


class TestBinomialTail:
    def test_edges(self):
        assert binomial_tail(5, 0, 0.3) == 1.0
        assert binomial_tail(5, 6, 0.3) == 0.0
        assert binomial_tail(5, 5, 1.0) == pytest.approx(1.0)

    def test_simple_value(self):
        # P[X >= 1], X ~ Bin(2, 0.5) = 0.75
        assert binomial_tail(2, 1, 0.5) == pytest.approx(0.75)


# ---------------------------------------------------------------------------
# property tests: read/write quorum intersection for every system
# ---------------------------------------------------------------------------

_SYSTEM_STRATEGY = st.one_of(
    st.integers(min_value=1, max_value=12).map(
        lambda n: MajorityQuorumSystem(nodes(n))
    ),
    st.integers(min_value=1, max_value=12).map(lambda n: RowaQuorumSystem(nodes(n))),
    st.tuples(
        st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4)
    ).map(lambda rc: GridQuorumSystem(nodes(rc[0] * rc[1]), rows=rc[0], cols=rc[1])),
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8).map(
        lambda votes: WeightedVotingSystem(
            {f"n{i}": v for i, v in enumerate(votes)},
            read_threshold=sum(votes) // 2 + 1,
            write_threshold=sum(votes) // 2 + 1,
        )
    ),
)


@given(system=_SYSTEM_STRATEGY, seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=200, deadline=None)
def test_property_sampled_quorums_always_intersect(system, seed):
    """Every sampled read quorum intersects every sampled write quorum —
    the property that makes quorum registers regular."""
    rng = random.Random(seed)
    rq = system.sample_read_quorum(rng)
    wq = system.sample_write_quorum(rng)
    assert rq & wq, f"{system}: {sorted(rq)} vs {sorted(wq)}"
    assert system.is_read_quorum(rq)
    assert system.is_write_quorum(wq)


@given(system=_SYSTEM_STRATEGY, p=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_property_availability_bounds_and_monotonicity(system, p):
    """Availabilities are probabilities; reads are at least as available
    as writes for every system here (read quorums are never larger)."""
    av_r = system.read_availability(p)
    av_w = system.write_availability(p)
    assert -1e-9 <= av_r <= 1 + 1e-9
    assert -1e-9 <= av_w <= 1 + 1e-9
    assert av_r >= av_w - 1e-9


@given(
    n=st.integers(min_value=1, max_value=10),
    p=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=60, deadline=None)
def test_property_closed_forms_match_enumeration(n, p):
    """Closed-form availability equals brute-force enumeration."""
    q = MajorityQuorumSystem(nodes(n))
    exact_r = exact_quorum_availability(q.nodes, q.is_read_quorum, p)
    assert q.read_availability(p) == pytest.approx(exact_r, abs=1e-9)
    r = RowaQuorumSystem(nodes(n))
    exact_read = exact_quorum_availability(r.nodes, r.is_read_quorum, p)
    exact_write = exact_quorum_availability(r.nodes, r.is_write_quorum, p)
    assert r.read_availability(p) == pytest.approx(exact_read, abs=1e-9)
    assert r.write_availability(p) == pytest.approx(exact_write, abs=1e-9)
