"""Unit tests for the perf-trajectory tracker (repro.obs.trajectory).

The gate's contract: a phase regresses only when it grows by more than
the relative threshold AND the absolute floor; shrinkage and brand-new
workloads/groups/phases never fail; the history file is bounded and
byte-stable under re-recording.
"""

import json

import pytest

from repro.obs import trajectory as traj


def _point(**phases):
    """A one-workload, one-group trajectory point."""
    return {"wl": {"write": dict(phases)}}


class TestCompare:
    def test_empty_history_passes(self):
        assert traj.compare_to_last(_point(total=100.0), []) == []

    def test_regression_needs_threshold_and_floor(self):
        history = [{"workloads": _point(total=100.0, quorum_wait=0.1)}]
        # +30% and +30ms: regression
        regs = traj.compare_to_last(_point(total=130.0, quorum_wait=0.1),
                                    history)
        assert [(r.workload, r.group, r.phase) for r in regs] == [
            ("wl", "write", "total")
        ]
        assert regs[0].before_ms == 100.0 and regs[0].after_ms == 130.0
        assert regs[0].ratio == pytest.approx(1.3)
        # +300% on a near-zero phase but only +0.3ms: under the floor
        assert traj.compare_to_last(
            _point(total=100.0, quorum_wait=0.4), history
        ) == []
        # +10ms on the total but only +10%: under the threshold
        assert traj.compare_to_last(
            _point(total=110.0, quorum_wait=0.1), history
        ) == []

    def test_improvements_and_disappearances_pass(self):
        history = [{"workloads": _point(total=100.0, retry=20.0)}]
        assert traj.compare_to_last(_point(total=50.0), history) == []

    def test_new_workload_group_phase_pass(self):
        history = [{"workloads": _point(total=100.0)}]
        point = {
            "wl": {
                "write": {"total": 100.0, "backoff": 99.0},
                "read[hit]": {"total": 500.0},
            },
            "new_wl": {"write": {"total": 9999.0}},
        }
        assert traj.compare_to_last(point, history) == []

    def test_compares_against_last_point_only(self):
        history = [
            {"workloads": _point(total=50.0)},
            {"workloads": _point(total=200.0)},
        ]
        assert traj.compare_to_last(_point(total=100.0), history) == []


class TestHistoryFile:
    def test_load_missing_returns_empty(self, tmp_path):
        assert traj.load_history(str(tmp_path / "absent.json")) == []

    def test_record_then_load_roundtrips(self, tmp_path):
        path = str(tmp_path / "hist.json")
        traj.record_point(_point(total=10.0), path, label="seed")
        points = traj.load_history(path)
        assert len(points) == 1
        assert points[0]["label"] == "seed"
        assert points[0]["workloads"] == _point(total=10.0)

    def test_record_is_byte_stable(self, tmp_path):
        path = str(tmp_path / "hist.json")
        traj.record_point(_point(total=10.0), path)
        first = open(path).read()
        # identical history + identical point -> identical bytes modulo
        # the appended entry; re-writing the same sequence reproduces it
        path2 = str(tmp_path / "hist2.json")
        traj.record_point(_point(total=10.0), path2)
        assert first == open(path2).read()
        doc = json.loads(first)
        assert doc["version"] == 1

    def test_history_is_bounded(self, tmp_path):
        path = str(tmp_path / "hist.json")
        for i in range(25):
            traj.record_point(_point(total=float(i)), path, keep=20)
        points = traj.load_history(path)
        assert len(points) == 20
        assert points[-1]["workloads"]["wl"]["write"]["total"] == 24.0
        assert points[0]["workloads"]["wl"]["write"]["total"] == 5.0


class TestMeasure:
    def test_canonical_point_is_deterministic_and_complete(self):
        small = ((("dqvl", "dqvl", 0.2)),)
        first = traj.measure_workloads(small, ops=10)
        second = traj.measure_workloads(small, ops=10)
        assert first == second
        groups = first["dqvl"]
        assert "write" in groups
        for phases in groups.values():
            assert "total" in phases
            # phase means conserve against the measured total
            phase_sum = sum(v for k, v in phases.items() if k != "total")
            assert phase_sum == pytest.approx(phases["total"], abs=1e-6)

    def test_gate_passes_against_own_measurement(self, tmp_path):
        small = ((("dqvl", "dqvl", 0.2)),)
        point = traj.measure_workloads(small, ops=10)
        path = str(tmp_path / "hist.json")
        traj.record_point(point, path)
        again = traj.measure_workloads(small, ops=10)
        assert traj.compare_to_last(again, traj.load_history(path)) == []


class TestFormat:
    def test_no_regressions_message(self):
        assert "no phase regressions" in traj.format_regressions([])

    def test_regression_lines(self):
        regs = [traj.Regression("dqvl", "write", "quorum_wait", 10.0, 15.0)]
        text = traj.format_regressions(regs)
        assert "dqvl/write/quorum_wait" in text
        assert "10.000 ms -> 15.000 ms" in text
        assert "+50%" in text
