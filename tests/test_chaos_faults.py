"""Tests for the declarative fault windows and their installation."""

import pytest

from repro.chaos import Fault, FaultSchedule
from repro.chaos.faults import FAULT_KINDS, RUNTIME_KINDS
from repro.sim import ConstantDelay, Network, Node, Simulator


class Recorder(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []
        self.recoveries = 0

    def on_ping(self, msg):
        self.received.append(self.sim.now)

    def on_recover(self):
        self.recoveries += 1


def make_world(n=3):
    sim = Simulator(seed=0)
    net = Network(sim, ConstantDelay(1.0))
    nodes = [Recorder(sim, net, f"n{i}") for i in range(n)]
    return sim, net, nodes


def ping_every(sim, net, src, dst, period=10.0, until=500.0):
    """Schedule a message src->dst every *period* ms."""
    t = period
    while t < until:
        sim.schedule(t, lambda: net.node(src).send(dst, "ping", {}))
        t += period


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="meteor")

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="crash", start=-1.0)
        with pytest.raises(ValueError):
            Fault(kind="crash", duration=-1.0)

    def test_param_lookup_and_default(self):
        f = Fault.make("loss", 0.0, 10.0, probability=0.5)
        assert f.param("probability") == 0.5
        assert f.param("missing", 7.0) == 7.0

    def test_end(self):
        assert Fault.make("crash", 10.0, 5.0).end == 15.0

    def test_json_roundtrip(self):
        f = Fault.make(
            "degrade_link", 12.5, 30.0, nodes=("a", "b"),
            extra_delay_ms=40.0, loss_probability=0.1,
        )
        assert Fault.from_json_obj(f.to_json_obj()) == f

    def test_json_roundtrip_groups(self):
        f = Fault.make("partition", 1.0, 2.0, groups=(("a",), ("b", "c")))
        again = Fault.from_json_obj(f.to_json_obj())
        assert again == f
        assert again.groups == (("a",), ("b", "c"))

    def test_describe_mentions_kind_and_target(self):
        f = Fault.make("crash", 10.0, 5.0, nodes=("n1",))
        text = f.describe()
        assert "crash" in text and "n1" in text

    def test_kind_registries_consistent(self):
        assert set(RUNTIME_KINDS) == set(FAULT_KINDS) - {"clock_drift"}


class TestFaultSchedule:
    def test_sorted_is_insertion_order_independent(self):
        a = Fault.make("crash", 5.0, 1.0, nodes=("n0",))
        b = Fault.make("loss", 5.0, 1.0, probability=0.2)
        c = Fault.make("crash", 1.0, 1.0, nodes=("n1",))
        one = FaultSchedule([a, b, c]).sorted()
        two = FaultSchedule([c, b, a]).sorted()
        assert one.faults == two.faults
        assert one.faults[0] == c

    def test_horizon(self):
        sched = FaultSchedule([
            Fault.make("crash", 5.0, 10.0, nodes=("n0",)),
            Fault.make("loss", 2.0, 30.0, probability=0.1),
        ])
        assert sched.horizon() == 32.0
        assert FaultSchedule().horizon() == 0.0

    def test_runtime_drift_split(self):
        drift = Fault.make("clock_drift", nodes=("n0",), drift=0.001)
        crash = Fault.make("crash", 1.0, 1.0, nodes=("n0",))
        sched = FaultSchedule([drift, crash])
        assert sched.runtime_faults() == [crash]
        assert sched.drift_faults() == [drift]

    def test_json_roundtrip(self):
        sched = FaultSchedule([
            Fault.make("partition", 1.0, 2.0, groups=(("a",), ("b",))),
            Fault.make("duplicate", 3.0, 4.0, probability=0.3),
        ])
        assert FaultSchedule.from_json_obj(sched.to_json_obj()).faults == sched.faults


class TestInstall:
    def test_crash_window_crashes_then_recovers(self):
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("crash", 100.0, 50.0, nodes=("n1",))
        ]).install(sim, net)
        sim.schedule(120.0, lambda: setattr(
            nodes[1], "probe_down", nodes[1].alive))
        sim.run(until=500.0)
        assert nodes[1].probe_down is False
        assert nodes[1].alive
        assert nodes[1].recoveries == 1

    def test_partition_window_blocks_then_heals(self):
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("partition", 100.0, 100.0, groups=(("n0",), ("n1", "n2")))
        ]).install(sim, net)
        ping_every(sim, net, "n0", "n1", period=10.0, until=400.0)
        sim.run()
        # Deliveries pause during [100, 200) and resume after.
        during = [t for t in nodes[1].received if 100.0 < t <= 200.0]
        after = [t for t in nodes[1].received if t > 201.0]
        assert not during
        assert after

    def test_slow_window_sets_and_clears(self):
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("slow", 100.0, 50.0, nodes=("n2",), slow_ms=75.0)
        ]).install(sim, net)
        sim.schedule(120.0, lambda: setattr(nodes[2], "probe", nodes[2].is_slow))
        sim.run(until=300.0)
        assert nodes[2].probe is True
        assert not nodes[2].is_slow

    def test_loss_window_drops_then_restores(self):
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("loss", 100.0, 100.0, probability=1.0)
        ]).install(sim, net)
        ping_every(sim, net, "n0", "n1", period=10.0, until=400.0)
        sim.run()
        # Sends in [100, 200) are lost; the window-end event sorts before
        # the ping sent at exactly t=200, which is delivered at 201.
        during = [t for t in nodes[1].received if 100.0 < t < 201.0]
        after = [t for t in nodes[1].received if t >= 201.0]
        assert not during
        assert after
        assert net.stats.dropped > 0

    def test_duplicate_window_duplicates(self):
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("duplicate", 0.0, 400.0, probability=1.0)
        ]).install(sim, net)
        ping_every(sim, net, "n0", "n1", period=10.0, until=100.0)
        sim.run()
        # Every ping delivered at least twice.
        assert len(nodes[1].received) >= 18

    def test_degrade_link_adds_delay_then_restores(self):
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("degrade_link", 0.0, 100.0, nodes=("n0", "n1"),
                       extra_delay_ms=40.0)
        ]).install(sim, net)
        sim.schedule(10.0, lambda: net.node("n0").send("n1", "ping", {}))
        sim.schedule(200.0, lambda: net.node("n0").send("n1", "ping", {}))
        sim.run()
        assert nodes[1].received == [51.0, 201.0]

    def test_unknown_node_ids_skipped(self):
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("crash", 10.0, 10.0, nodes=("ghost", "n0"))
        ]).install(sim, net)
        sim.schedule(15.0, lambda: setattr(nodes[0], "probe", nodes[0].alive))
        sim.run(until=100.0)
        assert nodes[0].probe is False  # the known node still crashed
        assert nodes[0].alive

    def test_clock_drift_not_installed_at_runtime(self):
        sim, net, nodes = make_world()
        clock_before = nodes[0].clock
        FaultSchedule([
            Fault.make("clock_drift", nodes=("n0",), drift=0.005)
        ]).install(sim, net)
        sim.run(until=100.0)
        assert nodes[0].clock is clock_before

    def test_overlapping_partitions_heal_independently(self):
        """Two overlapping windows with different splits: the pair stays
        severed until the *last* window separating it ends."""
        sim, net, nodes = make_world()
        FaultSchedule([
            Fault.make("partition", 100.0, 200.0, groups=(("n0",), ("n1", "n2"))),
            Fault.make("partition", 200.0, 200.0, groups=(("n0", "n2"), ("n1",))),
        ]).install(sim, net)
        ping_every(sim, net, "n0", "n1", period=10.0, until=600.0)
        sim.run()
        during = [t for t in nodes[1].received if 100.0 < t <= 400.0]
        after = [t for t in nodes[1].received if t > 401.0]
        assert not during
        assert after
