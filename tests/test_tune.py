"""Tests for the quorum-shape autotuner (``repro tune``)."""

import pytest

from repro.analysis.availability import dqvl_system_availability
from repro.harness.availability import AvailabilitySimConfig, run_availability_sim
from repro.quorum import QuorumSpec
from repro.tune import (
    LatencyModel,
    TuneConfig,
    candidate_pairs,
    iqs_candidates,
    oqs_candidates,
    pareto_frontier,
    run_tune,
    score_candidate,
    tri_max_mean,
)


def nodes(n):
    return [f"n{i}" for i in range(n)]


class TestTriMax:
    def test_zero_jitter_is_zero(self):
        assert tri_max_mean(3, 0.0) == 0.0
        assert tri_max_mean(0, 5.0) == 0.0

    def test_monotone_in_quorum_size(self):
        values = [tri_max_mean(q, 5.0) for q in range(1, 8)]
        assert values == sorted(values)
        assert all(0.0 < v < 10.0 for v in values)

    def test_single_draw_mean_is_jitter(self):
        # E[triangular(0, 2j)] = j
        assert tri_max_mean(1, 5.0) == pytest.approx(5.0, abs=0.01)


class TestCandidates:
    def test_majority_pairs_all_intersect(self):
        for spec in iqs_candidates(5):
            system = spec.build(nodes(5))
            assert (
                system.read_quorum_size + system.write_quorum_size > 5
                or spec.kind in ("grid", "weighted", "single")
            )

    def test_counts(self):
        # n=5: 15 majority splits + 5 distinct grids (1x5, 2x3, 3x2,
        # 4x2, 5x1) + weighted + rowa + single = 23 IQS shapes; 3 OQS
        assert len(iqs_candidates(5)) == 23
        assert len(oqs_candidates(5)) == 3
        assert len(candidate_pairs(5, 5)) == 23 * 3

    def test_every_candidate_builds(self):
        for iqs, oqs in candidate_pairs(5, 5):
            iqs.build(nodes(5))
            oqs.build(nodes(5))


class TestScoring:
    def test_default_availability_matches_formula(self):
        delays = LatencyModel()
        score = score_candidate(
            QuorumSpec(kind="majority"), QuorumSpec(kind="rowa"),
            5, 5, read_fraction=0.9, p=0.05, delays=delays,
        )
        expected = dqvl_system_availability(
            0.1,
            QuorumSpec(kind="majority").build(nodes(5)),
            QuorumSpec(kind="rowa").build(nodes(5)),
            0.05,
        )
        assert score.availability == pytest.approx(expected)

    def test_smaller_read_quorum_is_faster_and_lighter(self):
        delays = LatencyModel(jitter_ms=5.0)
        small = score_candidate(
            QuorumSpec.parse("majority:r=2,w=4"), QuorumSpec(kind="rowa"),
            5, 5, read_fraction=0.9, p=0.05, delays=delays,
        )
        default = score_candidate(
            QuorumSpec(kind="majority"), QuorumSpec(kind="rowa"),
            5, 5, read_fraction=0.9, p=0.05, delays=delays,
        )
        assert small.latency_ms < default.latency_ms
        assert small.load < default.load
        assert small.availability < default.availability


class TestFrontier:
    def test_frontier_is_non_dominated(self):
        report = run_tune(TuneConfig())
        for a in report.frontier:
            assert not any(
                b.dominates(a) for b in report.frontier if b is not a
            )

    def test_frontier_sorted_and_deterministic(self):
        a = run_tune(TuneConfig())
        b = run_tune(TuneConfig())
        assert a.frontier_json() == b.frontier_json()
        latencies = [s.latency_ms for s in a.frontier]
        assert latencies == sorted(latencies)

    def test_a_candidate_beats_the_default_on_two_axes(self):
        report = run_tune(TuneConfig())
        assert report.dominating, "no candidate beats the paper default"
        best, axes = report.dominating[0]
        assert len(axes) >= 2
        assert report.recommended is best


class TestSimulatorAgreement:
    @pytest.mark.parametrize("iqs_spec", ["majority:r=2,w=4", "grid:3x2"])
    def test_analytic_availability_matches_simulation(self, iqs_spec):
        """The tuner's availability axis agrees with measurement within
        the documented +/- 0.05 tolerance (DESIGN.md §17)."""
        n, p, write_ratio = 5, 0.05, 0.1
        config = AvailabilitySimConfig(
            protocol="dqvl", write_ratio=write_ratio, num_replicas=n,
            p=p, epochs=120, seed=3, max_attempts=4,
            iqs_spec=iqs_spec, oqs_spec="rowa",
        )
        measured = run_availability_sim(config).availability
        analytic = dqvl_system_availability(
            write_ratio,
            QuorumSpec.parse(iqs_spec).build(nodes(n)),
            QuorumSpec.parse("rowa").build(nodes(n)),
            p,
        )
        assert measured == pytest.approx(analytic, abs=0.05)

    def test_validation_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        # num_clients stays at the default 3: the analytic model charges
        # every client WAN prices, so fewer clients would overweight the
        # one client co-located with a single-node IQS
        config = TuneConfig(validate_top=1, ops_per_client=60, epochs=60)
        report = run_tune(config, workers=1)
        # top-1 plus the default baseline row
        assert len(report.validation) == 2
        assert all(row.ok for row in report.validation)
        payload = report.to_json_obj()
        assert payload["validation"][0]["ok"] is True
