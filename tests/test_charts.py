"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness.charts import ascii_chart


class TestAsciiChart:
    def test_empty_inputs(self):
        assert ascii_chart([], {}) == "(no data)"
        assert ascii_chart([1, 2], {}) == "(no data)"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2, 3], {"s": [1, 2]})

    def test_basic_render_contains_everything(self):
        out = ascii_chart(
            [0, 1, 2], {"alpha": [1.0, 2.0, 3.0], "beta": [3.0, 2.0, 1.0]},
            x_label="time", y_label="value", title="demo",
        )
        assert out.splitlines()[0] == "demo"
        assert "o alpha" in out and "x beta" in out
        assert "time" in out and "value" in out

    def test_markers_placed_at_extremes(self):
        out = ascii_chart([0, 1], {"s": [0.0, 10.0]}, width=20, height=5)
        lines = out.splitlines()
        rows = [l for l in lines if "|" in l]
        # max lands on the top plot row, min on the bottom one
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_log_scale_spans_magnitudes(self):
        out = ascii_chart(
            [1, 2, 3], {"u": [1e-12, 1e-6, 1e-1]},
            log_y=True, height=10,
        )
        assert "(log scale)" in out
        assert "1e-12" in out
        rows = [l for l in out.splitlines() if "|" in l]
        # the three points occupy distinct rows (log spacing)
        marked = [i for i, row in enumerate(rows) if "o" in row]
        assert len(marked) == 3

    def test_log_scale_clamps_zero(self):
        out = ascii_chart([1, 2], {"u": [0.0, 1e-3]}, log_y=True)
        assert "(no data)" not in out  # renders without error

    def test_overlap_marker(self):
        out = ascii_chart(
            [0, 1], {"a": [1.0, 2.0], "b": [1.0, 5.0]}, width=10, height=5
        )
        assert "?" in out  # both series at (0, 1.0)

    def test_constant_series(self):
        out = ascii_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert "o" in out

    def test_single_x(self):
        out = ascii_chart([7], {"s": [3.0]})
        assert "o" in out
