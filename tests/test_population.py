"""Tests for aggregate client populations (repro.workload.population).

Statistical tests use wide confidence intervals (≥4σ) on fixed seeds so
they are deterministic in CI while still catching real model errors
(wrong rate by 2x, missing modulation, broken thinning).
"""

import math
import random

import pytest

from repro.consistency import History
from repro.sim import Simulator
from repro.workload import (
    BernoulliOpStream,
    CompositeProfile,
    ConstantProfile,
    DiurnalProfile,
    FixedKeyChooser,
    FlashCrowdProfile,
    IssuerPool,
    MmppArrivals,
    PoissonArrivals,
    PopulationStats,
    UniformKeyChooser,
    drive_population,
    pick_least_loaded,
    pick_round_robin,
    spawn_per_user_clients,
)


def _arrival_times(process, horizon_ms):
    times = []
    t = 0.0
    while True:
        t = process.next_arrival(t)
        if t > horizon_ms:
            return times
        times.append(t)


class TestRateProfiles:
    def test_constant(self):
        p = ConstantProfile()
        assert p.multiplier(0) == p.multiplier(1e9) == 1.0
        assert p.ceiling() == 1.0

    def test_diurnal_peak_and_trough(self):
        p = DiurnalProfile(period_ms=1000.0, amplitude=0.5, peak_frac=0.25)
        assert p.multiplier(250.0) == pytest.approx(1.5)
        assert p.multiplier(750.0) == pytest.approx(0.5)
        assert p.ceiling() == pytest.approx(1.5)

    def test_flash_crowd_shape(self):
        p = FlashCrowdProfile(start_ms=100.0, peak_multiplier=5.0,
                              ramp_ms=100.0, hold_ms=200.0, decay_ms=100.0)
        assert p.multiplier(50.0) == 1.0
        assert p.multiplier(150.0) == pytest.approx(3.0)  # mid-ramp
        assert p.multiplier(300.0) == 5.0  # hold
        assert p.multiplier(500.0) < 3.0  # decaying
        assert p.multiplier(5000.0) == 1.0  # cut off
        assert p.ceiling() == 5.0

    def test_composite_is_product(self):
        p = CompositeProfile([
            DiurnalProfile(period_ms=1000.0, amplitude=0.5, peak_frac=0.25),
            FlashCrowdProfile(start_ms=0.0, peak_multiplier=2.0,
                              ramp_ms=0.0, hold_ms=1e9, decay_ms=1.0),
        ])
        assert p.multiplier(250.0) == pytest.approx(3.0)
        assert p.ceiling() == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(amplitude=1.5)
        with pytest.raises(ValueError):
            FlashCrowdProfile(start_ms=0.0, peak_multiplier=0.5)


class TestPoissonArrivals:
    def test_empirical_rate_within_ci(self):
        """Rate 5/s over 400 s: expected 2000 arrivals, σ=√2000≈45."""
        process = PoissonArrivals(random.Random("pois-rate"), 5.0)
        count = len(_arrival_times(process, 400_000.0))
        assert abs(count - 2000) < 4 * math.sqrt(2000)

    def test_arrivals_strictly_increasing(self):
        process = PoissonArrivals(random.Random(0), 50.0)
        times = _arrival_times(process, 10_000.0)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_flash_crowd_peak_timing(self):
        """Arrivals inside the hold window run at peak x base rate."""
        profile = FlashCrowdProfile(start_ms=10_000.0, peak_multiplier=4.0,
                                    ramp_ms=1_000.0, hold_ms=10_000.0,
                                    decay_ms=1_000.0)
        process = PoissonArrivals(random.Random("flash"), 10.0, profile=profile)
        times = _arrival_times(process, 40_000.0)
        before = sum(1 for t in times if t < 10_000.0)  # E = 100
        hold = sum(1 for t in times if 11_000.0 <= t < 21_000.0)  # E = 400
        after = sum(1 for t in times if t >= 25_000.0)  # E = 150
        assert hold > 2.5 * (before / 10.0) * 10.0  # ≥2.5x baseline
        assert abs(before - 100) < 4 * math.sqrt(100)
        assert abs(hold - 400) < 4 * math.sqrt(400)
        assert abs(after - 150) < 4 * math.sqrt(150)

    def test_diurnal_phase(self):
        """More arrivals in the half-period around the peak than around
        the trough, with the configured phase."""
        profile = DiurnalProfile(period_ms=10_000.0, amplitude=0.8,
                                 peak_frac=0.25)
        process = PoissonArrivals(random.Random("diurnal"), 20.0,
                                  profile=profile)
        times = _arrival_times(process, 100_000.0)
        peak_half = sum(1 for t in times if (t % 10_000.0) < 5_000.0)
        trough_half = len(times) - peak_half
        # Integrated multiplier over the peak half is 1 + 2·0.8/π ≈ 1.51
        # vs 0.49 for the trough half: expect roughly a 3:1 split.
        assert peak_half > 2.0 * trough_half

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(random.Random(0), 0.0)


class TestMmppArrivals:
    def test_rate_within_ci_of_mean(self):
        """2-state MMPP mean rate = base x E[multiplier]; with equal
        dwells and burst 3x, E[mult] = 2 — check the doubled budget."""
        process = MmppArrivals(
            random.Random("mmpp"), 10.0, burst_multiplier=3.0,
            mean_dwell_normal_ms=1_000.0, mean_dwell_burst_ms=1_000.0,
        )
        count = len(_arrival_times(process, 200_000.0))
        expected = 10.0 * 2.0 * 200.0  # 4000
        # MMPP counts are overdispersed; allow a generous band.
        assert 0.7 * expected < count < 1.3 * expected

    def test_burstier_than_poisson(self):
        """Index of dispersion of per-second counts must exceed 1."""
        process = MmppArrivals(
            random.Random("mmpp-burst"), 20.0, burst_multiplier=8.0,
            mean_dwell_normal_ms=5_000.0, mean_dwell_burst_ms=2_000.0,
        )
        times = _arrival_times(process, 300_000.0)
        bins = [0] * 300
        for t in times:
            bins[min(299, int(t // 1000.0))] += 1
        mean = sum(bins) / len(bins)
        var = sum((b - mean) ** 2 for b in bins) / len(bins)
        assert var / mean > 2.0  # Poisson would be ~1

    def test_validation(self):
        with pytest.raises(ValueError):
            MmppArrivals(random.Random(0), 5.0, burst_multiplier=0.5)
        with pytest.raises(ValueError):
            MmppArrivals(random.Random(0), 5.0, mean_dwell_normal_ms=0.0)


class FakeClient:
    """In-sim store with a fixed latency, for pool tests."""

    def __init__(self, sim, node_id="fake", latency=10.0):
        self.sim = sim
        self.node_id = node_id
        self.latency = latency
        self.store = {}

    def read(self, key):
        yield self.sim.sleep(self.latency)
        from repro.types import ZERO_LC, ReadResult

        value, lc = self.store.get(key, (None, ZERO_LC))
        return ReadResult(key, value, lc, self.sim.now - self.latency,
                          self.sim.now, client=self.node_id)

    def write(self, key, value):
        yield self.sim.sleep(self.latency)
        from repro.types import LogicalClock, WriteResult

        lc = LogicalClock(len(self.store) + 1, self.node_id)
        self.store[key] = (value, lc)
        return WriteResult(key, value, lc, self.sim.now - self.latency,
                           self.sim.now, client=self.node_id)


class TestIssuerPool:
    def _pool(self, sim, history, num_clients=2, queue_limit=2, latency=10.0):
        clients = [FakeClient(sim, f"c{i}", latency) for i in range(num_clients)]
        return IssuerPool(sim, clients, history, queue_limit=queue_limit)

    def test_latency_includes_queue_wait(self):
        sim = Simulator(seed=0)
        history = History()
        pool = self._pool(sim, history, num_clients=1, queue_limit=10)
        stream = BernoulliOpStream(
            random.Random(0), FixedKeyChooser("k"), 0.0
        )
        arrivals = PoissonArrivals(random.Random("q"), 1000.0)  # overload
        sim.spawn(drive_population(sim, arrivals, stream, [pool], 20.0))
        sim.run(until=1_000.0)
        assert pool.stats.completed > 1
        ops = history.reads()
        # The one issuer serialises ops at 10 ms each; later ops must
        # carry their queue wait (latency > service time).
        assert ops[-1].latency > 10.0
        assert pool.stats.queue_wait_ms > 0.0

    def test_queue_overflow_drops(self):
        sim = Simulator(seed=0)
        history = History()
        pool = self._pool(sim, history, num_clients=1, queue_limit=2)
        stream = BernoulliOpStream(random.Random(0), FixedKeyChooser("k"), 0.0)
        arrivals = PoissonArrivals(random.Random("drop"), 5000.0)
        sim.spawn(drive_population(sim, arrivals, stream, [pool], 10.0))
        sim.run(until=1_000.0)
        assert pool.stats.dropped > 0
        assert pool.stats.queue_peak == 2
        assert pool.stats.arrivals == (
            pool.stats.dispatched + pool.stats.dropped
        )

    def test_pools_drain_and_exit_after_close(self):
        sim = Simulator(seed=0)
        history = History()
        pool = self._pool(sim, history, num_clients=2, queue_limit=50)
        stream = BernoulliOpStream(random.Random(1), FixedKeyChooser("k"), 0.3)
        arrivals = PoissonArrivals(random.Random("drain"), 400.0)
        dispatcher = sim.spawn(
            drive_population(sim, arrivals, stream, [pool], 50.0)
        )
        sim.run(until=5_000.0)
        assert dispatcher.done
        assert all(proc.done for proc in pool.processes)
        assert pool.stats.dispatched == pool.stats.completed
        assert len(history) == pool.stats.completed

    def test_balancers(self):
        sim = Simulator(seed=0)
        history = History()
        pools = [self._pool(sim, history, num_clients=1, queue_limit=100)
                 for _ in range(3)]
        assert pick_round_robin(pools, 0) == 0
        assert pick_round_robin(pools, 4) == 1
        pools[0]._queue.append(("spec", 0.0))
        pools[0].in_flight = 2
        assert pick_least_loaded(pools, 0) == 1  # ties break low index

    def test_submit_after_close_raises(self):
        sim = Simulator(seed=0)
        pool = self._pool(sim, History())
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(None, 0.0)


class TestAggregateEquivalence:
    """The tentpole claim: an aggregate population of N users at rate λ
    is statistically interchangeable with N per-user coroutines."""

    N_USERS = 20
    RATE = 2.0  # per user per second
    HORIZON = 60_000.0
    WRITE_RATIO = 0.3

    def _run_aggregate(self, seed=7):
        sim = Simulator(seed=seed)
        history = History()
        clients = [FakeClient(sim, f"agg{i}", 10.0) for i in range(self.N_USERS)]
        pool = IssuerPool(sim, clients, history, queue_limit=10_000)
        stream = BernoulliOpStream(
            random.Random(f"eq-ops:{seed}"),
            UniformKeyChooser([f"k{i}" for i in range(10)]),
            self.WRITE_RATIO,
        )
        arrivals = PoissonArrivals(
            random.Random(f"eq-arr:{seed}"), self.N_USERS * self.RATE
        )
        sim.spawn(drive_population(sim, arrivals, stream, [pool], self.HORIZON))
        sim.run(until=self.HORIZON + 60_000.0)
        return history

    def _run_per_user(self, seed=7):
        sim = Simulator(seed=seed)
        history = History()
        clients = [FakeClient(sim, f"usr{i}", 10.0) for i in range(self.N_USERS)]

        def stream_factory(u):
            return BernoulliOpStream(
                random.Random(f"eq-user-ops:{seed}:{u}"),
                UniformKeyChooser([f"k{i}" for i in range(10)]),
                self.WRITE_RATIO,
            )

        spawn_per_user_clients(
            sim, clients, stream_factory,
            lambda u: random.Random(f"eq-user-arr:{seed}:{u}"),
            self.RATE, history, self.HORIZON,
        )
        sim.run(until=self.HORIZON + 60_000.0)
        return history

    def test_aggregate_matches_per_user_model(self):
        agg = self._run_aggregate()
        per = self._run_per_user()
        # Both counts ~ Poisson(N·λ·T) = 2400; each within 5σ, and
        # within 10% of each other.
        expected = self.N_USERS * self.RATE * self.HORIZON / 1000.0
        for history in (agg, per):
            assert abs(len(history) - expected) < 5 * math.sqrt(expected)
        assert abs(len(agg) - len(per)) < 0.1 * expected
        # Write mix agrees with the configured ratio for both.
        for history in (agg, per):
            mix = len(history.writes()) / len(history)
            assert abs(mix - self.WRITE_RATIO) < 0.05
        # Latency summaries agree: unloaded, both should sit at the
        # 10 ms service time (no queueing at 40 req/s over 20 issuers).
        agg_mean = sum(op.latency for op in agg.ops) / len(agg)
        per_mean = sum(op.latency for op in per.ops) / len(per)
        assert agg_mean == pytest.approx(per_mean, rel=0.05)
        assert per_mean == pytest.approx(10.0, rel=0.05)


class TestDeterminism:
    def test_same_seed_same_arrivals(self):
        a = _arrival_times(PoissonArrivals(random.Random("d:1"), 50.0), 10_000.0)
        b = _arrival_times(PoissonArrivals(random.Random("d:1"), 50.0), 10_000.0)
        assert a == b

    def test_stats_merge(self):
        a = PopulationStats(arrivals=3, dispatched=2, completed=2,
                            queue_peak=4, queue_wait_ms=1.5)
        b = PopulationStats(arrivals=1, dispatched=1, failed=1,
                            queue_peak=7, queue_wait_ms=0.5)
        m = a.merged(b)
        assert m.arrivals == 4 and m.dispatched == 3
        assert m.queue_peak == 7  # max, not sum
        assert m.queue_wait_ms == 2.0
