"""Hierarchical timing-wheel satellites: batch scheduling equivalence,
tombstone compaction bounds, Timer pooling safety, same-instant merge
order on wheel-resident timers, and mid-slot ``until`` semantics.

The golden-trace byte-identity tests in ``test_sim_kernel.py`` and
``test_mc_kernel.py`` pin the canonical order itself; this module pins
the wheel-specific machinery added around it.
"""

import random

import pytest

from repro.sim.kernel import (
    ScheduleController,
    SimulationError,
    Simulator,
    Timer,
)


# -- batch scheduling equivalence ---------------------------------------------


def _fire_log(sim, log, tag):
    log.append((round(sim.now, 6), tag))


class TestBatchScheduling:
    def test_schedule_many_matches_schedule_loop(self):
        """A staged batch fires identically to N individual schedules,
        including interleaved cancellation of half the handles."""
        rng = random.Random(5)
        delays = [rng.uniform(0.5, 5000.0) for _ in range(300)]

        def scripted(batch):
            sim = Simulator(seed=0)
            log = []
            if batch:
                timers = sim.schedule_many(delays, _fire_log, sim, log, "t")
            else:
                timers = [sim.schedule(d, _fire_log, sim, log, "t") for d in delays]
            for t in timers[::2]:
                t.cancel()
            sim.run(until=2500.0)
            mid = len(log)
            sim.run()
            return log, mid, sim.now

        assert scripted(True) == scripted(False)

    def test_schedule_each_matches_call_later_loop(self):
        rng = random.Random(9)
        delays = [rng.uniform(0.5, 900.0) for _ in range(128)]
        items = list(range(128))

        def scripted(batch):
            sim = Simulator(seed=0)
            log = []
            if batch:
                sim.schedule_each(delays, log.append, items)
            else:
                for d, item in zip(delays, items):
                    sim.call_later(d, log.append, item)
            sim.run()
            return log, sim.now

        assert scripted(True) == scripted(False)

    def test_batch_interleaves_with_later_singles_by_sequence(self):
        """Sequence numbers span batch and non-batch scheduling: a batch
        member and a single timer due at the same instant fire in the
        order they were scheduled."""
        sim = Simulator(seed=0)
        log = []
        sim.schedule_many([5.0, 5.0], log.append, "batch")
        sim.schedule(5.0, log.append, "single")
        sim.run()
        assert log == ["batch", "batch", "single"]

        sim = Simulator(seed=0)
        log = []
        sim.schedule(5.0, log.append, "single")
        sim.schedule_many([5.0, 5.0], log.append, "batch")
        sim.run()
        assert log == ["single", "batch", "batch"]

    def test_batch_spanning_all_levels_and_overflow(self):
        """One batch scattering over L0, L1, L2 and the overflow heap
        still fires in global time order."""
        sim = Simulator(seed=0)
        log = []
        delays = [3.0, 1500.0, 400_000.0, 20_000_000.0, 7.0]
        sim.schedule_many(delays, _fire_log, sim, log, "x")
        sim.run()
        assert [t for t, _ in log] == sorted(t for t, _ in log)
        assert len(log) == len(delays)
        assert sim.now == pytest.approx(20_000_000.0)

    def test_non_positive_batch_delays_rejected(self):
        sim = Simulator(seed=0)
        with pytest.raises(SimulationError):
            sim.schedule_many([1.0, 0.0], lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_each([1.0, -2.0], lambda x: None, [1, 2])
        with pytest.raises(SimulationError):
            sim.schedule_each([1.0], lambda x: None, [1, 2])

    def test_empty_batches_are_noops(self):
        sim = Simulator(seed=0)
        assert sim.schedule_many([], lambda: None) == []
        assert sim.schedule_many([], lambda: None, handles=False) is None
        sim.schedule_each([], lambda x: None, [])
        assert sim.timer_depth == 0

    def test_cancel_before_expansion_never_materialises(self):
        """Timers cancelled while their batch is still staged are dropped
        at expansion without ever occupying a wheel slot."""
        sim = Simulator(seed=0)
        log = []
        timers = sim.schedule_many([50.0] * 10, log.append, "t")
        for t in timers:
            t.cancel()
        assert sim.timer_depth == 10  # still staged, tombstones included
        sim.run()
        assert log == []
        assert sim.timer_depth == 0


# -- tombstone compaction ------------------------------------------------------


class TestTombstoneCompaction:
    def test_cancel_heavy_pending_set_stays_bounded(self):
        """The renewal-keeper workload: every operation cancels a pending
        timer and schedules a replacement.  Compaction keeps the pending
        set (live + tombstones) bounded near 2x the live population —
        the legacy heap would retain all ~40k tombstones here."""
        sim = Simulator(seed=0)
        keepers = 400
        rng = random.Random(3)
        pending = [sim.schedule(rng.uniform(300.0, 500.0), lambda: None)
                   for _ in range(keepers)]
        max_depth = sim.timer_depth
        for _ in range(100):
            for i in range(keepers):
                pending[i].cancel()
                pending[i] = sim.schedule(rng.uniform(300.0, 500.0), lambda: None)
            sim.run(until=sim.now + 1.0)
            max_depth = max(max_depth, sim.timer_depth)
        # Policy: compact once tombstones exceed both the 512 floor and
        # the live count, so depth stays under 2*live + floor (+ one
        # round of slack for the trigger granularity).
        bound = 2 * keepers + 512 + keepers
        assert max_depth <= bound, f"pending set grew to {max_depth} > {bound}"
        assert sim.timer_depth <= bound

    def test_compaction_preserves_live_timers(self):
        """A compaction sweep triggered by mass cancellation must not
        disturb live timers anywhere on the wheel."""
        sim = Simulator(seed=0)
        log = []
        live = [(d, sim.schedule(d, _fire_log, sim, log, "live"))
                for d in (5.0, 900.0, 2_000.0, 300_000.0, 17_000_000.0)]
        doomed = [sim.schedule(100.0 + i * 0.01, lambda: None)
                  for i in range(2000)]
        for t in doomed:
            t.cancel()  # tombstones > live triggers a sweep
        assert sim.timer_depth <= len(live) + 512 + 1
        sim.run()
        assert len(log) == len(live)
        assert [t for t, _ in log] == sorted(round(d, 6) for d, _ in live)


# -- Timer pooling -------------------------------------------------------------


class TestTimerPooling:
    def test_dropped_handles_are_recycled(self):
        """Handles the caller no longer references return to the free
        list after firing and are reused by later schedules."""
        sim = Simulator(seed=0)
        sim.schedule(1.0, lambda: None)  # handle dropped immediately
        sim.run()
        assert len(sim._timer_pool) == 1
        recycled = sim._timer_pool[0]
        t2 = sim.schedule(2.0, lambda: None)
        assert t2 is recycled
        assert not t2.cancelled
        assert t2.when == pytest.approx(3.0)

    def test_held_handles_are_never_recycled(self):
        """A handle the caller still references must not enter the pool
        (recycling it would let a later schedule mutate it)."""
        sim = Simulator(seed=0)
        held = sim.schedule(1.0, lambda: None)
        sim.run()
        assert held not in sim._timer_pool
        assert sim._timer_pool == []

    def test_cancelled_then_rescheduled_pool_reuse_is_fresh(self):
        """A recycled Timer behaves like a new one: cancellation state
        and deadline are reset."""
        sim = Simulator(seed=0)
        t = sim.schedule(1.0, lambda: None)
        t.cancel()
        del t
        sim.run(until=2.0)  # dispatch purges the tombstone into the pool
        assert len(sim._timer_pool) == 1
        log = []
        t2 = sim.schedule(1.0, log.append, "fresh")
        assert not t2.cancelled
        sim.run()
        assert log == ["fresh"]


# -- same-instant merge order on wheel-resident timers -------------------------


class _Recorder(ScheduleController):
    """Canonical order, recording the slot sizes offered."""

    def __init__(self):
        self.offered = []

    def choose_event(self, n):
        self.offered.append(n)
        return 0


class _Reverser(ScheduleController):
    def choose_event(self, n):
        return n - 1


class TestControlledWheel:
    def _populate(self, sim, log):
        # Three wheel-resident timers due at the same instant (one from a
        # staged batch), plus one a millisecond later.
        sim.schedule(5.0, log.append, "a")
        sim.schedule_many([5.0], log.append, "b")
        sim.schedule(5.0, log.append, "c")
        sim.schedule(6.0, log.append, "d")

    def test_base_controller_matches_fast_path(self):
        fast_log, ctl_log = [], []
        sim = Simulator(seed=0)
        self._populate(sim, fast_log)
        sim.run()

        sim = Simulator(seed=0)
        sim.controller = ScheduleController()
        self._populate(sim, ctl_log)
        sim.run()
        assert ctl_log == fast_log == ["a", "b", "c", "d"]

    def test_same_instant_wheel_timers_offered_as_one_slot(self):
        sim = Simulator(seed=0)
        rec = _Recorder()
        sim.controller = rec
        log = []
        self._populate(sim, log)
        sim.run()
        # One 3-way choice for t=5; the singleton at t=6 is not offered.
        assert rec.offered == [3, 2]
        assert log == ["a", "b", "c", "d"]

    def test_reversed_choice_permutes_only_the_instant(self):
        sim = Simulator(seed=0)
        sim.controller = _Reverser()
        log = []
        self._populate(sim, log)
        sim.run()
        assert log == ["c", "b", "a", "d"]


# -- run(until=...) boundary semantics on the wheel ----------------------------


class TestUntilBoundaries:
    def test_until_cuts_inside_a_slot(self):
        """Two timers in the same 1 ms slot on either side of ``until``:
        the run stops exactly between them and a later run resumes."""
        sim = Simulator(seed=0)
        log = []
        sim.schedule(5.2, log.append, "early")
        sim.schedule(5.8, log.append, "late")
        sim.run(until=5.5)
        assert log == ["early"]
        assert sim.now == 5.5
        assert sim.timer_depth == 1
        sim.run()
        assert log == ["early", "late"]

    def test_chunked_runs_match_single_run(self):
        """Many 1 ms-sliced runs (the repro.mc runner pattern) produce the
        same dispatch order and times as one uninterrupted run."""
        rng = random.Random(21)
        delays = [rng.uniform(0.1, 80.0) for _ in range(200)]

        def scripted(chunked):
            sim = Simulator(seed=0)
            log = []
            timers = sim.schedule_many(delays, _fire_log, sim, log, "t")
            for t in timers[::3]:
                t.cancel()
            if chunked:
                while sim.timer_depth:
                    sim.run(until=sim.now + 1.0)
            else:
                sim.run()
            return log

        assert scripted(True) == scripted(False)

    def test_schedule_after_stopped_run_lands_behind_cursor(self):
        """After a run stops with the cursor ahead of the clock, a new
        short-delay timer still fires at its true time (the clamped-slot
        re-sort path)."""
        sim = Simulator(seed=0)
        log = []
        sim.schedule(100.0, log.append, "far")
        sim.run(until=50.0)  # cursor may sit ahead of int(now)
        sim.schedule(1.0, log.append, "near")
        sim.run()
        assert log == ["near", "far"]


# -- misc wheel internals ------------------------------------------------------


class TestWheelInternals:
    def test_timer_depth_counts_all_residences(self):
        sim = Simulator(seed=0)
        sim.schedule(5.0, lambda: None)                  # L0
        sim.schedule(5_000.0, lambda: None)              # L1
        sim.schedule(500_000.0, lambda: None)            # L2
        sim.schedule(30_000_000.0, lambda: None)         # overflow
        sim.schedule_many([42.0, 43.0], lambda: None)    # staged
        assert sim.timer_depth == 6
        sim.run()
        assert sim.timer_depth == 0

    def test_iter_pending_covers_staged_and_wheel(self):
        sim = Simulator(seed=0)
        fn = lambda: None  # noqa: E731
        sim.schedule(5.0, fn)
        sim.schedule_many([10.0, 20.0], fn)
        sim.schedule_each([30.0], fn, ["x"])
        cancelled = sim.schedule(40.0, fn)
        cancelled.cancel()
        pending = list(sim.iter_pending())
        assert len(pending) == 4
        assert all(cb is fn for _, cb, _ in pending)

    def test_events_processed_counts_wheel_dispatch(self):
        sim = Simulator(seed=0)
        sim.schedule_many([1.0, 2.0, 3.0], lambda: None)
        sim.call_soon(lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_pool_respects_non_cpython_fallback_shape(self):
        """The pooling gate is a pure optimisation: a Timer is only ever
        recycled when provably unreferenced, so constructing Timers
        directly (as tests and tools do) stays safe."""
        t = Timer(5.0)
        assert t._sim is None
        assert not t.cancelled
        t.cancel()  # no simulator attached: cancellation is local
        assert t.cancelled
