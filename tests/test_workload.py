"""Tests for workload generators and the closed-loop runner."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import History
from repro.sim import ConstantDelay, Network, Simulator
from repro.workload import (
    BernoulliOpStream,
    FixedKeyChooser,
    MarkovBurstStream,
    PartitionedKeyChooser,
    UniformKeyChooser,
    ZipfKeyChooser,
    closed_loop,
    profile_key,
    profile_keys,
    tpcw_profile_stream,
)
from repro.workload.generators import READ, WRITE


class TestKeyChoosers:
    def test_fixed(self):
        assert FixedKeyChooser("k").pick(random.Random(0)) == "k"

    def test_uniform_covers_population(self):
        keys = [f"k{i}" for i in range(5)]
        chooser = UniformKeyChooser(keys)
        rng = random.Random(0)
        seen = {chooser.pick(rng) for _ in range(200)}
        assert seen == set(keys)

    def test_uniform_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformKeyChooser([])

    def test_zipf_skews_toward_head(self):
        keys = [f"k{i}" for i in range(20)]
        chooser = ZipfKeyChooser(keys, s=1.2)
        rng = random.Random(1)
        counts = {}
        for _ in range(5000):
            k = chooser.pick(rng)
            counts[k] = counts.get(k, 0) + 1
        assert counts["k0"] > counts.get("k10", 0) > counts.get("k19", 0)

    def test_zipf_zero_exponent_is_uniformish(self):
        keys = [f"k{i}" for i in range(4)]
        chooser = ZipfKeyChooser(keys, s=0.0)
        rng = random.Random(2)
        counts = {k: 0 for k in keys}
        for _ in range(4000):
            counts[chooser.pick(rng)] += 1
        assert max(counts.values()) < 1.3 * min(counts.values())

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            ZipfKeyChooser([], s=1.0)
        with pytest.raises(ValueError):
            ZipfKeyChooser(["a"], s=-1.0)

    def test_zipf_tail_draw_never_indexes_past_end(self):
        """A uniform draw in the float-rounding tail above cdf[-1] must
        clamp to the last key, not raise IndexError."""
        keys = [f"k{i}" for i in range(7)]
        chooser = ZipfKeyChooser(keys, s=0.9)

        class TailRng:
            def random(self):
                return 1.0 - 1e-16  # above cdf[-1] when rounding bites

        assert chooser.pick(TailRng()) == "k6"
        # And bisect agrees with the old hand-rolled search everywhere.
        rng = random.Random(11)
        assert all(chooser.pick(rng) in keys for _ in range(2000))

    def test_zipf_cdf_memoized_across_instances(self):
        from repro.workload.generators import _zipf_cdf

        keys = [f"k{i}" for i in range(100)]
        a = ZipfKeyChooser(keys, s=0.8)
        b = ZipfKeyChooser(list(keys), s=0.8)
        assert a._cdf is b._cdf  # shared, not recomputed
        assert a._cdf is _zipf_cdf(100, 0.8)
        assert ZipfKeyChooser(keys, s=1.2)._cdf is not a._cdf

    def test_lazy_key_universe_matches_materialized_draws(self):
        from repro.workload.generators import KeyUniverse

        universe = KeyUniverse(50, fmt="obj:{:04d}")
        materialized = [f"obj:{i:04d}" for i in range(50)]
        assert list(universe) == materialized
        # Same RNG stream -> same choices on lazy and materialized.
        picks_lazy = [random.Random(3).choice(universe) for _ in range(1)]
        picks_list = [random.Random(3).choice(materialized) for _ in range(1)]
        assert picks_lazy == picks_list
        rng_a, rng_b = random.Random(4), random.Random(4)
        assert [rng_a.choice(universe) for _ in range(100)] == [
            rng_b.choice(materialized) for _ in range(100)
        ]

    def test_partitioned_affinity(self):
        own = ["own1", "own2"]
        foreign = ["f1", "f2"]
        chooser = PartitionedKeyChooser(own, foreign, affinity=0.8)
        rng = random.Random(3)
        own_picks = sum(chooser.pick(rng).startswith("own") for _ in range(2000))
        assert 1500 < own_picks < 1700

    def test_partitioned_no_foreign(self):
        chooser = PartitionedKeyChooser(["a"], [], affinity=0.5)
        rng = random.Random(0)
        assert all(chooser.pick(rng) == "a" for _ in range(20))


class TestBernoulliStream:
    def test_write_ratio_statistics(self):
        rng = random.Random(0)
        stream = BernoulliOpStream(rng, FixedKeyChooser("k"), write_ratio=0.3)
        writes = sum(next(stream).kind == WRITE for _ in range(5000))
        assert 1350 < writes < 1650

    def test_extremes(self):
        rng = random.Random(0)
        all_reads = BernoulliOpStream(rng, FixedKeyChooser("k"), 0.0)
        assert all(next(all_reads).kind == READ for _ in range(50))
        all_writes = BernoulliOpStream(rng, FixedKeyChooser("k"), 1.0)
        assert all(next(all_writes).kind == WRITE for _ in range(50))

    def test_write_values_unique_and_labelled(self):
        rng = random.Random(0)
        stream = BernoulliOpStream(rng, FixedKeyChooser("k"), 1.0, label="cX-")
        values = [next(stream).value for _ in range(10)]
        assert len(set(values)) == 10
        assert all(v.startswith("cX-") for v in values)

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliOpStream(random.Random(0), FixedKeyChooser("k"), 1.5)


class TestMarkovBurstStream:
    def test_stationary_write_ratio(self):
        rng = random.Random(4)
        stream = MarkovBurstStream(
            rng, FixedKeyChooser("k"), write_ratio=0.25, mean_write_burst=4.0
        )
        writes = sum(next(stream).kind == WRITE for _ in range(20_000))
        assert 0.22 < writes / 20_000 < 0.28

    def test_mean_burst_length(self):
        rng = random.Random(5)
        stream = MarkovBurstStream(
            rng, FixedKeyChooser("k"), write_ratio=0.5, mean_write_burst=5.0
        )
        ops = [next(stream).kind for _ in range(30_000)]
        bursts = []
        current = 0
        for kind in ops:
            if kind == WRITE:
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        mean = sum(bursts) / len(bursts)
        assert 4.2 < mean < 5.8

    def test_bursts_are_longer_than_bernoulli(self):
        rng = random.Random(6)
        burst = MarkovBurstStream(
            rng, FixedKeyChooser("k"), write_ratio=0.5, mean_write_burst=8.0
        )
        ops = [next(burst).kind for _ in range(5000)]
        switches = sum(a != b for a, b in zip(ops, ops[1:]))
        assert switches < 5000 * 0.3  # far fewer than iid's ~50%

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            MarkovBurstStream(rng, FixedKeyChooser("k"), 0.0)
        with pytest.raises(ValueError):
            MarkovBurstStream(rng, FixedKeyChooser("k"), 0.5, mean_write_burst=0.5)


class TestTpcw:
    def test_profile_keys(self):
        assert profile_key(7) == "profile:000007"
        assert len(profile_keys(10)) == 10

    def test_stream_write_ratio_default(self):
        rng = random.Random(7)
        stream = tpcw_profile_stream(rng, 0, num_clients=3)
        writes = sum(next(stream).kind == WRITE for _ in range(10_000))
        assert 0.035 < writes / 10_000 < 0.065

    def test_stream_affinity(self):
        rng = random.Random(8)
        stream = tpcw_profile_stream(
            rng, 1, num_clients=3, customers_per_client=10, affinity=0.9
        )
        own = range(10, 20)
        own_keys = {profile_key(c) for c in own}
        picks = [next(stream).key for _ in range(3000)]
        own_rate = sum(k in own_keys for k in picks) / len(picks)
        assert 0.85 < own_rate < 0.95

    def test_client_index_validated(self):
        with pytest.raises(ValueError):
            tpcw_profile_stream(random.Random(0), 5, num_clients=3)

    def test_foreign_profiles_skip_own_range(self):
        from repro.workload.tpcw import _ForeignProfiles

        foreign = _ForeignProfiles(total=20, own_start=5, span=5)
        assert len(foreign) == 15
        customers = [int(foreign[i].split(":")[1]) for i in range(15)]
        assert customers == list(range(0, 5)) + list(range(10, 20))
        with pytest.raises(IndexError):
            foreign[15]
        assert foreign[-1] == profile_key(19)

    def test_fleet_construction_stays_lazy(self):
        """10k client streams must not materialize per-client foreign
        key lists (the old O(num_clients^2 x customers) blowup)."""
        import tracemalloc

        num_clients = 10_000
        tracemalloc.start()
        streams = [
            tpcw_profile_stream(
                random.Random(c), c, num_clients=num_clients,
                customers_per_client=50,
            )
            for c in range(0, num_clients, 100)  # 100 clients of the fleet
        ]
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The old code built 100 lists of ~500k keys (~several GB); the
        # lazy version allocates a few small objects per stream.
        assert peak < 5_000_000
        # And the streams still draw valid keys from the full universe.
        picks = [next(streams[0]).key for _ in range(200)]
        assert all(p.startswith("profile:") for p in picks)


class TestClosedLoop:
    class FakeClient:
        """Synchronous in-sim store with a fixed latency."""

        node_id = "fake"

        def __init__(self, sim, latency=10.0, fail_keys=()):
            self.sim = sim
            self.latency = latency
            self.fail_keys = set(fail_keys)
            self.store = {}

        def read(self, key):
            yield self.sim.sleep(self.latency)
            if key in self.fail_keys:
                from repro.quorum import QrpcError

                raise QrpcError("READ", 1)
            from repro.types import ZERO_LC, ReadResult

            value, lc = self.store.get(key, (None, ZERO_LC))
            return ReadResult(key, value, lc, self.sim.now - self.latency,
                              self.sim.now, client=self.node_id)

        def write(self, key, value):
            yield self.sim.sleep(self.latency)
            from repro.types import LogicalClock, WriteResult

            lc = LogicalClock(len(self.store) + 1, "fake")
            self.store[key] = (value, lc)
            return WriteResult(key, value, lc, self.sim.now - self.latency,
                               self.sim.now, client=self.node_id)

    def test_runs_n_ops_closed_loop(self):
        sim = Simulator(seed=0)
        client = self.FakeClient(sim, latency=10.0)
        rng = random.Random(0)
        stream = BernoulliOpStream(rng, FixedKeyChooser("k"), 0.5)
        history = History()
        issued = sim.run_process(
            closed_loop(sim, client, stream, history, num_ops=20)
        )
        assert issued == 20
        assert len(history) == 20
        assert sim.now == 200.0  # strictly sequential

    def test_think_time_spaces_operations(self):
        sim = Simulator(seed=0)
        client = self.FakeClient(sim, latency=10.0)
        stream = BernoulliOpStream(random.Random(0), FixedKeyChooser("k"), 0.0)
        history = History()
        sim.run_process(
            closed_loop(sim, client, stream, history, num_ops=5, think_time_ms=90.0)
        )
        # 5 ops x 10ms separated by 4 think times: no trailing sleep.
        assert sim.now == 5 * 10.0 + 4 * 90.0

    def test_no_think_sleep_past_deadline(self):
        """Once the deadline passes, the loop must not sleep again."""
        sim = Simulator(seed=0)
        client = self.FakeClient(sim, latency=10.0)
        stream = BernoulliOpStream(random.Random(0), FixedKeyChooser("k"), 0.0)
        history = History()
        issued = sim.run_process(
            closed_loop(
                sim, client, stream, history,
                num_ops=100, think_time_ms=90.0, deadline_ms=105.0,
            )
        )
        # Ops at 0 and 100 (gap = 10 latency + 90 think); the second op
        # finishes at 110 >= deadline, so the run ends there — no 90ms
        # trailing think.
        assert issued == 2
        assert sim.now == 110.0

    def test_failures_recorded_not_raised(self):
        sim = Simulator(seed=0)
        client = self.FakeClient(sim, fail_keys={"k"})
        stream = BernoulliOpStream(random.Random(0), FixedKeyChooser("k"), 0.0)
        history = History()
        sim.run_process(closed_loop(sim, client, stream, history, num_ops=5))
        assert len(history.failures()) == 5

    def test_deadline_stops_early(self):
        sim = Simulator(seed=0)
        client = self.FakeClient(sim, latency=10.0)
        stream = BernoulliOpStream(random.Random(0), FixedKeyChooser("k"), 0.0)
        history = History()
        issued = sim.run_process(
            closed_loop(sim, client, stream, history, num_ops=100, deadline_ms=35.0)
        )
        assert issued == 4  # ops start at 0,10,20,30


class TestRecordReplay:
    def test_recording_passes_through(self):
        rng = random.Random(0)
        inner = BernoulliOpStream(rng, FixedKeyChooser("k"), 0.5)
        from repro.workload import RecordingStream

        stream = RecordingStream(inner)
        ops = [next(stream) for _ in range(10)]
        assert stream.recorded == ops

    def test_replay_reproduces_exactly(self):
        from repro.workload import RecordingStream, ReplayStream

        rng = random.Random(1)
        stream = RecordingStream(
            BernoulliOpStream(rng, UniformKeyChooser(["a", "b"]), 0.3)
        )
        original = [next(stream) for _ in range(15)]
        replay = ReplayStream(stream.recorded)
        assert [next(replay) for _ in range(15)] == original
        with pytest.raises(StopIteration):
            next(replay)

    def test_replay_cycles(self):
        from repro.workload import ReplayStream
        from repro.workload.generators import OpSpec

        replay = ReplayStream([OpSpec("read", "k")], cycle=True)
        assert [next(replay).key for _ in range(5)] == ["k"] * 5
        assert len(replay) == 1

    def test_empty_trace_rejected(self):
        from repro.workload import ReplayStream

        with pytest.raises(ValueError):
            ReplayStream([])

    def test_dump_load_roundtrip(self):
        import io

        from repro.workload import dump_trace, load_trace
        from repro.workload.generators import OpSpec

        ops = [
            OpSpec("read", "profile:1"),
            OpSpec("write", "profile:1", "v1"),
            OpSpec("read", "cart"),
        ]
        buffer = io.StringIO()
        assert dump_trace(ops, buffer) == 3
        buffer.seek(0)
        assert load_trace(buffer) == ops

    def test_load_skips_comments_and_blanks(self):
        import io

        from repro.workload import load_trace

        text = "# a comment\n\nread k\n  write k v  \n"
        ops = load_trace(io.StringIO(text))
        assert len(ops) == 2

    def test_load_rejects_garbage(self):
        import io

        from repro.workload import load_trace

        with pytest.raises(ValueError):
            load_trace(io.StringIO("frobnicate k v\n"))

    def test_dump_rejects_whitespace(self):
        import io

        from repro.workload import dump_trace
        from repro.workload.generators import OpSpec

        with pytest.raises(ValueError):
            dump_trace([OpSpec("read", "bad key")], io.StringIO())
        with pytest.raises(ValueError):
            dump_trace([OpSpec("write", "k", "bad value")], io.StringIO())

    def test_same_trace_drives_two_protocols(self):
        """The A/B use case: identical ops against two protocols."""
        from repro.consistency import History
        from repro.core import DqvlConfig, build_dqvl_cluster
        from repro.protocols import build_majority_cluster
        from repro.sim import ConstantDelay, Network, Simulator
        from repro.workload import RecordingStream, ReplayStream

        rng = random.Random(2)
        recorder = RecordingStream(
            BernoulliOpStream(rng, UniformKeyChooser(["x", "y"]), 0.3)
        )
        trace = [next(recorder) for _ in range(25)]

        def run_dqvl():
            sim = Simulator(seed=0)
            net = Network(sim, ConstantDelay(10.0))
            cluster = build_dqvl_cluster(
                sim, net, ["i0", "i1", "i2"], ["o0", "o1", "o2"], DqvlConfig()
            )
            client = cluster.client("c", prefer_oqs="o0")
            history = History()
            sim.run_process(
                closed_loop(sim, client, ReplayStream(trace), history, len(trace)),
                until=600_000.0,
            )
            return history

        def run_majority():
            sim = Simulator(seed=0)
            net = Network(sim, ConstantDelay(10.0))
            cluster = build_majority_cluster(sim, net, ["s0", "s1", "s2"])
            client = cluster.client("c", prefer="s0")
            history = History()
            sim.run_process(
                closed_loop(sim, client, ReplayStream(trace), history, len(trace)),
                until=600_000.0,
            )
            return history

        h1, h2 = run_dqvl(), run_majority()
        assert [op.kind for op in h1.ops] == [op.kind for op in h2.ops]
        assert [op.key for op in h1.ops] == [op.key for op in h2.ops]
