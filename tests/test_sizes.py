"""Tests for message-size models and network byte accounting."""

import pytest

from repro.analysis import EdgeServiceSizeModel, VALUE_BEARING_KINDS
from repro.sim import ConstantDelay, Message, Network, Node, Simulator


class TestEdgeServiceSizeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeServiceSizeModel(value_bytes=-1)

    def test_control_message_is_header_only(self):
        model = EdgeServiceSizeModel(value_bytes=1000, header_bytes=50)
        msg = Message(src="a", dst="b", kind="inval", payload={"lc": 1})
        assert model(msg) == 50

    def test_value_bearing_message_adds_value(self):
        model = EdgeServiceSizeModel(value_bytes=1000, header_bytes=50)
        msg = Message(src="a", dst="b", kind="dq_write",
                      payload={"obj": "x", "value": "data"})
        assert model(msg) == 1050

    def test_delayed_entries_counted(self):
        model = EdgeServiceSizeModel(header_bytes=10, delayed_entry_bytes=5)
        msg = Message(src="a", dst="b", kind="vl_renew_reply",
                      payload={"delayed": [("x", 1), ("y", 2), ("z", 3)]})
        assert model(msg) == 10 + 15

    def test_digest_entries_counted(self):
        model = EdgeServiceSizeModel(header_bytes=10, delayed_entry_bytes=4)
        msg = Message(src="a", dst="b", kind="ra_digest",
                      payload={"digest": {"x": 1, "y": 2}})
        assert model(msg) == 10 + 8

    def test_every_protocol_has_value_kinds(self):
        prefixes = {"dq_", "mq_", "rowa_", "ra_", "pb_", "cat_"}
        covered = {k.split("_")[0] + "_" for k in VALUE_BEARING_KINDS}
        assert prefixes <= covered


class TestNetworkByteAccounting:
    class Echo(Node):
        def on_dq_write(self, msg):
            self.reply(msg, payload={"lc": 1})

        def on_inval(self, msg):
            pass

    def test_bytes_tracked_with_model(self):
        sim = Simulator(seed=0)
        model = EdgeServiceSizeModel(value_bytes=100, header_bytes=10)
        net = Network(sim, ConstantDelay(1.0), size_model=model)
        a = self.Echo(sim, net, "a")
        b = self.Echo(sim, net, "b")

        def proc():
            yield a.call("b", "dq_write", {"obj": "x", "value": "v"})

        sim.run_process(proc())
        # request: 10+100; reply (dq_write_reply, not value-bearing): 10
        assert net.stats.total_bytes == 120
        assert net.stats.bytes_by_kind["dq_write"] == 110

    def test_no_model_means_zero_bytes(self):
        sim = Simulator(seed=0)
        net = Network(sim, ConstantDelay(1.0))
        a = self.Echo(sim, net, "a")
        b = self.Echo(sim, net, "b")
        a.send("b", "dq_write", {"obj": "x", "value": "v"})
        sim.run()
        assert net.stats.total_bytes == 0
        assert net.stats.total_messages == 2  # the handler replied

    def test_snapshot_diff_includes_bytes(self):
        sim = Simulator(seed=0)
        net = Network(sim, ConstantDelay(1.0),
                      size_model=EdgeServiceSizeModel(header_bytes=7, value_bytes=0))
        a = self.Echo(sim, net, "a")
        b = self.Echo(sim, net, "b")
        a.send("b", "inval", {"lc": 1})
        sim.run()
        snap = net.snapshot()
        a.send("b", "inval", {"lc": 2})
        sim.run()
        assert net.stats.diff(snap).total_bytes == 7
