"""Tests for the experiment harness: metrics, runner, reporting."""

import pytest

from repro.consistency import History
from repro.harness import (
    ExperimentConfig,
    LatencyStats,
    format_series,
    format_table,
    log_axis_note,
    run_response_time,
    summarize,
)
from repro.types import LogicalClock, ReadResult, WriteResult


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_basic_stats(self):
        stats = LatencyStats.from_samples([10.0, 20.0, 30.0, 40.0])
        assert stats.count == 4
        assert stats.mean == 25.0
        assert stats.median == 20.0
        assert stats.maximum == 40.0

    def test_p95(self):
        samples = list(range(1, 101))
        stats = LatencyStats.from_samples([float(s) for s in samples])
        assert stats.p95 == 95.0


class TestSummarize:
    def make_history(self):
        h = History()
        lc = LogicalClock(1, "c")
        h.record_read(ReadResult("x", "v", lc, 0.0, 10.0, client="c", hit=True))
        h.record_read(ReadResult("x", "v", lc, 10.0, 30.0, client="c", hit=False))
        h.record_write(WriteResult("x", "v", lc, 30.0, 70.0, client="c"))
        h.record_failure("read", "x", 70.0, 80.0, "c")
        return h

    def test_summary_fields(self):
        s = summarize(self.make_history())
        assert s.reads.count == 2
        assert s.reads.mean == 15.0
        assert s.writes.mean == 40.0
        assert s.overall.count == 3
        assert s.read_hit_rate == 0.5
        assert s.failures == 1
        assert s.availability == 0.75

    def test_hit_rate_none_without_hits(self):
        h = History()
        h.record_read(ReadResult("x", "v", LogicalClock(1, "c"), 0, 10, client="c"))
        assert summarize(h).read_hit_rate is None

    def test_empty_history(self):
        s = summarize(History())
        assert s.availability == 1.0
        assert s.overall.count == 0


class TestRunner:
    def test_deterministic_across_runs(self):
        cfg = dict(protocol="dqvl", write_ratio=0.2, ops_per_client=30,
                   warmup_ops=5, seed=42)
        r1 = run_response_time(ExperimentConfig(**cfg))
        r2 = run_response_time(ExperimentConfig(**cfg))
        assert r1.summary.overall.mean == r2.summary.overall.mean
        assert r1.protocol_messages == r2.protocol_messages

    def test_seed_changes_results(self):
        base = dict(protocol="dqvl", write_ratio=0.3, ops_per_client=30, warmup_ops=5)
        r1 = run_response_time(ExperimentConfig(seed=1, **base))
        r2 = run_response_time(ExperimentConfig(seed=2, **base))
        assert r1.history.ops != r2.history.ops

    def test_all_ops_counted(self):
        cfg = ExperimentConfig(
            protocol="rowa", write_ratio=0.5, ops_per_client=25,
            warmup_ops=5, num_clients=3, seed=0,
        )
        res = run_response_time(cfg)
        assert len(res.history) == 75
        assert len(res.warmup_history) == 15
        assert len(res.full_history()) == 90
        assert res.total_requests == 75

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            ExperimentConfig(protocol="chain-replication")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mode="telepathy")

    def test_frontend_mode_runs(self):
        cfg = ExperimentConfig(
            protocol="majority", mode="frontend", ops_per_client=10,
            warmup_ops=2, seed=3,
        )
        res = run_response_time(cfg)
        assert res.summary.overall.count == 30

    def test_bursty_stream_config(self):
        cfg = ExperimentConfig(
            protocol="dqvl", write_ratio=0.3, mean_write_burst=5.0,
            ops_per_client=40, warmup_ops=5, seed=4,
        )
        res = run_response_time(cfg)
        assert res.summary.overall.count == 120

    def test_locality_slows_dqvl_reads(self):
        base = dict(protocol="dqvl", write_ratio=0.05, ops_per_client=60,
                    warmup_ops=10, seed=5)
        high = run_response_time(ExperimentConfig(locality=1.0, **base))
        low = run_response_time(ExperimentConfig(locality=0.3, **base))
        assert low.summary.reads.mean > high.summary.reads.mean

    def test_deploy_kwargs_forwarded(self):
        cfg = ExperimentConfig(
            protocol="dqvl", ops_per_client=10, warmup_ops=2, seed=6,
            deploy_kwargs={"num_iqs": 5},
        )
        res = run_response_time(cfg)
        assert len(res.deployment.cluster.iqs_nodes) == 5


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["dqvl", 12.5], ["rowa", 3.0]],
            title="demo",
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_scientific_for_tiny(self):
        table = format_table(["u"], [[1.2e-9]])
        assert "e-09" in table

    def test_format_series(self):
        out = format_series(
            "w", [0.1, 0.5], [("dqvl", [1.0, 2.0]), ("rowa", [3.0, 4.0])]
        )
        lines = out.splitlines()
        assert lines[0].split() == ["w", "dqvl", "rowa"]
        assert lines[2].split() == ["0.1", "1", "3"]

    def test_log_axis_note(self):
        note = log_axis_note([1e-9, 1e-2])
        assert "1e-9" in note and "1e-2" in note
        assert log_axis_note([]) == "(all values zero)"
