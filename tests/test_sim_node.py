"""Unit tests for nodes: dispatch, RPC, crash/recovery, timers."""

import pytest

from repro.sim import (
    ConstantDelay,
    Network,
    Node,
    NodeCrashed,
    RpcTimeout,
    Simulator,
)


class Server(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.recovered = 0
        self.sync_calls = []

    def on_echo(self, msg):
        self.reply(msg, payload={"x": msg["x"]})

    def on_slow_echo(self, msg):
        def work():
            yield self.sim.sleep(50.0)
            self.reply(msg, payload={"x": msg["x"]})

        return work()

    def on_oneway(self, msg):
        self.sync_calls.append(msg["x"])

    def on_recover(self):
        self.recovered += 1


@pytest.fixture
def world():
    sim = Simulator(seed=2)
    net = Network(sim, ConstantDelay(10.0))
    a = Server(sim, net, "a")
    b = Server(sim, net, "b")
    return sim, net, a, b


class TestDispatch:
    def test_handler_dispatch(self, world):
        sim, net, a, b = world
        a.send("b", "oneway", {"x": 1})
        sim.run()
        assert b.sync_calls == [1]

    def test_missing_handler_raises(self, world):
        sim, net, a, b = world
        a.send("b", "nonexistent", {})
        with pytest.raises(AttributeError, match="no handler"):
            sim.run()

    def test_generator_handler_is_spawned(self, world):
        sim, net, a, b = world

        def proc():
            reply = yield a.call("b", "slow_echo", {"x": 7})
            return (reply["x"], sim.now)

        assert sim.run_process(proc()) == (7, 70.0)  # 10 + 50 + 10


class TestRpc:
    def test_call_reply_roundtrip(self, world):
        sim, net, a, b = world

        def proc():
            reply = yield a.call("b", "echo", {"x": 3})
            return (reply["x"], reply.src, sim.now)

        assert sim.run_process(proc()) == (3, "b", 20.0)

    def test_timeout_raises(self, world):
        sim, net, a, b = world
        net.block("a", "b")

        def proc():
            try:
                yield a.call("b", "echo", {"x": 1}, timeout=100.0)
            except RpcTimeout:
                return sim.now

        assert sim.run_process(proc()) == 100.0

    def test_late_reply_after_timeout_is_dropped(self, world):
        sim, net, a, b = world
        # one-way block a->b removed after the timeout would have fired;
        # easier: timeout shorter than the round trip.
        def proc():
            try:
                yield a.call("b", "echo", {"x": 1}, timeout=15.0)
            except RpcTimeout:
                pass
            yield sim.sleep(100.0)  # late reply arrives at t=20, ignored
            return True

        assert sim.run_process(proc()) is True

    def test_duplicate_reply_resolves_once(self, world):
        sim, net, a, b = world
        net.duplicate_probability = 1.0

        def proc():
            reply = yield a.call("b", "echo", {"x": 5})
            return reply["x"]

        assert sim.run_process(proc()) == 5

    def test_call_from_crashed_node_fails(self, world):
        sim, net, a, b = world
        a.crash()

        def proc():
            try:
                yield a.call("b", "echo", {"x": 1})
            except NodeCrashed:
                return "crashed"

        assert sim.run_process(proc()) == "crashed"


class TestCrashRecovery:
    def test_crashed_node_drops_messages(self, world):
        sim, net, a, b = world
        b.crash()
        a.send("b", "oneway", {"x": 1})
        sim.run()
        assert b.sync_calls == []

    def test_crash_fails_pending_rpcs(self, world):
        sim, net, a, b = world

        def proc():
            future = a.call("b", "slow_echo", {"x": 1})
            yield sim.sleep(30.0)  # request delivered, work in progress
            a.crash()
            try:
                yield future
            except NodeCrashed:
                return "failed"

        assert sim.run_process(proc()) == "failed"

    def test_recover_invokes_hook_and_resumes(self, world):
        sim, net, a, b = world
        b.crash()
        b.recover()
        assert b.recovered == 1
        a.send("b", "oneway", {"x": 2})
        sim.run()
        assert b.sync_calls == [2]

    def test_crash_recover_idempotent(self, world):
        sim, net, a, b = world
        b.crash()
        b.crash()
        b.recover()
        b.recover()
        assert b.recovered == 1

    def test_send_while_crashed_suppressed(self, world):
        sim, net, a, b = world
        a.crash()
        assert a.send("b", "oneway", {"x": 1}) is None
        sim.run()
        assert b.sync_calls == []

    def test_check_alive_guard(self, world):
        sim, net, a, b = world
        a.crash()
        with pytest.raises(NodeCrashed):
            a.check_alive()


class TestSlowMode:
    def test_slow_mode_defers_dispatch(self, world):
        sim, net, a, b = world
        b.set_slow(40.0)
        assert b.is_slow
        a.send("b", "oneway", {"x": 1})
        sim.run()
        # 10ms network + 40ms local backlog
        assert b.sync_calls == [1]
        assert sim.now == 50.0

    def test_slow_mode_delays_rpc_replies(self, world):
        sim, net, a, b = world
        b.set_slow(30.0)

        def proc():
            reply = yield a.call("b", "echo", {"x": 2})
            return (reply["x"], sim.now)

        # request: 10 net + 30 slow, reply: 10 net (client is healthy)
        assert sim.run_process(proc()) == (2, 50.0)

    def test_clear_slow_restores_latency(self, world):
        sim, net, a, b = world
        b.set_slow(40.0)
        b.clear_slow()
        assert not b.is_slow
        a.send("b", "oneway", {"x": 1})
        sim.run()
        assert sim.now == 10.0

    def test_crash_while_slow_drops_backlog(self, world):
        sim, net, a, b = world
        b.set_slow(40.0)
        a.send("b", "oneway", {"x": 1})
        sim.schedule(20.0, b.crash)   # message arrived at 10, queued
        sim.schedule(25.0, b.recover)
        sim.run()
        assert b.sync_calls == []  # restart loses queued input

    def test_negative_slow_rejected(self, world):
        sim, net, a, b = world
        with pytest.raises(ValueError):
            a.set_slow(-1.0)


class TestTimers:
    def test_after_fires_when_alive(self, world):
        sim, net, a, b = world
        fired = []
        a.after(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_after_suppressed_while_crashed(self, world):
        sim, net, a, b = world
        fired = []
        a.after(5.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []

    def test_after_suppressed_across_crash_recover_cycle(self, world):
        """A timer set before a crash must not fire after recovery —
        recovery models a process restart that loses its schedule."""
        sim, net, a, b = world
        fired = []
        a.after(10.0, lambda: fired.append(1))
        sim.schedule(2.0, a.crash)
        sim.schedule(4.0, a.recover)
        sim.run()
        assert fired == []
