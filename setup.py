"""Legacy setuptools shim.

The offline environment this repository targets has no `wheel` package,
so PEP 517 editable installs (which must build a wheel) fail.  Keeping a
setup.py lets ``pip install -e . --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path, which works everywhere.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
