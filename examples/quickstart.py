#!/usr/bin/env python3
"""Quickstart: a dual-quorum (DQVL) cluster in thirty lines.

Builds a simulated five-node deployment — a majority IQS of three write
servers and a read-one/write-all OQS of three edge caches — performs a
few reads and writes, and prints what the protocol did: which reads were
local cache hits, which writes were invalidation-suppressed, and the
simulated latency of every operation.

Run:  python examples/quickstart.py
"""

from repro.core import DqvlConfig, build_dqvl_cluster
from repro.sim import ConstantDelay, Network, Simulator


def main() -> None:
    # A deterministic simulation: same seed, same trace, every time.
    sim = Simulator(seed=42)
    # 40 ms one-way delay between any two nodes (a simple WAN).
    network = Network(sim, ConstantDelay(40.0))

    cluster = build_dqvl_cluster(
        sim,
        network,
        iqs_ids=["iqs0", "iqs1", "iqs2"],   # write side: majority quorum
        oqs_ids=["oqs0", "oqs1", "oqs2"],   # read side: read-one/write-all
        config=DqvlConfig(lease_length_ms=5_000.0),
    )

    # A service client (e.g. the data library inside a front-end edge
    # server), pinned to its nearest OQS replica.
    client = cluster.client("frontend0", prefer_oqs="oqs0")

    def scenario():
        print("-- write x = 'hello' ------------------------------------")
        w = yield from client.write("x", "hello")
        print(f"   write completed with clock {w.lc} in {w.latency:.0f} ms")

        print("-- first read (cache miss: validates leases) ------------")
        r = yield from client.read("x")
        print(f"   read -> {r.value!r}  hit={r.hit}  {r.latency:.0f} ms")

        print("-- second read (cache hit: served locally) --------------")
        r = yield from client.read("x")
        print(f"   read -> {r.value!r}  hit={r.hit}  {r.latency:.0f} ms")

        print("-- write x = 'world' (invalidates the cached copy) ------")
        w = yield from client.write("x", "world")
        print(f"   write completed with clock {w.lc} in {w.latency:.0f} ms")

        print("-- read again (miss, then fresh value) -------------------")
        r = yield from client.read("x")
        print(f"   read -> {r.value!r}  hit={r.hit}  {r.latency:.0f} ms")

    sim.run_process(scenario())

    print("\n-- protocol statistics ------------------------------------")
    print(f"   read hits/misses : {cluster.total_read_hits}/{cluster.total_read_misses}")
    print(f"   writes suppressed: {cluster.total_writes_suppressed}")
    print(f"   writes through   : {cluster.total_writes_through}")
    print(f"   network messages : {network.stats.total_messages}")
    print(f"   simulated time   : {sim.now:.0f} ms")


if __name__ == "__main__":
    main()
