#!/usr/bin/env python3
"""Consistency audit: DQVL vs. ROWA-Async under cross-node contention.

The paper's argument for dual quorums over epidemic replication is not
performance — ROWA-Async is faster — but *semantics*: epidemic systems
return stale data with no bound, and the rare anomalies force complexity
onto every application.  This audit makes that concrete:

* three writers/readers contend on a handful of shared objects from
  different edge replicas (low access locality — the hostile case);
* the recorded operation history is checked against **regular register
  semantics** (Lamport), exactly as defined in Section 2 of the paper;
* for ROWA-Async the audit also measures staleness: how old the values
  served were, and how stale they can get when a partition blocks
  propagation.

Run:  python examples/consistency_audit.py
"""

from repro.consistency import History, check_regular, staleness_report
from repro.core import DqvlConfig, build_dqvl_cluster
from repro.protocols import build_rowa_async_cluster
from repro.sim import MatrixDelay, Network, Simulator
from repro.workload import BernoulliOpStream, UniformKeyChooser, closed_loop

NUM_REPLICAS = 3
OPS_PER_CLIENT = 120
WRITE_RATIO = 0.4
SHARED_KEYS = ["cart", "profile", "session"]
SEED = 11


def make_network(sim: Simulator) -> Network:
    """Clients sit 5 ms from their replica; replicas are 100 ms apart —
    an edge geometry in which writes finish long before they propagate."""
    delays = MatrixDelay({}, default_ms=100.0)
    for k in range(NUM_REPLICAS):
        delays.set(f"client{k}", f"s{k}", 5.0)
        delays.set(f"client{k}", f"oqs{k}", 5.0)
    return Network(sim, delays)


def run_workload(sim, clients, label):
    history = History()
    procs = []
    for client in clients:
        stream = BernoulliOpStream(
            sim.rng, UniformKeyChooser(SHARED_KEYS), WRITE_RATIO,
            label=f"{label}-",
        )
        procs.append(
            sim.spawn(closed_loop(sim, client, stream, history, OPS_PER_CLIENT))
        )
    sim.run(until=3_600_000.0)
    assert all(p.done for p in procs)
    return history


def audit_rowa_async():
    sim = Simulator(seed=SEED)
    net = make_network(sim)
    cluster = build_rowa_async_cluster(
        sim, net, [f"s{k}" for k in range(NUM_REPLICAS)],
        gossip_interval_ms=2_000.0,
    )
    clients = [
        cluster.client(f"client{k}", prefer=f"s{k}") for k in range(NUM_REPLICAS)
    ]
    return run_workload(sim, clients, "ra")


def audit_dqvl():
    sim = Simulator(seed=SEED)
    net = make_network(sim)
    cluster = build_dqvl_cluster(
        sim, net,
        [f"s{k}" for k in range(NUM_REPLICAS)],     # IQS on the replicas
        [f"oqs{k}" for k in range(NUM_REPLICAS)],   # OQS caches
        DqvlConfig(
            lease_length_ms=3_000.0,
            inval_initial_timeout_ms=300.0,
            qrpc_initial_timeout_ms=300.0,
        ),
    )
    clients = [
        cluster.client(f"client{k}", prefer_oqs=f"oqs{k}")
        for k in range(NUM_REPLICAS)
    ]
    return run_workload(sim, clients, "dq")


def report(name, history):
    violations = check_regular(history)
    staleness = staleness_report(history)
    print(f"\n--- {name} " + "-" * max(0, 50 - len(name)))
    print(f"    operations recorded     : {len(history)}")
    print(f"    regular-semantics check : "
          f"{'PASS' if not violations else f'{len(violations)} VIOLATIONS'}")
    print(f"    stale reads             : {staleness.stale_reads} "
          f"({staleness.stale_fraction:.1%})")
    if staleness.stale_reads:
        print(f"    worst staleness         : {staleness.max_staleness_ms:.0f} ms")
        print(f"    mean versions behind    : {staleness.mean_version_lag:.2f}")
    for violation in violations[:3]:
        print(f"      e.g. {violation}")
    return violations


def main() -> None:
    print(
        "Three clients contend on shared objects from different replicas\n"
        f"(write ratio {WRITE_RATIO:.0%}; replicas 100 ms apart — the\n"
        "anti-locality workload DQVL must merely stay *correct* under)."
    )

    ra_violations = report("ROWA-Async (epidemic)", audit_rowa_async())
    dq_violations = report("DQVL (dual quorum + volume leases)", audit_dqvl())

    assert not dq_violations, "DQVL must be regular!"
    print(
        "\nReading: the epidemic baseline violated regular semantics "
        f"{len(ra_violations)} times;\nDQVL recorded none — the guarantee "
        "the paper trades a little latency for."
    )


if __name__ == "__main__":
    main()
