#!/usr/bin/env python3
"""Failure drill: how DQVL writes survive unreachable read caches.

The scenario that motivates volume leases (Section 3.2 of the paper):

1. an edge cache (OQS node) validates an object and serves local reads;
2. the cache drops off the network — crash or partition;
3. a write arrives.  The basic dual-quorum protocol would now block
   indefinitely (it must collect an invalidation ack).  DQVL instead
   *waits out the volume lease* and completes;
4. the cache comes back, renews its volume lease, receives the delayed
   invalidation queued for it, and serves the fresh value — never the
   stale one.

The drill runs the same script against DQVL with two lease lengths and
against the basic protocol, printing a timeline of what happened.

Run:  python examples/failover_drill.py
"""

from repro.core import DqvlConfig, build_basic_dq_cluster, build_dqvl_cluster
from repro.sim import ConstantDelay, Network, Simulator

OUTAGE_MS = 12_000.0


def drill(title: str, build, lease_ms: float) -> None:
    print(f"\n=== {title} " + "=" * max(0, 55 - len(title)))
    sim = Simulator(seed=1)
    net = Network(sim, ConstantDelay(20.0))
    config = DqvlConfig(
        lease_length_ms=lease_ms,
        inval_initial_timeout_ms=200.0,
        qrpc_initial_timeout_ms=200.0,
    )
    cluster = build(
        sim, net,
        ["iqs0", "iqs1", "iqs2"],
        ["oqs0", "oqs1", "oqs2"],
        config,
    )
    writer = cluster.client("writer", prefer_oqs="oqs1")
    reader = cluster.client("reader", prefer_oqs="oqs0")

    def log(text):
        print(f"   [{sim.now:9.0f} ms] {text}")

    def scenario():
        yield from writer.write("profile", "v1")
        r = yield from reader.read("profile")
        log(f"reader cached {r.value!r} at its edge (oqs0)")

        cluster.oqs_node("oqs0").crash()
        log("oqs0 CRASHED (reader's edge cache is gone)")

        w = yield from writer.write("profile", "v2")
        log(f"write of 'v2' completed after {w.latency:.0f} ms")

        yield sim.sleep(OUTAGE_MS)
        cluster.oqs_node("oqs0").recover()
        log("oqs0 RECOVERED; reader retries")

        r = yield from reader.read("profile")
        log(f"reader now sees {r.value!r} (hit={r.hit})")
        assert r.value == "v2", "stale read after recovery!"

    try:
        sim.run_process(scenario(), until=120_000.0)
    except Exception as exc:  # noqa: BLE001 - demo narration
        log(f"DID NOT FINISH within 120 s of simulated time: {exc}")
        log("(the write is still blocked on the unreachable cache)")
        return
    delayed = sum(n.delayed_enqueued for n in cluster.iqs_nodes)
    if delayed:
        print(f"   delayed invalidations queued and delivered: {delayed}")


def main() -> None:
    print("One edge cache holds a valid copy, then goes dark for "
          f"{OUTAGE_MS/1000:.0f} s.\nA write arrives during the outage.")

    drill("DQVL, 2 s volume lease", build_dqvl_cluster, lease_ms=2_000.0)
    drill("DQVL, 8 s volume lease", build_dqvl_cluster, lease_ms=8_000.0)
    drill("basic dual quorum (no leases)", build_basic_dq_cluster, lease_ms=2_000.0)

    print(
        "\nReading: with DQVL the write's stall is bounded by the volume\n"
        "lease length — the operator's knob — while the lease-free basic\n"
        "protocol blocks until the cache comes back.  In every case the\n"
        "recovered cache returns the new value, never the stale one."
    )


if __name__ == "__main__":
    main()
