#!/usr/bin/env python3
"""Choosing a volume-lease length: the operator's core trade-off.

The volume lease is DQVL's single most consequential knob:

* **short leases** bound how long an unreachable edge cache can stall a
  write (the write just waits the lease out) — but force frequent
  renewals, which costs messages and turns reads at idle moments into
  misses;
* **long leases** make reads almost free — but a dead cache holding one
  blocks writes for the whole residual lease.

This example sweeps the lease length on a workload with a fixed outage
pattern and prints, per setting: read hit rate, renewal traffic,
ordinary write latency, and worst-case write latency during the outage.
The "knee" — where worst-case writes stop improving and renewal traffic
keeps climbing — is the operating point.

Run:  python examples/lease_tuning.py
"""

from repro.consistency import History
from repro.core import DqvlConfig, build_dqvl_cluster
from repro.harness import format_table, summarize
from repro.sim import ConstantDelay, Network, Simulator
from repro.workload import BernoulliOpStream, FixedKeyChooser, closed_loop

LEASES_MS = [500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0, 30_000.0]
OUTAGE_AT_MS = 20_000.0
OUTAGE_MS = 15_000.0


def run_one(lease_ms: float):
    sim = Simulator(seed=17)
    net = Network(sim, ConstantDelay(15.0))
    config = DqvlConfig(
        lease_length_ms=lease_ms,
        proactive_renewal=True,
        renewal_margin_ms=min(400.0, lease_ms / 3),
        inval_initial_timeout_ms=200.0,
        qrpc_initial_timeout_ms=200.0,
    )
    cluster = build_dqvl_cluster(
        sim, net,
        ["iqs0", "iqs1", "iqs2"],
        ["oqs0", "oqs1", "oqs2"],
        config,
    )
    # reader keeps oqs0's leases warm; writer works from another edge
    reader = cluster.client("reader", prefer_oqs="oqs0")
    writer = cluster.client("writer", prefer_oqs="oqs1")
    history = History()
    write_history = History()

    reader_stream = BernoulliOpStream(sim.rng, FixedKeyChooser("profile"), 0.0)
    writer_stream = BernoulliOpStream(
        sim.rng, FixedKeyChooser("profile"), 1.0, label="w"
    )

    def reader_proc():
        yield from closed_loop(
            sim, reader, reader_stream, history, num_ops=400,
            think_time_ms=120.0, deadline_ms=60_000.0,
        )

    def writer_proc():
        yield from closed_loop(
            sim, writer, writer_stream, write_history, num_ops=60,
            think_time_ms=800.0, deadline_ms=60_000.0,
        )

    # mid-run, the reader's edge cache drops off the network
    node = cluster.oqs_node("oqs0")
    sim.schedule(OUTAGE_AT_MS, node.crash)
    sim.schedule(OUTAGE_AT_MS + OUTAGE_MS, node.recover)

    p1 = sim.spawn(reader_proc())
    p2 = sim.spawn(writer_proc())
    sim.run(until=3_600_000.0)
    assert p1.done and p2.done

    reads = summarize(history)
    writes = [op for op in write_history.ops if op.ok]
    worst_write = max((op.latency for op in writes), default=0.0)
    typical_write = sorted(op.latency for op in writes)[len(writes) // 2]
    renewals = (
        net.stats.by_kind["vl_renew"] + net.stats.by_kind["vlobj_renew"]
    )
    return [
        f"{lease_ms/1000:g}s",
        f"{reads.read_hit_rate:.2f}",
        renewals,
        round(typical_write, 0),
        round(worst_write, 0),
    ]


def main() -> None:
    rows = [run_one(lease) for lease in LEASES_MS]
    print(
        format_table(
            ["lease", "read hit rate", "volume renewals",
             "median write ms", "worst write ms"],
            rows,
            title=(
                f"Lease-length sweep: one reader, one writer, and a "
                f"{OUTAGE_MS/1000:g}s outage of the reader's cache"
            ),
        )
    )
    print(
        "\nReading: the worst write stall tracks the lease length (the\n"
        "crashed cache must be waited out at most once per lease), while\n"
        "renewal traffic shrinks as leases lengthen.  Pick the longest\n"
        "lease whose worst-case write stall your service tolerates."
    )


if __name__ == "__main__":
    main()
