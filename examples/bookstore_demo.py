#!/usr/bin/env python3
"""The full edge bookstore: every object class, one application.

Deploys the paper's motivating e-commerce application across nine edge
servers and runs a day at the (simulated) shop:

* the **catalog** (single-writer class) gets price updates from the
  origin and is browsed locally everywhere;
* customers **purchase** — which reserves escrowed **inventory**
  (commutative class), records the **order** locally with reliable
  async delivery to the origin (multi-writer/single-reader class), and
  updates the customer **profile** through **DQVL** (the paper's
  contribution: multi-writer/multi-reader with locality);
* one customer travels between cities mid-session, exercising exactly
  the cross-edge profile access DQVL exists for;
* at closing time, the invariants are audited: no overselling, every
  accepted order at the origin exactly once, profile histories complete.

Run:  python examples/bookstore_demo.py
"""

from repro.apps.bookstore import build_bookstore
from repro.edge import EdgeTopology, EdgeTopologyConfig
from repro.sim import Simulator

NUM_EDGES = 9
STOCK = {"bestseller": 40, "rare-signed-copy": 3, "paperback": 200}


def main() -> None:
    sim = Simulator(seed=2005)
    topology = EdgeTopology(sim, EdgeTopologyConfig(num_edges=NUM_EDGES, num_clients=1))
    # Small escrow batches: with nine edges sharing 40 bestsellers, big
    # allotments would strand stock at idle edges (see A-series note in
    # tests/test_bookstore.py::test_never_oversell_under_contention).
    store = build_bookstore(
        topology, stock=dict(STOCK), order_flush_ms=500.0, inventory_batch=3
    )

    def log(text: str) -> None:
        print(f"[{sim.now:9.0f} ms] {text}")

    def day_at_the_shop():
        # -- morning: the origin publishes the catalog ------------------
        store.catalog_origin.publish("bestseller", {"title": "Dual Quorums", "price": 24})
        store.catalog_origin.publish("rare-signed-copy", {"title": "Leases", "price": 250})
        store.catalog_origin.publish("paperback", {"title": "Epidemics", "price": 9})
        yield sim.sleep(500.0)
        version, data = yield from store.service_for_edge(4).browse("bestseller")
        log(f"edge 4 browses the bestseller: v{version} {data}")

        # -- a price change propagates ----------------------------------
        store.catalog_origin.publish("bestseller", {"title": "Dual Quorums", "price": 19})
        yield sim.sleep(500.0)
        version, data = yield from store.service_for_edge(7).browse("bestseller")
        log(f"edge 7 sees the sale price: v{version} price={data['price']}")

        # -- shoppers at every edge --------------------------------------
        log("shoppers arrive at all nine edges ...")
        shoppers = []
        for k in range(NUM_EDGES):
            def shop(k=k):
                svc = store.service_for_edge(k)
                for i in range(4):
                    item = "paperback" if i % 2 else "bestseller"
                    result = yield from svc.purchase(f"cust-{k}", item)
                    assert result.ok, result.reason
                    yield sim.sleep(sim.rng.uniform(50, 400))

            shoppers.append(sim.spawn(shop()))
        for proc in shoppers:
            yield proc
        log(f"{store.units_sold()} units sold so far")

        # -- the collector: everyone wants the rare signed copy ----------
        log("five collectors race for the 3 rare signed copies ...")
        outcomes = []

        def collector(k):
            result = yield from store.service_for_edge(k).purchase(f"collector-{k}", "rare-signed-copy")
            outcomes.append((k, result.ok))

        racers = [sim.spawn(collector(k)) for k in (1, 4, 8, 5, 2)]
        for proc in racers:
            yield proc
        winners = [k for k, ok in outcomes if ok]
        log(f"collectors who got one: {sorted(winners)} "
            f"({len(outcomes) - len(winners)} politely declined — sold out)")
        # escrow guards the global count; remaining copies may sit in the
        # winner's edge allotment rather than spread across cities

        # -- the travelling customer ------------------------------------
        log("cust-0 flies from city 0 to city 6 and keeps shopping ...")
        svc_away = store.service_for_edge(6)
        result = yield from svc_away.purchase("cust-0", "paperback")
        assert result.ok
        profile = yield from svc_away.get_profile("cust-0")
        log(f"their profile followed them: {len(profile['history'])} orders "
            f"in the history, last item {profile['last_item']!r}")

        # -- closing time -------------------------------------------------
        yield sim.sleep(10_000.0)  # let the order streams drain

    sim.run_process(day_at_the_shop(), until=3_600_000.0)
    sim.run(until=sim.now + 10_000.0)

    print("\n--- closing audit -------------------------------------------")
    sold = store.units_sold()
    accepted = store.orders_accepted()
    received = store.orders_received()
    print(f"  units sold            : {sold}")
    print(f"  orders accepted/edge  : {accepted}")
    print(f"  orders at the origin  : {received}")
    print(f"  rare copies remaining : "
          f"{store.inventory_origin.remaining('rare-signed-copy')} at origin + "
          f"{sum(s.inventory.approximate_count('rare-signed-copy') for s in store.services)} escrowed")
    assert received == accepted, "orders lost or duplicated!"
    for item, initial in STOCK.items():
        escrowed = sum(s.inventory.approximate_count(item) for s in store.services)
        sold_item = sum(
            o["quantity"] for o in store.order_origin.orders() if o["item"] == item
        )
        assert sold_item + escrowed + store.inventory_origin.remaining(item) == initial, item
    print("  invariants            : no overselling, exactly-once orders ✓")


if __name__ == "__main__":
    main()
