#!/usr/bin/env python3
"""The paper's motivating workload: TPC-W customer profiles at the edge.

Deploys three replication protocols on the paper's nine-edge-server
topology (8 ms LAN / 86 ms client WAN / 80 ms server WAN) and drives
each with the TPC-W profile-object workload — 95 % reads / 5 % writes on
per-customer objects, each customer routed to their closest edge server,
with a small fraction of travelling customers.

Printed per protocol: mean/median/p95 response time, DQVL's hit rate,
messages per request, and whether the recorded history satisfies
regular semantics.  This is the paper's Figure 6(a) story told on a
realistic multi-object workload.

Run:  python examples/tpcw_edge_service.py
"""

from repro.consistency import History, check_regular, staleness_report
from repro.edge import PROTOCOL_DEPLOYERS, EdgeTopology, EdgeTopologyConfig
from repro.harness import format_table
from repro.sim import Simulator
from repro.workload import closed_loop, tpcw_profile_stream

NUM_EDGES = 9
NUM_CLIENTS = 3
OPS_PER_CLIENT = 300
CUSTOMERS_PER_CLIENT = 40
SEED = 7


def run_protocol(name: str):
    sim = Simulator(seed=SEED)
    topology = EdgeTopology(
        sim, EdgeTopologyConfig(num_edges=NUM_EDGES, num_clients=NUM_CLIENTS)
    )
    deployment = PROTOCOL_DEPLOYERS[name](topology)

    history = History()
    processes = []
    for c in range(NUM_CLIENTS):
        client = deployment.direct_client(c)
        stream = tpcw_profile_stream(
            sim.rng,
            client_index=c,
            num_clients=NUM_CLIENTS,
            customers_per_client=CUSTOMERS_PER_CLIENT,
            affinity=0.98,
        )
        processes.append(
            sim.spawn(closed_loop(sim, client, stream, history, OPS_PER_CLIENT))
        )
    sim.run(until=3_600_000.0)
    if not all(p.done for p in processes):
        raise RuntimeError(f"{name}: workload did not finish")

    from repro.harness import summarize

    summary = summarize(history)
    violations = check_regular(history)
    staleness = staleness_report(history)
    messages = deployment.protocol_message_count() / max(len(history), 1)
    return summary, violations, staleness, messages


def main() -> None:
    rows = []
    notes = []
    for name in ("dqvl", "majority", "primary_backup", "rowa", "rowa_async"):
        summary, violations, staleness, messages = run_protocol(name)
        rows.append(
            [
                name,
                round(summary.overall.mean, 1),
                round(summary.overall.median, 1),
                round(summary.overall.p95, 1),
                f"{summary.read_hit_rate:.2f}" if summary.read_hit_rate is not None else "-",
                round(messages, 1),
                len(violations),
            ]
        )
        if violations:
            notes.append(
                f"  {name}: {len(violations)} regular-semantics violations, "
                f"{staleness.stale_reads} stale reads "
                f"(max staleness {staleness.max_staleness_ms:.0f} ms)"
            )

    print(
        format_table(
            ["protocol", "mean ms", "median ms", "p95 ms", "hit rate",
             "msgs/req", "violations"],
            rows,
            title=(
                "TPC-W profile objects, 9 edge servers, 3 clients, "
                f"{OPS_PER_CLIENT} ops/client (95% reads)"
            ),
        )
    )
    if notes:
        print("\nconsistency notes:")
        print("\n".join(notes))
    print(
        "\nReading: DQVL serves nearly all reads from the local edge cache\n"
        "(like the weakly consistent ROWA-Async) while recording zero\n"
        "regular-semantics violations (like the slow strong baselines)."
    )


if __name__ == "__main__":
    main()
