"""Persistence of minimised violating schedules (the MC corpus).

Mirrors :mod:`repro.chaos.shrink`'s corpus format: one small JSON file
per repro under ``tests/mc_corpus/``, carrying the
:class:`~repro.mc.runner.McRunConfig`, the minimised choice list, and
the expected violation types.  ``tests/test_mc_corpus.py`` replays each
repro weakened (the violation must reappear, byte-identically across
replays) and healthy (the same schedule must pass), so a shrunk
schedule keeps witnessing its bug for as long as the corpus lives.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import List, Optional, Tuple

from .explore import ExploreResult
from .runner import McRunConfig, McRunResult, run_schedule

__all__ = [
    "MC_REPRO_FORMAT",
    "save_mc_repro",
    "load_mc_repro",
    "replay_mc_repro",
]

#: format 2 embeds the full :meth:`ExploreResult.to_json_obj` payload
#: under ``"explore"``; the load keys (``config``/``choices``/
#: ``expected_types``) are unchanged, so format-1 files stay loadable.
MC_REPRO_FORMAT = 2

_LOADABLE_FORMATS = (1, 2)


def save_mc_repro(
    result: ExploreResult, directory: str, name: Optional[str] = None
) -> str:
    """Write an exploration's shrunk witness as JSON; returns the path."""
    if result.shrunk is None:
        raise ValueError("exploration found no violation; nothing to save")
    witness = result.shrunk
    config = result.config
    if name is None:
        name = "_".join(
            part for part in (
                config.protocol,
                f"seed{config.seed}",
                config.weaken or "healthy",
            ) if part
        )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    choices = witness.choices
    while choices and choices[-1] == 0:
        choices.pop()
    payload = {
        "format": MC_REPRO_FORMAT,
        "description": (
            f"{sum(1 for c in choices if c)}-deviation schedule for protocol "
            f"{config.protocol!r}"
            + (f" weakened by {config.weaken!r}" if config.weaken else "")
            + f", found by {result.strategy!r} in {result.runs} runs"
            + f"; expected violation types: {witness.expected_types}"
        ),
        "config": dataclasses.asdict(config),
        "choices": choices,
        "expected_types": witness.expected_types,
        "explore": result.to_json_obj(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_mc_repro(path: str) -> Tuple[McRunConfig, List[int], List[str]]:
    """Read a corpus repro back as (config, choices, expected_types)."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") not in _LOADABLE_FORMATS:
        raise ValueError(
            f"{path}: unsupported mc repro format {payload.get('format')!r}"
        )
    known = {f.name for f in dataclasses.fields(McRunConfig)}
    config = McRunConfig(**{
        k: v for k, v in payload["config"].items() if k in known
    })
    return config, list(payload["choices"]), list(payload.get("expected_types", []))


def replay_mc_repro(path: str, *, healthy: bool = False) -> McRunResult:
    """Re-execute a corpus repro; *healthy* strips the weakener (the
    same schedule must then pass)."""
    config, choices, _expected = load_mc_repro(path)
    if healthy:
        config = dataclasses.replace(config, weaken="")
    return run_schedule(config, choices)
