"""One controlled run: config + choice list → deterministic outcome.

:func:`run_schedule` is the explorer's unit of work — the analogue of
:func:`repro.chaos.campaign.run_chaos`, but instead of a fault schedule
the input is a list of scheduling *choices* replayed through a
:class:`~repro.mc.controller.RecordingController` (see that module for
the decision-point format).  Everything else is shared with the chaos
engine: the deployment builder, the weakener registry, the workload
streams, and the full oracle stack —
:class:`~repro.chaos.invariants.InvariantMonitor` online plus
:func:`~repro.consistency.regular.check_regular` over the recorded
history, plus a liveness check (all client workloads must finish within
the time limit).

A run is a pure function of ``(config, choices)``: the simulator seed,
the per-purpose network RNG streams, and the workload streams are all
derived from the config, and every remaining ordering freedom is pinned
by the controller.  :attr:`McRunResult.trace_text` serialises the
observable outcome (decisions, operations, violations, stats) as
canonical JSON, so "replaying twice is byte-identical" is a plain
string comparison.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..chaos.campaign import (
    EVENTUALLY_CONSISTENT,
    ChaosRunConfig,
    _build_deployment,
    _server_nodes,
)
from ..chaos.invariants import InvariantMonitor
from ..chaos.nemesis import nemesis_rng
from ..chaos.weaken import apply_weakener
from ..consistency.history import History, Op
from ..consistency.regular import check_regular
from ..sim.kernel import Simulator
from ..workload.generators import BernoulliOpStream, ZipfKeyChooser
from ..workload.runner import closed_loop
from .controller import Decision, RecordingController
from .liveness import LivenessMonitor
from .por import CountingRandom

__all__ = ["McRunConfig", "McRunResult", "run_schedule"]


@dataclass(frozen=True)
class McRunConfig:
    """Everything that determines one controlled run (hashable).

    The defaults describe a deliberately *small, tense* scenario: two
    IQS/OQS edges means the IQS read quorum needs both servers, so a
    single lapsed volume lease already breaks Condition C; the lease
    length is short relative to the workload and ``defer_ms`` exceeds
    it, so deferring one renewal round trip is enough to force a lapse.
    Small state spaces are what make bounded exploration bite.
    """

    protocol: str = "dqvl"
    seed: int = 0
    #: named bug injection from :mod:`repro.chaos.weaken` ('' = healthy)
    weaken: str = ""
    num_edges: int = 2
    num_clients: int = 2
    ops_per_client: int = 6
    write_ratio: float = 0.35
    num_keys: int = 2
    lease_length_ms: float = 400.0
    max_drift: float = 0.0
    jitter_ms: float = 0.0
    client_max_attempts: Optional[int] = 6
    #: delivery-deferral quantum; > lease_length_ms so one deferred
    #: renewal round trip lets a volume lease lapse
    defer_ms: float = 650.0
    #: highest deferral multiple (each delivery has max_defer+1 choices)
    max_defer: int = 1
    #: hard stop; an unfinished workload here is a liveness violation
    time_limit_ms: float = 60_000.0

    def __post_init__(self) -> None:
        # Reuse the chaos config's validation (protocol / weakener names,
        # topology sizes); the instance itself is rebuilt in run_schedule.
        self._chaos_config()

    def scenario(self):
        """The shared scenario core (see :mod:`repro.scenario`)."""
        from ..scenario import ScenarioConfig

        return ScenarioConfig.from_mc(self)

    def _chaos_config(self) -> ChaosRunConfig:
        # The mc run borrows the chaos engine's deployment builder and
        # validation; the conversion goes through the shared scenario
        # core instead of hand-copying each field.  The QRPC schedule is
        # pinned to the fixed model parameters (not derived from the
        # topology's delay distribution like chaos runs): the checker
        # controls timing itself, and recorded schedules replay against
        # these exact retransmission instants.
        return self.scenario().to_chaos(
            nemeses=(), horizon_ms=1.0,
            qrpc_initial_timeout_ms=400.0, qrpc_max_timeout_ms=6_400.0,
        )


@dataclass
class McRunResult:
    """Outcome of one controlled run."""

    config: McRunConfig
    #: every decision the controller made, in order (the full schedule)
    decisions: List[Decision]
    violations: List[Dict[str, Any]]
    stats: Dict[str, Any] = field(default_factory=dict)
    ops: List[Op] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def choices(self) -> List[int]:
        return [d.chosen for d in self.decisions]

    @property
    def expected_types(self) -> List[str]:
        return sorted({v["type"] for v in self.violations})

    @property
    def trace_text(self) -> str:
        """Canonical JSON of the observable outcome (byte-comparable)."""
        payload = {
            "config": dataclasses.asdict(self.config),
            "decisions": [[d.kind, d.n, d.chosen] for d in self.decisions],
            "ops": [
                [
                    op.kind, op.key, op.value,
                    [op.lc.counter, op.lc.node_id],
                    op.start, op.end, op.client, op.ok, op.hit, op.server,
                ]
                for op in self.ops
            ],
            "violations": self.violations,
            "stats": self.stats,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: step size for the sliced run loop (ms); coarse is fine — it only
#: bounds how long the simulation idles after the last client finishes
_SLICE_MS = 1_000.0


def run_schedule(
    config: McRunConfig,
    choices: Sequence[int] = (),
    *,
    fallback: Optional[Callable[[str, int], int]] = None,
    track_footprints: bool = False,
) -> McRunResult:
    """Execute one run under ``(config, choices)``; returns the outcome.

    *choices* is replayed as the forced prefix; *fallback* decides
    beyond it (``None`` = canonical order — this is how a recorded
    schedule is replayed: force everything, run deterministic).

    *track_footprints* additionally records per-alternative POR
    footprints on every ``event`` decision (see :mod:`repro.mc.por`);
    the run itself — choices, decision order, trace bytes — is
    identical with it on or off.
    """
    chaos_config = config._chaos_config()
    sim = Simulator(seed=config.seed)
    controller = RecordingController(
        choices,
        fallback,
        defer_ms=config.defer_ms,
        max_defer=config.max_defer,
        track_footprints=track_footprints,
    )
    sim.controller = controller
    if track_footprints:
        # Same seed, same draw sequence, plus a draw counter: lets the
        # controller poison the footprint of any event that consumed
        # shared randomness (see por.py's soundness notes).
        sim.rng = CountingRandom(config.seed)
        controller.rng = sim.rng
    topology, deployment = _build_deployment(chaos_config, sim)
    servers = _server_nodes(deployment)

    monitor: Optional[InvariantMonitor] = None
    liveness: Optional[LivenessMonitor] = None
    if config.protocol in ("dqvl", "basic_dq"):
        # max_violations=1: the explorer asks "does this schedule
        # violate?", and a single witness answers it.
        monitor = InvariantMonitor(sim, max_violations=1)
        monitor.attach(topology.network, servers)
        liveness = LivenessMonitor(
            sim, defer_ms=config.defer_ms, max_defer=config.max_defer
        )
        liveness.attach(topology.network, servers)
    apply_weakener(deployment, config.weaken)

    history = History()
    keys = [f"k{i}" for i in range(config.num_keys)]
    procs = []
    for c in range(config.num_clients):
        client = deployment.direct_client(c)
        stream = BernoulliOpStream(
            nemesis_rng(config.seed, f"workload-{c}"),
            ZipfKeyChooser(keys, s=0.9),
            config.write_ratio,
            label=f"c{c}-",
        )
        procs.append(
            sim.spawn(
                closed_loop(sim, client, stream, history, config.ops_per_client),
                # Named after the direct client's node id so POR
                # footprints attribute the workload loop to its client.
                name=f"appsc{c}",
            )
        )

    # Sliced run with early exit: lease-renewal keepers re-arm timers
    # forever, so "run until the queue drains" never returns — instead
    # stop as soon as every client workload is done (plus one slice so
    # in-flight invalidation acks land and the monitor sees the final
    # state), or at the liveness limit.
    deadline = config.time_limit_ms
    while sim.now < deadline:
        sim.run(until=min(sim.now + _SLICE_MS, deadline))
        if all(p.done for p in procs):
            sim.run(until=min(sim.now + _SLICE_MS, deadline))
            break
    if monitor is not None:
        monitor.check_now()
    controller.finalize()

    violations: List[Dict[str, Any]] = []
    for c, proc in enumerate(procs):
        if not proc.done:
            violations.append({
                "type": "liveness",
                "node": f"appsc{c}",
                "detail": (
                    f"client {c}'s workload did not finish by "
                    f"{config.time_limit_ms:.0f} ms (stuck operation)"
                ),
            })
    if config.protocol not in EVENTUALLY_CONSISTENT:
        for v in check_regular(history):
            violations.append({
                "type": "regular",
                "key": v.read.key,
                "node": v.read.client,
                "time": v.read.end,
                "detail": str(v),
            })
    if monitor is not None:
        for obj in monitor.report():
            violations.append({"type": "invariant", **obj})
    if liveness is not None:
        liveness.finalize(
            history.ops,
            client_max_attempts=config.client_max_attempts,
            lease_length_ms=config.lease_length_ms,
        )
        violations.extend(liveness.report())

    stats = {
        "ops_recorded": len(history),
        "ops_failed": len(history.failures()),
        "messages": topology.network.stats.total_messages,
        "messages_dropped": topology.network.stats.dropped,
        "decisions": len(controller.decisions),
        "deviations": sum(1 for d in controller.decisions if d.chosen != 0),
        "sim_time_ms": sim.now,
    }
    return McRunResult(
        config=config,
        decisions=list(controller.decisions),
        violations=violations,
        stats=stats,
        ops=list(history.ops),
    )
