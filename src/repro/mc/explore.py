"""Bounded schedule-space exploration strategies.

Two strategies over the choice tree defined by
:mod:`repro.mc.controller`, both budgeted in *runs* (full re-executions
— the explorer is stateless, in the stateless-model-checking tradition:
no snapshotting, every schedule is re-run from the initial state, which
the sub-10ms runs make affordable):

``dfs``
    Depth-first enumeration of choice prefixes.  Each completed run
    records the decision sequence it actually took; every decision made
    *beyond* the forced prefix spawns sibling prefixes (same choices up
    to that point, one alternative flipped) up to ``max_depth`` decision
    points deep.  Exhaustive for small depths, systematic always; with
    the canonical order as choice 0 the first run is exactly the
    untouched schedule.

``walk``
    Seeded random walks: each run deviates from the canonical choice
    with probability ``p_deviate`` at every decision point.  Covers deep
    decision points that DFS's frontier cannot reach within budget —
    for lease-boundary bugs (many delivery deferrals needed across the
    run) this is usually the strategy that finds the witness.

A violating run's choice list is then minimised with the chaos engine's
generic :func:`~repro.chaos.shrink.ddmin` over its *non-canonical*
choices: each probe re-runs the schedule with only a subset of the
deviations kept (everything else forced canonical), so the shrunk
witness is always re-validated by execution, never assumed.

Partial-order reduction
-----------------------
With ``por=True`` the DFS records per-alternative footprints
(:mod:`repro.mc.por`) and skips the sibling branch for any alternative
``k`` that provably commutes with every slot member before it: the
canonical continuation executes the remaining slot members
consecutively in offer order (new same-instant work appends *behind*
them), so branching to ``k`` first differs from the canonical run by
exactly the adjacent swaps ``k`` commutes across — and the entry is
still offered (and branched to) at the very next decision of the
canonical subtree, so only redundant orderings are dropped (sleep-set
style).  :func:`crosscheck_por` verifies pruned-vs-full outcome-set
equality by exhaustive enumeration on small configs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..chaos.shrink import ddmin
from .controller import Decision, walk_policy
from .por import independent
from .runner import McRunConfig, McRunResult, run_schedule

__all__ = [
    "ExploreResult",
    "explore",
    "explore_sweep_edges",
    "crosscheck_por",
    "shrink_choices",
]

STRATEGIES = ("dfs", "walk")


@dataclass
class ExploreResult:
    """Outcome of one exploration: a witness, or a clean budget."""

    config: McRunConfig
    strategy: str
    #: runs actually executed (<= budget)
    runs: int
    #: first violating run, or None if the budget stayed clean
    witness: Optional[McRunResult] = None
    #: witness after ddmin over its deviations (== witness when clean)
    shrunk: Optional[McRunResult] = None
    #: extra runs spent shrinking
    shrink_runs: int = 0
    #: sibling branches skipped by partial-order reduction (dfs+por only)
    pruned: int = 0

    @property
    def ok(self) -> bool:
        return self.witness is None

    # -- serialisation -----------------------------------------------------
    #
    # A run is a pure function of (config, choices), so an ExploreResult
    # serialises as config + choice lists; deserialisation *re-executes*
    # the choices, which both reconstructs the full McRunResults and
    # re-validates the witness (never trust stored outcomes).

    def to_json_obj(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "config": dataclasses.asdict(self.config),
            "strategy": self.strategy,
            "runs": self.runs,
            "shrink_runs": self.shrink_runs,
            "pruned": self.pruned,
            "witness": None,
            "shrunk": None,
        }
        for name in ("witness", "shrunk"):
            result = getattr(self, name)
            if result is not None:
                choices = result.choices
                while choices and choices[-1] == 0:
                    choices.pop()
                obj[name] = {
                    "choices": choices,
                    "expected_types": result.expected_types,
                }
        return obj

    def to_json(self) -> str:
        return json.dumps(self.to_json_obj(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "ExploreResult":
        known = {f.name for f in dataclasses.fields(McRunConfig)}
        config = McRunConfig(**{
            k: v for k, v in obj["config"].items() if k in known
        })
        results: Dict[str, Optional[McRunResult]] = {}
        for name in ("witness", "shrunk"):
            stored = obj.get(name)
            results[name] = (
                None if stored is None
                else run_schedule(config, stored["choices"])
            )
        return cls(
            config=config,
            strategy=obj["strategy"],
            runs=obj["runs"],
            witness=results["witness"],
            shrunk=results["shrunk"],
            shrink_runs=obj.get("shrink_runs", 0),
            pruned=obj.get("pruned", 0),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExploreResult":
        return cls.from_json_obj(json.loads(text))


def _por_prunable(decision: Decision, alt: int) -> bool:
    """May the DFS skip branching to *alt* at this (canonical) decision?

    Only ``event`` decisions taken canonically and carrying footprints
    qualify; *alt* is skipped iff it commutes with every slot member
    offered before it (see the module docstring for why that is the
    exact set of redundant siblings).
    """
    fps = decision.footprints
    if (
        decision.kind != "event"
        or fps is None
        or decision.chosen != 0
        or not 0 < alt < len(fps)
    ):
        return False
    fp = fps[alt]
    return all(independent(fp, fps[j]) for j in range(alt))


def explore(
    config: McRunConfig,
    *,
    strategy: str = "walk",
    budget: int = 500,
    p_deviate: float = 0.15,
    max_depth: int = 40,
    shrink: bool = True,
    shrink_budget: int = 200,
    por: bool = False,
) -> ExploreResult:
    """Search for a violating schedule under a run budget.

    Stops at the first violation (one witness is all the corpus needs);
    *shrink* then minimises it with :func:`shrink_choices`.  *max_depth*
    bounds how deep into the decision sequence DFS branches — beyond it
    runs continue canonically, keeping the frontier (and memory) small.
    *por* enables partial-order reduction for the ``dfs`` strategy
    (module docstring); the ``walk`` strategy ignores it.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if budget < 1:
        raise ValueError("budget must be at least 1")

    runs = 0
    pruned = 0
    witness: Optional[McRunResult] = None

    if strategy == "walk":
        for index in range(budget):
            runs += 1
            # Run 0 deviates nowhere: the canonical schedule is always
            # probed first, so choice-free bugs cost exactly one run.
            fallback = (
                None if index == 0 else
                walk_policy(f"mc-walk:{config.seed}:{index}", p_deviate)
            )
            result = run_schedule(config, (), fallback=fallback)
            if result.violations:
                witness = result
                break
    else:  # dfs
        stack: List[List[int]] = [[]]
        seen: set = set()
        while stack and runs < budget:
            prefix = stack.pop()
            key = tuple(prefix)
            if key in seen:
                continue
            seen.add(key)
            runs += 1
            result = run_schedule(config, prefix, track_footprints=por)
            if result.violations:
                witness = result
                break
            # Branch on every decision taken canonically beyond the
            # forced prefix, shallowest last so it is popped first
            # (depth-first in schedule order).
            decisions = result.decisions
            upper = min(len(decisions), max_depth)
            for i in range(upper - 1, len(prefix) - 1, -1):
                base = [d.chosen for d in decisions[:i]]
                for alt in range(decisions[i].n - 1, -1, -1):
                    if alt == decisions[i].chosen:
                        continue
                    if por and _por_prunable(decisions[i], alt):
                        pruned += 1
                        continue
                    stack.append(base + [alt])

    shrunk = witness
    shrink_runs = 0
    if witness is not None and shrink:
        shrunk, shrink_runs = shrink_choices(
            config, witness, max_runs=shrink_budget
        )
    return ExploreResult(
        config=config,
        strategy=strategy,
        runs=runs,
        witness=witness,
        shrunk=shrunk,
        shrink_runs=shrink_runs,
        pruned=pruned,
    )


def explore_sweep_edges(
    config: McRunConfig,
    edges: Sequence[int],
    *,
    por: bool = True,
    **explore_kwargs: Any,
) -> List[ExploreResult]:
    """Run :func:`explore` once per cluster size in *edges*.

    The scaling entry point behind ``repro explore --sweep-edges A:B``:
    decision-point counts grow superlinearly with ``num_edges``, so the
    sweep defaults to ``por=True`` to keep 3–5-edge DQVL within smoke
    budgets.  Stops early at the first size that yields a witness (a
    bug found small is a bug found).
    """
    results: List[ExploreResult] = []
    for num_edges in edges:
        sized = dataclasses.replace(config, num_edges=num_edges)
        result = explore(sized, por=por, **explore_kwargs)
        results.append(result)
        if not result.ok:
            break
    return results


def _outcome_signature(result: McRunResult) -> Tuple:
    """Order-insensitive digest of a run's observable outcome.

    Commuting two same-instant events preserves every op record and
    violation but may flip the order two clients' completions were
    *appended* to the history, so ops and violations are compared as
    sorted multisets.
    """
    ops = tuple(sorted(
        (
            op.kind, op.key, op.value,
            (op.lc.counter, op.lc.node_id),
            op.start, op.end, op.client, op.ok, op.hit, op.server,
        )
        for op in result.ops
    ))
    violations = tuple(sorted(
        json.dumps(v, sort_keys=True) for v in result.violations
    ))
    return (ops, violations)


def _dfs_outcomes(
    config: McRunConfig,
    *,
    max_depth: int,
    budget: int,
    por: bool,
) -> Tuple[Set[Tuple], int, int, bool]:
    """Exhaustively enumerate DFS outcomes (no stop at violations).

    Returns ``(signatures, runs, pruned, exhausted)``; *exhausted* is
    False when the budget cut the frontier, which voids a comparison.
    """
    stack: List[List[int]] = [[]]
    seen: set = set()
    signatures: Set[Tuple] = set()
    runs = 0
    pruned = 0
    while stack and runs < budget:
        prefix = stack.pop()
        key = tuple(prefix)
        if key in seen:
            continue
        seen.add(key)
        runs += 1
        result = run_schedule(config, prefix, track_footprints=por)
        signatures.add(_outcome_signature(result))
        decisions = result.decisions
        upper = min(len(decisions), max_depth)
        for i in range(upper - 1, len(prefix) - 1, -1):
            base = [d.chosen for d in decisions[:i]]
            for alt in range(decisions[i].n - 1, -1, -1):
                if alt == decisions[i].chosen:
                    continue
                if por and _por_prunable(decisions[i], alt):
                    pruned += 1
                    continue
                stack.append(base + [alt])
    return signatures, runs, pruned, not stack


def crosscheck_por(
    config: McRunConfig,
    *,
    max_depth: int = 6,
    budget: int = 5_000,
) -> Dict[str, Any]:
    """Exhaustively verify pruned-vs-full equivalence on a small config.

    Enumerates the full DFS and the POR DFS to exhaustion at the same
    depth and compares the *sets* of outcome signatures — POR is sound
    iff every outcome the full search can reach survives the pruning.
    Returns a report dict; ``report["equivalent"]`` is the verdict.
    Raises if the budget did not cover either search (an inconclusive
    cross-check must not pass silently).
    """
    full, full_runs, _p, full_done = _dfs_outcomes(
        config, max_depth=max_depth, budget=budget, por=False
    )
    reduced, por_runs, pruned, por_done = _dfs_outcomes(
        config, max_depth=max_depth, budget=budget, por=True
    )
    if not (full_done and por_done):
        raise ValueError(
            f"crosscheck budget {budget} too small to exhaust depth "
            f"{max_depth} (full done: {full_done}, por done: {por_done})"
        )
    return {
        "equivalent": full == reduced,
        "full_runs": full_runs,
        "por_runs": por_runs,
        "pruned": pruned,
        "outcomes": len(full),
        "missing": len(full - reduced),
        "extra": len(reduced - full),
    }


def shrink_choices(
    config: McRunConfig,
    witness: McRunResult,
    *,
    max_runs: int = 200,
) -> Tuple[McRunResult, int]:
    """Minimise a violating run's deviations with ddmin.

    The items are the indices of the witness's non-canonical choices;
    a probe keeps only a subset of them (all other decisions forced to
    canonical ``0``) and re-runs.  Because flipping an early choice can
    shift every later decision point, positional replay of a subset is
    only a *guess* — which is exactly why each probe is judged by
    re-execution.  Returns the minimised (re-validated) result and the
    number of probe runs spent.
    """
    choices = witness.choices
    deviations = [i for i, c in enumerate(choices) if c != 0]
    runs = 0
    memo: Dict[Tuple[int, ...], McRunResult] = {}

    def rerun(kept: Sequence[int]) -> McRunResult:
        nonlocal runs
        key = tuple(sorted(kept))
        if key not in memo:
            runs += 1
            kept_set = set(key)
            forced = [
                c if i in kept_set else 0 for i, c in enumerate(choices)
            ]
            # Trim trailing canonical choices — they are the default.
            while forced and forced[-1] == 0:
                forced.pop()
            memo[key] = run_schedule(config, forced)
        return memo[key]

    if not deviations:
        return witness, 0

    kept = ddmin(
        deviations,
        lambda subset: bool(rerun(subset).violations),
        should_continue=lambda: runs < max_runs,
    )
    result = rerun(kept)
    if not result.violations:  # pragma: no cover - ddmin guarantees this
        return witness, runs
    return result, runs
