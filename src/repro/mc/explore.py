"""Bounded schedule-space exploration strategies.

Two strategies over the choice tree defined by
:mod:`repro.mc.controller`, both budgeted in *runs* (full re-executions
— the explorer is stateless, in the stateless-model-checking tradition:
no snapshotting, every schedule is re-run from the initial state, which
the sub-10ms runs make affordable):

``dfs``
    Depth-first enumeration of choice prefixes.  Each completed run
    records the decision sequence it actually took; every decision made
    *beyond* the forced prefix spawns sibling prefixes (same choices up
    to that point, one alternative flipped) up to ``max_depth`` decision
    points deep.  Exhaustive for small depths, systematic always; with
    the canonical order as choice 0 the first run is exactly the
    untouched schedule.

``walk``
    Seeded random walks: each run deviates from the canonical choice
    with probability ``p_deviate`` at every decision point.  Covers deep
    decision points that DFS's frontier cannot reach within budget —
    for lease-boundary bugs (many delivery deferrals needed across the
    run) this is usually the strategy that finds the witness.

A violating run's choice list is then minimised with the chaos engine's
generic :func:`~repro.chaos.shrink.ddmin` over its *non-canonical*
choices: each probe re-runs the schedule with only a subset of the
deviations kept (everything else forced canonical), so the shrunk
witness is always re-validated by execution, never assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..chaos.shrink import ddmin
from .controller import walk_policy
from .runner import McRunConfig, McRunResult, run_schedule

__all__ = ["ExploreResult", "explore", "shrink_choices"]

STRATEGIES = ("dfs", "walk")


@dataclass
class ExploreResult:
    """Outcome of one exploration: a witness, or a clean budget."""

    config: McRunConfig
    strategy: str
    #: runs actually executed (<= budget)
    runs: int
    #: first violating run, or None if the budget stayed clean
    witness: Optional[McRunResult] = None
    #: witness after ddmin over its deviations (== witness when clean)
    shrunk: Optional[McRunResult] = None
    #: extra runs spent shrinking
    shrink_runs: int = 0

    @property
    def ok(self) -> bool:
        return self.witness is None


def explore(
    config: McRunConfig,
    *,
    strategy: str = "walk",
    budget: int = 500,
    p_deviate: float = 0.15,
    max_depth: int = 40,
    shrink: bool = True,
    shrink_budget: int = 200,
) -> ExploreResult:
    """Search for a violating schedule under a run budget.

    Stops at the first violation (one witness is all the corpus needs);
    *shrink* then minimises it with :func:`shrink_choices`.  *max_depth*
    bounds how deep into the decision sequence DFS branches — beyond it
    runs continue canonically, keeping the frontier (and memory) small.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if budget < 1:
        raise ValueError("budget must be at least 1")

    runs = 0
    witness: Optional[McRunResult] = None

    if strategy == "walk":
        for index in range(budget):
            runs += 1
            # Run 0 deviates nowhere: the canonical schedule is always
            # probed first, so choice-free bugs cost exactly one run.
            fallback = (
                None if index == 0 else
                walk_policy(f"mc-walk:{config.seed}:{index}", p_deviate)
            )
            result = run_schedule(config, (), fallback=fallback)
            if result.violations:
                witness = result
                break
    else:  # dfs
        stack: List[List[int]] = [[]]
        seen: set = set()
        while stack and runs < budget:
            prefix = stack.pop()
            key = tuple(prefix)
            if key in seen:
                continue
            seen.add(key)
            runs += 1
            result = run_schedule(config, prefix)
            if result.violations:
                witness = result
                break
            # Branch on every decision taken canonically beyond the
            # forced prefix, shallowest last so it is popped first
            # (depth-first in schedule order).
            decisions = result.decisions
            upper = min(len(decisions), max_depth)
            for i in range(upper - 1, len(prefix) - 1, -1):
                base = [d.chosen for d in decisions[:i]]
                for alt in range(decisions[i].n - 1, -1, -1):
                    if alt != decisions[i].chosen:
                        stack.append(base + [alt])

    shrunk = witness
    shrink_runs = 0
    if witness is not None and shrink:
        shrunk, shrink_runs = shrink_choices(
            config, witness, max_runs=shrink_budget
        )
    return ExploreResult(
        config=config,
        strategy=strategy,
        runs=runs,
        witness=witness,
        shrunk=shrunk,
        shrink_runs=shrink_runs,
    )


def shrink_choices(
    config: McRunConfig,
    witness: McRunResult,
    *,
    max_runs: int = 200,
) -> Tuple[McRunResult, int]:
    """Minimise a violating run's deviations with ddmin.

    The items are the indices of the witness's non-canonical choices;
    a probe keeps only a subset of them (all other decisions forced to
    canonical ``0``) and re-runs.  Because flipping an early choice can
    shift every later decision point, positional replay of a subset is
    only a *guess* — which is exactly why each probe is judged by
    re-execution.  Returns the minimised (re-validated) result and the
    number of probe runs spent.
    """
    choices = witness.choices
    deviations = [i for i, c in enumerate(choices) if c != 0]
    runs = 0
    memo: Dict[Tuple[int, ...], McRunResult] = {}

    def rerun(kept: Sequence[int]) -> McRunResult:
        nonlocal runs
        key = tuple(sorted(kept))
        if key not in memo:
            runs += 1
            kept_set = set(key)
            forced = [
                c if i in kept_set else 0 for i, c in enumerate(choices)
            ]
            # Trim trailing canonical choices — they are the default.
            while forced and forced[-1] == 0:
                forced.pop()
            memo[key] = run_schedule(config, forced)
        return memo[key]

    if not deviations:
        return witness, 0

    kept = ddmin(
        deviations,
        lambda subset: bool(rerun(subset).violations),
        should_continue=lambda: runs < max_runs,
    )
    result = rerun(kept)
    if not result.violations:  # pragma: no cover - ddmin guarantees this
        return witness, runs
    return result, runs
