"""Recording/replaying schedule controllers.

The kernel exposes two kinds of *decision points* to an installed
:class:`~repro.sim.kernel.ScheduleController`:

``event``
    More than one event is runnable at the current simulated instant
    (same-instant ready-lane work and due heap timers); the controller
    picks which executes next.  The canonical kernel order is choice
    ``0`` at every such point.

``deliver``
    The network asks :meth:`message_delay` for every accepted message;
    the controller may *defer* the delivery by ``k * defer_ms`` for a
    choice ``k`` in ``0 .. max_defer``.  Choice ``0`` keeps the delay
    model's draw untouched.  Deferral is legal behaviour under the
    paper's asynchronous network model (arbitrary delay and reordering),
    so any safety violation reached through it is a real protocol bug.

A whole schedule is therefore just a list of small integers — one per
decision point, in the deterministic order the points occur.  The
:class:`RecordingController` replays a *forced* prefix of such choices,
asks an optional fallback policy beyond it (the random-walk strategy),
defaults to canonical ``0``, and records every decision it made, which
is what lets the explorer branch (DFS), shrink (ddmin over non-zero
choices), and persist byte-replayable repros.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.kernel import ScheduleController
from .por import Footprint, footprint_of

__all__ = ["Decision", "RecordingController", "walk_policy"]


@dataclass(frozen=True)
class Decision:
    """One recorded scheduling decision.

    ``kind`` is ``"event"`` or ``"deliver"``, ``n`` the number of
    alternatives that were available, ``chosen`` the index taken
    (``0 <= chosen < n``; ``0`` is always the canonical choice).

    ``footprints`` is only populated on ``event`` decisions of runs
    recorded with ``track_footprints=True``: the POR footprint of each
    slot alternative, in offer order.  It is *metadata for the DFS* —
    deliberately excluded from serialized repros so witness bytes are
    identical with and without tracking.
    """

    kind: str
    n: int
    chosen: int
    footprints: Optional[Tuple[Footprint, ...]] = None


class RecordingController(ScheduleController):
    """Replays forced choices, then consults a fallback policy, recording
    everything.

    Parameters
    ----------
    forced:
        Choice prefix to replay.  Values are clamped into range, so a
        prefix recorded against a slightly different run can never crash
        the kernel — it just degenerates toward the canonical schedule.
    fallback:
        ``(kind, n) -> int`` policy consulted past the forced prefix;
        ``None`` means canonical (always ``0``).
    defer_ms:
        Deferral quantum for delivery choices.
    max_defer:
        Highest deferral multiple, so each delivery point has
        ``max_defer + 1`` alternatives.
    track_footprints:
        Record per-alternative POR footprints on ``event`` decisions
        (see :mod:`repro.mc.por`).  Opts the controller into the
        kernel's slot-aware protocol (``wants_slot``), which also makes
        the kernel publish ownership labels (``Simulator.exec_label``)
        so sleeps/processes inherit their owning node.  Choices and
        decision order are identical either way.
    """

    def __init__(
        self,
        forced: Sequence[int] = (),
        fallback: Optional[Callable[[str, int], int]] = None,
        *,
        defer_ms: float = 650.0,
        max_defer: int = 1,
        track_footprints: bool = False,
    ) -> None:
        if defer_ms < 0:
            raise ValueError("defer_ms must be non-negative")
        if max_defer < 0:
            raise ValueError("max_defer must be non-negative")
        self.forced = list(forced)
        self.fallback = fallback
        self.defer_ms = defer_ms
        self.max_defer = max_defer
        self.decisions: List[Decision] = []
        self.track_footprints = track_footprints
        self.wants_slot = track_footprints
        #: the run's shared RNG when it is a :class:`CountingRandom`;
        #: bound by the runner so draws can be attributed to events.
        self.rng: Any = None
        # decision index -> mutable footprint list for that slot
        self._slot_fps: Dict[int, List[Footprint]] = {}
        # id(entry) -> (entry ref, [(decision index, position)]) — strong
        # refs guard against id() reuse after an entry is garbage-collected
        self._entry_sites: Dict[int, Tuple[Any, List[Tuple[int, int]]]] = {}
        self._executing: Optional[tuple] = None
        self._draws_before: int = 0

    @property
    def choices(self) -> List[int]:
        """The decisions as a plain choice list (replay input format)."""
        return [d.chosen for d in self.decisions]

    def _choose(self, kind: str, n: int) -> int:
        index = len(self.decisions)
        if index < len(self.forced):
            chosen = self.forced[index]
        elif self.fallback is not None:
            chosen = self.fallback(kind, n)
        else:
            chosen = 0
        chosen = max(0, min(int(chosen), n - 1))
        self.decisions.append(Decision(kind, n, chosen))
        return chosen

    # -- ScheduleController interface --------------------------------------

    def choose_event(self, n: int) -> int:
        return self._choose("event", n)

    def choose_event_slot(self, slot: List[tuple]) -> int:
        if not self.track_footprints:
            return self._choose("event", len(slot))
        index = len(self.decisions)
        fps = [footprint_of(entry) for entry in slot]
        self._slot_fps[index] = fps
        for pos, entry in enumerate(slot):
            self._entry_sites.setdefault(id(entry), (entry, []))[1].append(
                (index, pos)
            )
        return self._choose("event", len(slot))

    def note_executed(self, entry: tuple) -> Optional[str]:
        self._flush_rng()
        self._executing = entry
        if self.rng is not None:
            self._draws_before = self.rng.draws
        return footprint_of(entry).node

    def finalize(self) -> None:
        """Fold recorded footprints into :attr:`decisions`.

        Call once after the run completes.  Flushes the pending RNG
        attribution for the last executed event, then rebuilds each
        tracked ``event`` decision with its footprint tuple.
        """
        self._flush_rng()
        self._executing = None
        for index, fps in self._slot_fps.items():
            self.decisions[index] = dataclasses.replace(
                self.decisions[index], footprints=tuple(fps)
            )

    def _flush_rng(self) -> None:
        """Attribute shared-RNG draws to the event that just executed.

        An event that consumed randomness conflicts with every *other*
        rng-consuming event through the shared draw sequence (swapping
        two drawers reassigns their draws), so its footprint is marked
        ``rng`` at every decision that offered it (the sites map
        remembers each offer); non-drawing events still commute with it.
        """
        entry = self._executing
        if entry is None or self.rng is None:
            return
        if self.rng.draws == self._draws_before:
            return
        _ref, sites = self._entry_sites.get(id(entry), (None, ()))
        for index, pos in sites:
            fp = self._slot_fps[index][pos]
            self._slot_fps[index][pos] = dataclasses.replace(fp, rng=True)

    def message_delay(self, message: Any, delay: float) -> float:
        if self.max_defer == 0:
            return delay
        return delay + self._choose("deliver", self.max_defer + 1) * self.defer_ms


def walk_policy(seed_text: str, p_deviate: float) -> Callable[[str, int], int]:
    """A seeded random-walk fallback: deviate from canonical with
    probability *p_deviate*, picking uniformly among the non-canonical
    alternatives.  String seeding keeps the walk process-stable.
    """
    rng = random.Random(seed_text)

    def policy(_kind: str, n: int) -> int:
        if n > 1 and rng.random() < p_deviate:
            return rng.randrange(1, n)
        return 0

    return policy
