"""Recording/replaying schedule controllers.

The kernel exposes two kinds of *decision points* to an installed
:class:`~repro.sim.kernel.ScheduleController`:

``event``
    More than one event is runnable at the current simulated instant
    (same-instant ready-lane work and due heap timers); the controller
    picks which executes next.  The canonical kernel order is choice
    ``0`` at every such point.

``deliver``
    The network asks :meth:`message_delay` for every accepted message;
    the controller may *defer* the delivery by ``k * defer_ms`` for a
    choice ``k`` in ``0 .. max_defer``.  Choice ``0`` keeps the delay
    model's draw untouched.  Deferral is legal behaviour under the
    paper's asynchronous network model (arbitrary delay and reordering),
    so any safety violation reached through it is a real protocol bug.

A whole schedule is therefore just a list of small integers — one per
decision point, in the deterministic order the points occur.  The
:class:`RecordingController` replays a *forced* prefix of such choices,
asks an optional fallback policy beyond it (the random-walk strategy),
defaults to canonical ``0``, and records every decision it made, which
is what lets the explorer branch (DFS), shrink (ddmin over non-zero
choices), and persist byte-replayable repros.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..sim.kernel import ScheduleController

__all__ = ["Decision", "RecordingController", "walk_policy"]


@dataclass(frozen=True)
class Decision:
    """One recorded scheduling decision.

    ``kind`` is ``"event"`` or ``"deliver"``, ``n`` the number of
    alternatives that were available, ``chosen`` the index taken
    (``0 <= chosen < n``; ``0`` is always the canonical choice).
    """

    kind: str
    n: int
    chosen: int


class RecordingController(ScheduleController):
    """Replays forced choices, then consults a fallback policy, recording
    everything.

    Parameters
    ----------
    forced:
        Choice prefix to replay.  Values are clamped into range, so a
        prefix recorded against a slightly different run can never crash
        the kernel — it just degenerates toward the canonical schedule.
    fallback:
        ``(kind, n) -> int`` policy consulted past the forced prefix;
        ``None`` means canonical (always ``0``).
    defer_ms:
        Deferral quantum for delivery choices.
    max_defer:
        Highest deferral multiple, so each delivery point has
        ``max_defer + 1`` alternatives.
    """

    def __init__(
        self,
        forced: Sequence[int] = (),
        fallback: Optional[Callable[[str, int], int]] = None,
        *,
        defer_ms: float = 650.0,
        max_defer: int = 1,
    ) -> None:
        if defer_ms < 0:
            raise ValueError("defer_ms must be non-negative")
        if max_defer < 0:
            raise ValueError("max_defer must be non-negative")
        self.forced = list(forced)
        self.fallback = fallback
        self.defer_ms = defer_ms
        self.max_defer = max_defer
        self.decisions: List[Decision] = []

    @property
    def choices(self) -> List[int]:
        """The decisions as a plain choice list (replay input format)."""
        return [d.chosen for d in self.decisions]

    def _choose(self, kind: str, n: int) -> int:
        index = len(self.decisions)
        if index < len(self.forced):
            chosen = self.forced[index]
        elif self.fallback is not None:
            chosen = self.fallback(kind, n)
        else:
            chosen = 0
        chosen = max(0, min(int(chosen), n - 1))
        self.decisions.append(Decision(kind, n, chosen))
        return chosen

    # -- ScheduleController interface --------------------------------------

    def choose_event(self, n: int) -> int:
        return self._choose("event", n)

    def message_delay(self, message: Any, delay: float) -> float:
        if self.max_defer == 0:
            return delay
        return delay + self._choose("deliver", self.max_defer + 1) * self.defer_ms


def walk_policy(seed_text: str, p_deviate: float) -> Callable[[str, int], int]:
    """A seeded random-walk fallback: deviate from canonical with
    probability *p_deviate*, picking uniformly among the non-canonical
    alternatives.  String seeding keeps the walk process-stable.
    """
    rng = random.Random(seed_text)

    def policy(_kind: str, n: int) -> int:
        if n > 1 and rng.random() < p_deviate:
            return rng.randrange(1, n)
        return 0

    return policy
