"""Partial-order reduction: event footprints and the independence relation.

Two events due at the *same simulated instant* have no causal order —
the kernel's canonical ``(time, seq)`` tie-break is an arbitrary choice,
and the explorer's DFS branches on every permutation of it.  Most of
those permutations are equivalent: in a message-passing system, two
same-instant events that run on **different nodes** and touch **disjoint
state** commute — executing them in either order reaches the same
successor state (Mazurkiewicz trace equivalence; Flanagan/Godefroid-style
dynamic POR adapts it to stateless search).  This module computes, per
slot entry, a conservative *footprint* of what the event may touch, and
an :func:`independent` relation over footprints; the DFS then prunes the
sibling branch of every commuting pair (sleep-set style, see
``repro.mc.explore``).

Soundness rests on three pillars, documented in DESIGN.md §13:

* **Static footprints** — a message delivery touches its destination
  node, its message/reply tokens, and the object/volume keys named in
  the payload; a node timer (``Node.after``, RPC timeouts) touches its
  node; a process resumption touches the node that spawned the process
  (via the ownership label threaded through ``Simulator.exec_label``).
  Anything unrecognised is *universal* — it commutes with nothing.
* **Dynamic RNG poisoning** — the one piece of genuinely shared state
  invisible to static footprints is ``Simulator.rng`` (e.g. DQVL's
  sticky quorum sampling draws from it on the read path).  The runner
  installs :class:`CountingRandom` — bit-identical draws, plus a draw
  counter — and the recording controller retroactively marks any event
  that consumed randomness as universal in *every* decision that
  offered it, so reorderings that would shift the shared draw sequence
  are never pruned.
* **An empirical cross-check** — ``repro.mc.explore.crosscheck_por``
  exhaustively compares pruned vs full DFS outcome sets on small
  configs (also a test and a CI step).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..sim.kernel import Future, Process
from ..sim.messages import Message

__all__ = [
    "Footprint",
    "UNIVERSAL",
    "footprint_of",
    "independent",
    "CountingRandom",
]

_EMPTY: FrozenSet = frozenset()


@dataclass(frozen=True)
class Footprint:
    """What one slot event may read or write.

    ``node``
        The single node (or process-ownership label) whose local state
        the event touches; ``None`` only for universal footprints.
    ``tokens``
        Message identifiers consumed/correlated by the event (a
        delivery's ``msg_id`` and ``reply_to``), so a request and its
        own reply never commute even across nodes.
    ``keys``
        Object/volume names the event's payload names — lease and data
        keys.  Events sharing a key are kept ordered even on different
        nodes, which also keeps the *observability* of the run's oracles
        stable under reordering.
    ``rng``
        The event consumed draws from the shared simulator RNG.  Two
        such events conflict with *each other* (swapping them reassigns
        which draws each receives) but commute freely with non-drawing
        events, whose swap leaves the draw sequence untouched.  Set
        dynamically by the recording controller, never statically.
    ``universal``
        True = may touch anything; never commutes.
    """

    node: Optional[str] = None
    tokens: FrozenSet[int] = _EMPTY
    keys: FrozenSet[str] = _EMPTY
    rng: bool = False
    universal: bool = False


UNIVERSAL = Footprint(universal=True)


def _message_footprint(message: Message) -> Footprint:
    tokens = {message.msg_id}
    if message.reply_to is not None:
        tokens.add(message.reply_to)
    keys = set()
    payload = message.payload or {}
    for name in ("obj", "vol", "key"):
        value = payload.get(name)
        if isinstance(value, str):
            keys.add(value)
    for pair in payload.get("delayed") or ():
        if isinstance(pair, (tuple, list)) and pair and isinstance(pair[0], str):
            keys.add(pair[0])
    return Footprint(
        node=message.dst, tokens=frozenset(tokens), keys=frozenset(keys)
    )


def footprint_of(entry: tuple) -> Footprint:
    """Conservative footprint of one slot entry ``(timer, fn, args)``.

    Recognised shapes:

    * callbacks tagged with ``_mc_node`` (``Node.after`` guards, RPC
      timeout timers) → that node;
    * ``Network._deliver(message)`` → the destination node plus the
      message's tokens and payload keys;
    * ``Future.resolve`` of a plain future (sleep wake-ups, combinator
      futures) → the future's ownership label if known, else the future
      itself (resolving only completes the future and *enqueues* its
      callbacks — distinct futures commute);
    * ``Process._step`` / ``Process._resume`` → the process's ownership
      label (the node executing when it was spawned), falling back to
      the ``node_id`` prefix of its name.

    Everything else is :data:`UNIVERSAL`.
    """
    _timer, fn, args = entry
    node = getattr(fn, "_mc_node", None)
    if node is not None:
        return Footprint(node=node)
    owner = getattr(fn, "__self__", None)
    if owner is None:
        # Future callbacks are fired as plain closures with the future
        # as the sole argument (``Future._fire``'s fast lane); the
        # closure was registered by — and runs code of — the node that
        # created the future, i.e. its ownership label.
        if args and isinstance(args[0], Future):
            label = args[0].label
            return Footprint(node=label) if label else UNIVERSAL
        return UNIVERSAL
    name = getattr(fn, "__name__", "")
    if name == "_deliver" and args and isinstance(args[0], Message):
        return _message_footprint(args[0])
    if isinstance(owner, Process):
        label = owner.label or str(owner.name).split(":", 1)[0]
        return Footprint(node=label) if label else UNIVERSAL
    if isinstance(owner, Future):
        label = owner.label
        if label is None and name == "resolve":
            # An unlabelled plain future (e.g. a sleep created at setup
            # time): resolving it touches only the future object and the
            # ready deque, so distinct futures commute; the callbacks it
            # enqueues become their own (separately footprinted) events.
            label = f"future-{id(owner)}"
        return Footprint(node=label) if label else UNIVERSAL
    return UNIVERSAL


def independent(a: Footprint, b: Footprint) -> bool:
    """True iff the two events provably commute.

    Requires: neither universal, not both RNG-drawing, distinct known
    nodes, disjoint message tokens, disjoint lease/object keys.
    """
    if a.universal or b.universal:
        return False
    if a.rng and b.rng:
        return False
    if a.node is None or b.node is None or a.node == b.node:
        return False
    if a.tokens and b.tokens and not a.tokens.isdisjoint(b.tokens):
        return False
    if a.keys and b.keys and not a.keys.isdisjoint(b.keys):
        return False
    return True


class CountingRandom(random.Random):
    """``random.Random`` with a draw counter and bit-identical output.

    Every primitive the Mersenne generator exposes funnels through
    ``random()`` or ``getrandbits()`` (``Random._randbelow`` uses
    ``getrandbits``), so counting those two covers ``uniform``,
    ``randrange``, ``sample``, ``choice``, shuffles — everything the
    simulation draws.  The values are untouched, so swapping this in
    for ``Simulator.rng`` cannot change a run.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.draws = 0

    def random(self) -> float:
        self.draws += 1
        return super().random()

    def getrandbits(self, k: int) -> int:
        self.draws += 1
        return super().getrandbits(k)
