"""Schedule-space exploration (a mini model checker) for the sim kernel.

Where the chaos engine (:mod:`repro.chaos`) samples *fault schedules*
randomly, this package searches *event schedules* systematically: a
:class:`~repro.sim.kernel.ScheduleController` installed on the kernel
decides which of several same-instant events runs next and how long
each network delivery is deferred, turning every run into a replayable
list of small integers.  Bounded DFS and seeded random walks search
that choice space under a run budget, a per-schedule oracle stack
(invariant monitor + regular-register history checker + liveness)
judges each schedule, and violating schedules are ddmin-minimised and
persisted to ``tests/mc_corpus/`` as byte-replayable repros.

Entry points: :func:`~repro.mc.explore.explore` (library),
``repro explore`` (CLI), DESIGN.md §12 (the design notes).
"""

from .controller import Decision, RecordingController, walk_policy
from .corpus import (
    MC_REPRO_FORMAT,
    load_mc_repro,
    replay_mc_repro,
    save_mc_repro,
)
from .explore import STRATEGIES, ExploreResult, explore, shrink_choices
from .runner import McRunConfig, McRunResult, run_schedule

__all__ = [
    "Decision",
    "RecordingController",
    "walk_policy",
    "McRunConfig",
    "McRunResult",
    "run_schedule",
    "STRATEGIES",
    "ExploreResult",
    "explore",
    "shrink_choices",
    "MC_REPRO_FORMAT",
    "save_mc_repro",
    "load_mc_repro",
    "replay_mc_repro",
]
