"""Schedule-space exploration (a mini model checker) for the sim kernel.

Where the chaos engine (:mod:`repro.chaos`) samples *fault schedules*
randomly, this package searches *event schedules* systematically: a
:class:`~repro.sim.kernel.ScheduleController` installed on the kernel
decides which of several same-instant events runs next and how long
each network delivery is deferred, turning every run into a replayable
list of small integers.  Bounded DFS (optionally with partial-order
reduction, :mod:`repro.mc.por`) and seeded random walks search that
choice space under a run budget, a per-schedule oracle stack (invariant
monitor + regular-register history checker + workload liveness +
schedule-aware liveness oracles, :mod:`repro.mc.liveness`) judges each
schedule, and violating schedules are ddmin-minimised and persisted to
``tests/mc_corpus/`` as byte-replayable repros.

Stable facade
-------------
This module is the package's public API; the signatures below are kept
backward-compatible (new parameters arrive keyword-only with defaults):

``run_schedule(config, choices=(), *, fallback=None, track_footprints=False) -> McRunResult``
    Execute one controlled run; a pure function of ``(config, choices)``.

``explore(config, *, strategy="walk", budget=500, p_deviate=0.15,
max_depth=40, shrink=True, shrink_budget=200, por=False) -> ExploreResult``
    Bounded search for a violating schedule; ``por=True`` enables
    partial-order reduction for the ``dfs`` strategy.

``explore_sweep_edges(config, edges, *, por=True, **explore_kwargs) -> list[ExploreResult]``
    One exploration per cluster size; early-stops on the first witness.

``crosscheck_por(config, *, max_depth=6, budget=5000) -> dict``
    Exhaustive pruned-vs-full outcome-set equivalence check.

``ExploreResult``
    Carries ``runs``/``pruned``/``witness``/``shrunk``; round-trips via
    ``to_json()``/``from_json()`` (deserialisation re-executes the
    stored choices, so outcomes are always re-validated).

``save_mc_repro / load_mc_repro / replay_mc_repro``
    Corpus persistence (format :data:`MC_REPRO_FORMAT`).

Entry points: ``repro explore`` (CLI), DESIGN.md §12–§13 (design notes).
"""

from .controller import Decision, RecordingController, walk_policy
from .corpus import (
    MC_REPRO_FORMAT,
    load_mc_repro,
    replay_mc_repro,
    save_mc_repro,
)
from .explore import (
    STRATEGIES,
    ExploreResult,
    crosscheck_por,
    explore,
    explore_sweep_edges,
    shrink_choices,
)
from .liveness import LivenessMonitor
from .por import UNIVERSAL, Footprint, footprint_of, independent
from .runner import McRunConfig, McRunResult, run_schedule

__all__ = [
    "Decision",
    "RecordingController",
    "walk_policy",
    "McRunConfig",
    "McRunResult",
    "run_schedule",
    "STRATEGIES",
    "ExploreResult",
    "explore",
    "explore_sweep_edges",
    "crosscheck_por",
    "shrink_choices",
    "Footprint",
    "UNIVERSAL",
    "footprint_of",
    "independent",
    "LivenessMonitor",
    "MC_REPRO_FORMAT",
    "save_mc_repro",
    "load_mc_repro",
    "replay_mc_repro",
]
