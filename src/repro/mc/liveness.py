"""Schedule-aware liveness oracles for controlled runs.

The explorer's original liveness check is blunt: "every client workload
finished before ``time_limit_ms``".  Plenty of livelocks hide under it —
a renewal keeper that silently abandons a volume (the read path papers
over it by renewing on demand), an invalidation that stays queued
forever because its acknowledgement is lost, a client that completes but
only after far more retry rounds than its attempt budget allows.  This
module adds three oracles that watch *how* the run made progress:

``liveness_keeper``
    The proactive renewal keeper must re-acquire after every lapse while
    the volume has read interest.  A healthy keeper loop only ever exits
    *cold* (interest window elapsed); the OQS node emits a
    ``keeper_exit`` trace event with a ``warm`` flag, and a warm exit is
    reported the moment it happens (streaming, no end-of-run scan).

``liveness_inval``
    No delayed invalidation stays pending forever under fair delivery.
    "Fair" is judged structurally, so the oracle cannot fire on a merely
    slow or end-truncated schedule: a violation needs (a) a queue entry
    still pending when the run ends, (b) at least
    :data:`MIN_GRANT_SHIPS` renewal grants that shipped *that exact
    entry* to the holder, (c) no such grant still in flight, and (d) no
    ``vl_ack`` from the holder still in flight.  The mc network neither
    drops nor reorders away messages (deferral only delays them), so
    "shipped and nothing in flight" means *delivered*; a healthy holder
    acknowledges every delivered shipment with a clock covering the
    entry, and a delivered ack clears it — so three delivered shipments
    with the entry still pending prove the renew/ship/apply cycle
    repeats without ever draining: a fixpoint.

``liveness_rounds``
    No client operation may take longer than its retry budget allows:
    with ``client_max_attempts`` set, an operation's wall-clock span is
    bounded by the sum of its QRPC retransmission timeouts (two
    client-facing quorum calls per op) plus lease/deferral slack.  An op
    that *completed* but exceeded the bound means some layer retried
    past the budget.  Checked over the recorded history at finalize.

Fairness assumptions are documented in DESIGN.md §13.  All three
oracles are passive and deterministic: on a healthy schedule (any
schedule the explorer generates, including adversarial deferrals) they
report nothing, which keeps corpus replays byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..chaos.invariants import TapTracer
from ..core.dqvl import DqvlIqsNode, DqvlOqsNode
from ..sim.kernel import Simulator
from ..sim.messages import Message

__all__ = ["LivenessMonitor", "MIN_GRANT_SHIPS", "rounds_bound"]

#: how many times a delayed-invalidation queue must have been shipped to
#: its holder before the pending-forever oracle may conclude the channel
#: is fair (one ship could race the run's end; three demonstrate a loop)
MIN_GRANT_SHIPS = 3

#: kinds whose replies carry a volume-lease grant (and the delayed queue)
_GRANT_REPLY_KINDS = ("vl_renew_reply", "vlobj_renew_reply")


def rounds_bound(
    max_attempts: int,
    *,
    initial_timeout_ms: float = 400.0,
    backoff: float = 2.0,
    max_timeout_ms: float = 6_400.0,
    lease_length_ms: float = 400.0,
    defer_ms: float = 650.0,
    max_defer: int = 1,
) -> float:
    """Upper bound on one client op's wall-clock span (ms).

    A client op issues at most two sequential client-facing quorum calls
    (logical-clock read + write, or validate + serve), each retrying on
    the exponential QRPC schedule for at most *max_attempts* rounds.
    The final reply may additionally ride out one lease lapse and the
    controller's worst-case delivery deferrals; a fixed 1 s pad absorbs
    processing delays.
    """
    total = 0.0
    timeout = initial_timeout_ms
    for _ in range(max_attempts):
        total += min(timeout, max_timeout_ms)
        timeout *= backoff
    return 2.0 * total + lease_length_ms + 2.0 * max_defer * defer_ms + 1_000.0


class LivenessMonitor:
    """Streams the keeper oracle during the run; closes the other two at
    :meth:`finalize`.  Attach once, after the deployment is built."""

    def __init__(self, sim: Simulator, *, defer_ms: float = 650.0, max_defer: int = 1) -> None:
        self.sim = sim
        self.defer_ms = defer_ms
        self.max_defer = max_defer
        self.violations: List[Dict[str, Any]] = []
        self._iqs_nodes: List[DqvlIqsNode] = []
        self._oqs_by_id: Dict[str, DqvlOqsNode] = {}
        # (iqs, holder, obj, lc) -> grant replies that shipped this entry
        self._entry_ships: Dict[Tuple[str, str, str, Any], int] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, network, nodes: List[Any]) -> None:
        for node in nodes:
            if isinstance(node, DqvlIqsNode):
                self._iqs_nodes.append(node)
            elif isinstance(node, DqvlOqsNode):
                self._oqs_by_id[node.node_id] = node
                node.tracer = TapTracer(node.tracer, self._on_trace)
        network.add_tap(self._on_message)

    def _on_trace(self, source: str, category: str, details: Dict[str, Any]) -> None:
        if category == "keeper_exit" and details.get("warm"):
            self.violations.append({
                "type": "liveness_keeper",
                "node": source,
                "time": self.sim.now,
                "detail": (
                    f"renewal keeper for volume {details.get('vol')!r} exited "
                    f"while the volume still had read interest (warm exit at "
                    f"{self.sim.now:.1f} ms); a healthy keeper only stops cold"
                ),
            })

    def _on_message(self, message: Message) -> None:
        if message.kind in _GRANT_REPLY_KINDS:
            for obj, lc in message.payload.get("delayed") or ():
                key = (message.src, message.dst, obj, lc)
                self._entry_ships[key] = self._entry_ships.get(key, 0) + 1

    # -- finalize-time oracles ---------------------------------------------

    def _settling_in_flight(self, iqs_node: str, holder: str) -> bool:
        """Could an undelivered message still settle this queue?

        True when a delayed-carrying grant reply (*iqs_node* → *holder*)
        or a ``vl_ack`` (*holder* → *iqs_node*) sits in the simulator's
        queues — the normal drain cycle is then merely mid-flight, not
        stuck.
        """
        for timer, fn, args in self.sim.iter_pending():
            if timer is not None and getattr(timer, "cancelled", False):
                continue
            if getattr(fn, "__name__", "") != "_deliver" or not args:
                continue
            msg = args[0]
            if not isinstance(msg, Message):
                continue
            if msg.kind == "vl_ack" and msg.src == holder and msg.dst == iqs_node:
                return True
            if (
                msg.kind in _GRANT_REPLY_KINDS
                and msg.src == iqs_node
                and msg.dst == holder
                and msg.payload.get("delayed")
            ):
                return True
        return False

    def _check_pending_invals(self) -> None:
        for iqs in self._iqs_nodes:
            for (volume, holder) in sorted(iqs.leases._delayed):
                queue = iqs.leases.pending_delayed(volume, holder)
                stuck = {
                    obj: lc
                    for obj, lc in queue.items()
                    if self._entry_ships.get((iqs.node_id, holder, obj, lc), 0)
                    >= MIN_GRANT_SHIPS
                }
                if not stuck:
                    continue  # never shipped enough: fairness not shown
                if self._settling_in_flight(iqs.node_id, holder):
                    continue
                ships = min(
                    self._entry_ships[(iqs.node_id, holder, obj, lc)]
                    for obj, lc in stuck.items()
                )
                self.violations.append({
                    "type": "liveness_inval",
                    "node": iqs.node_id,
                    "time": self.sim.now,
                    "detail": (
                        f"delayed invalidations {sorted(stuck)} for volume "
                        f"{volume!r} stayed pending toward {holder} despite "
                        f"each being shipped in >= {ships} delivered renewal "
                        "grants with no ack or grant left in flight — the "
                        "queue can never drain"
                    ),
                })

    def _check_rounds(self, ops, max_attempts: Optional[int], lease_length_ms: float) -> None:
        if max_attempts is None or not ops:
            return
        config = None
        if self._oqs_by_id:
            config = next(iter(self._oqs_by_id.values())).config
        bound = rounds_bound(
            max_attempts,
            initial_timeout_ms=getattr(config, "qrpc_initial_timeout_ms", 400.0),
            backoff=getattr(config, "qrpc_backoff", 2.0),
            max_timeout_ms=getattr(config, "qrpc_max_timeout_ms", 6_400.0),
            lease_length_ms=lease_length_ms,
            defer_ms=self.defer_ms,
            max_defer=self.max_defer,
        )
        for op in ops:
            span = op.end - op.start
            if span > bound:
                self.violations.append({
                    "type": "liveness_rounds",
                    "node": op.client,
                    "time": op.end,
                    "detail": (
                        f"{op.kind} on {op.key!r} took {span:.0f} ms, beyond "
                        f"the {bound:.0f} ms bound implied by "
                        f"client_max_attempts={max_attempts} — some layer "
                        "retried past its budget"
                    ),
                })

    def finalize(
        self,
        ops=(),
        *,
        client_max_attempts: Optional[int] = None,
        lease_length_ms: float = 400.0,
    ) -> None:
        """Run the end-of-run oracles (pending invals, retry rounds)."""
        self._check_pending_invals()
        self._check_rounds(ops, client_max_attempts, lease_length_ms)

    def report(self) -> List[Dict[str, Any]]:
        """Violations as sorted, JSON-ready dicts (deterministic)."""
        return sorted(
            self.violations,
            key=lambda v: (v["time"], v["node"], v["type"], v["detail"]),
        )
