"""The chaos campaign runner.

One *chaos run* = one :class:`ChaosRunConfig`: build a protocol
deployment on the edge topology, compose a seed-deterministic fault
schedule from the configured nemeses, drive a client workload through
the storm, and check the outcome three ways:

* **history** — :func:`~repro.consistency.regular.check_regular` over
  every recorded operation (``rowa_async`` is exempt: it is eventually
  consistent *by design*, so the run records a staleness report
  instead);
* **invariants** — the online
  :class:`~repro.chaos.invariants.InvariantMonitor` (lease-serve
  safety, epoch/logical-clock monotonicity);
* **liveness** — every fault window ends by the nemesis horizon, so the
  system always gets a fault-free tail; a client workload still
  unfinished at the (generous) time limit is itself a violation.

A run is a pure function of its config: the simulator, the workload
streams, and every nemesis draw from seeds derived with ``zlib.crc32``,
so the same config produces the identical
:class:`ChaosRunResult` in any process.  That makes runs cacheable and
fan-out-able through :func:`~repro.harness.sweeps.run_sweep`
(:func:`run_campaign`), and makes every reported violation replayable
from its config alone.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..consistency.history import READ, History
from ..consistency.regular import check_regular, staleness_report
from ..core.config import DqvlConfig
from ..edge.deployments import PROTOCOL_DEPLOYERS, Deployment
from ..edge.topology import EdgeTopology, EdgeTopologyConfig
from ..resilience import ResilienceConfig, derive_qrpc_timeouts
from ..sim.clock import DriftingClock
from ..sim.kernel import Simulator
from ..workload.generators import BernoulliOpStream, ZipfKeyChooser
from ..workload.runner import closed_loop
from .faults import FaultSchedule
from .invariants import InvariantMonitor
from .nemesis import NEMESES, NemesisContext, build_schedule, nemesis_rng
from .weaken import WEAKENERS, apply_weakener

__all__ = ["ChaosRunConfig", "ChaosRunResult", "run_chaos", "run_campaign"]

#: protocols whose histories are *not* held to regular semantics
EVENTUALLY_CONSISTENT = ("rowa_async",)


@dataclass(frozen=True)
class ChaosRunConfig:
    """Everything that determines one chaos run (picklable, hashable)."""

    protocol: str = "dqvl"
    seed: int = 0
    nemeses: Tuple[str, ...] = ("crash_storm", "rolling_partition", "loss_burst")
    num_edges: int = 3
    num_clients: int = 3
    ops_per_client: int = 40
    write_ratio: float = 0.3
    num_keys: int = 4
    #: all fault windows end by this time; the workload runs past it
    horizon_ms: float = 10_000.0
    lease_length_ms: float = 1_200.0
    max_drift: float = 0.01
    #: uniform extra network jitter (enables message reordering)
    jitter_ms: float = 5.0
    #: finite so unreachable quorums reject instead of blocking forever
    client_max_attempts: Optional[int] = 4
    #: named bug injection from :mod:`repro.chaos.weaken` ('' = healthy)
    weaken: str = ""
    sample_interval_ms: float = 100.0
    #: hard stop; a workload still running here is a liveness violation
    time_limit_ms: float = 600_000.0
    #: opt-in observability: when set, the result carries deterministic
    #: JSONL and Chrome-trace exports of the run's causal span tree,
    #: with the fault schedule rendered as annotation windows
    trace: bool = False
    #: how clients reach storage: ``direct`` places a service client on
    #: the app host (the historical campaign setup); ``frontend`` drives
    #: Figure 1's full path through the edge front ends — required for
    #: degraded-mode serving, which lives in the front end
    mode: str = "direct"
    #: enable the adaptive resilience layer (failure detectors, hedged
    #: QRPCs, circuit-breaker degraded reads / shed writes, post-crash
    #: catch-up); implies front-end semantics for degradation, so pair
    #: it with ``mode="frontend"`` for a meaningful comparison
    resilience: bool = False
    #: QRPC retransmission schedule override; ``None`` derives both from
    #: the topology's delay distribution (jitter-aware worst-case RTT)
    qrpc_initial_timeout_ms: Optional[float] = None
    qrpc_max_timeout_ms: Optional[float] = None
    #: declarative IQS/OQS quorum shapes (canonical spec strings, e.g.
    #: ``"grid:3x3"``; kept as strings so the config stays hashable);
    #: ``None`` = the paper's defaults
    iqs_spec: Optional[str] = None
    oqs_spec: Optional[str] = None
    #: advertised bound on a degraded read's age of information
    degraded_max_staleness_ms: float = 8_000.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nemeses", tuple(self.nemeses))
        if self.protocol not in PROTOCOL_DEPLOYERS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {sorted(PROTOCOL_DEPLOYERS)}"
            )
        if self.mode not in ("direct", "frontend"):
            raise ValueError(f"mode must be 'direct' or 'frontend', not {self.mode!r}")
        if self.resilience and self.protocol not in ("dqvl", "basic_dq"):
            raise ValueError(
                "the resilience layer is wired for the dual-quorum protocols "
                f"(dqvl, basic_dq), not {self.protocol!r}"
            )
        if (self.qrpc_initial_timeout_ms is not None
                or self.qrpc_max_timeout_ms is not None):
            if self.protocol not in ("dqvl", "basic_dq"):
                raise ValueError(
                    "qrpc timeout overrides only reach the dual-quorum "
                    f"deployments, not {self.protocol!r}"
                )
        if self.iqs_spec is not None or self.oqs_spec is not None:
            if self.protocol not in ("dqvl", "basic_dq"):
                raise ValueError(
                    "iqs_spec/oqs_spec only reach the dual-quorum "
                    f"deployments, not {self.protocol!r}"
                )
            from ..quorum.spec import QuorumSpec

            for name in ("iqs_spec", "oqs_spec"):
                value = getattr(self, name)
                if value is not None:
                    object.__setattr__(
                        self, name, str(QuorumSpec.parse(value))
                    )
        if (self.qrpc_initial_timeout_ms is not None
                and self.qrpc_initial_timeout_ms <= 0):
            raise ValueError("qrpc_initial_timeout_ms must be positive")
        if self.qrpc_max_timeout_ms is not None:
            floor = self.qrpc_initial_timeout_ms or 0.0
            if self.qrpc_max_timeout_ms < floor:
                raise ValueError(
                    "qrpc_max_timeout_ms must be >= qrpc_initial_timeout_ms"
                )
        if self.degraded_max_staleness_ms <= 0:
            raise ValueError("degraded_max_staleness_ms must be positive")
        for name in self.nemeses:
            if name not in NEMESES:
                raise ValueError(
                    f"unknown nemesis {name!r}; choose from {sorted(NEMESES)}"
                )
        if self.weaken and self.weaken not in WEAKENERS:
            raise ValueError(
                f"unknown weakener {self.weaken!r}; "
                f"choose from {sorted(WEAKENERS)}"
            )
        if self.num_edges < 1 or self.num_clients < 1:
            raise ValueError("need at least one edge and one client")
        if self.horizon_ms <= 0 or self.horizon_ms >= self.time_limit_ms:
            raise ValueError("need 0 < horizon_ms < time_limit_ms")


@dataclass
class ChaosRunResult:
    """Outcome of one chaos run."""

    config: ChaosRunConfig
    schedule: FaultSchedule
    violations: List[Dict[str, Any]]
    stats: Dict[str, Any] = field(default_factory=dict)
    #: exports populated when ``config.trace`` is set (strings so they
    #: survive the sweep's process/cache boundary)
    trace_jsonl: Optional[str] = None
    trace_chrome: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "config": dataclasses.asdict(self.config),
            "schedule": self.schedule.to_json_obj(),
            "violations": self.violations,
            "stats": self.stats,
        }


def _build_deployment(config: ChaosRunConfig, sim: Simulator):
    topology = EdgeTopology(
        sim,
        EdgeTopologyConfig(
            num_edges=config.num_edges,
            num_clients=config.num_clients,
            jitter_ms=config.jitter_ms,
        ),
    )
    deployer = PROTOCOL_DEPLOYERS[config.protocol]
    if config.protocol in ("dqvl", "basic_dq"):
        initial, cap = derive_qrpc_timeouts(topology.config)
        if config.qrpc_initial_timeout_ms is not None:
            initial = config.qrpc_initial_timeout_ms
        if config.qrpc_max_timeout_ms is not None:
            cap = config.qrpc_max_timeout_ms
        cap = max(cap, initial)
        dq_config = DqvlConfig(
            lease_length_ms=config.lease_length_ms,
            max_drift=config.max_drift,
            proactive_renewal=(config.protocol == "dqvl"),
            renewal_margin_ms=min(1_000.0, 0.5 * config.lease_length_ms),
            inval_initial_timeout_ms=200.0,
            qrpc_initial_timeout_ms=initial,
            qrpc_max_timeout_ms=cap,
            iqs_spec=config.iqs_spec,
            oqs_spec=config.oqs_spec,
        )
        resilience = None
        if config.resilience:
            resilience = ResilienceConfig(
                degraded_max_staleness_ms=config.degraded_max_staleness_ms,
            )
        deployment = deployer(
            topology, config=dq_config,
            client_max_attempts=config.client_max_attempts,
            resilience=resilience,
        )
    else:
        deployment = deployer(
            topology, client_max_attempts=config.client_max_attempts
        )
    return topology, deployment


def _server_nodes(deployment: Deployment) -> List[Any]:
    """The protocol server nodes, in deterministic build order."""
    cluster = deployment.cluster
    if hasattr(cluster, "iqs_nodes"):
        return list(cluster.iqs_nodes) + list(cluster.oqs_nodes)
    return list(cluster.servers)


def _apply_drift(config: ChaosRunConfig, sim: Simulator,
                 topology: EdgeTopology, schedule: FaultSchedule) -> None:
    """Replace server clocks per the schedule's clock_drift faults.

    Applied before any traffic at t=0: lease arithmetic bakes absolute
    expiry times into state, so a clock must drift for the whole run,
    never jump mid-run (drift is bounded in the system model; steps are
    not).  Drift is clamped to the configured ``max_drift`` — the bound
    every lease table and view was built with.
    """
    for fault in schedule.drift_faults():
        drift = max(-config.max_drift, min(config.max_drift, fault.param("drift")))
        for node_id in fault.nodes:
            try:
                node = topology.network.node(node_id)
            except KeyError:
                continue
            node.clock = DriftingClock(
                sim, drift=drift, offset=fault.param("offset"),
                max_drift=config.max_drift,
            )


def _count_ops(ops) -> Dict[str, int]:
    """Classify operations for the availability report."""
    counts = {
        "reads_healthy": 0, "reads_degraded": 0, "reads_failed": 0,
        "writes_ok": 0, "writes_failed": 0,
    }
    for op in ops:
        if op.kind == READ:
            if not op.ok:
                counts["reads_failed"] += 1
            elif op.degraded:
                counts["reads_degraded"] += 1
            else:
                counts["reads_healthy"] += 1
        elif op.ok:
            counts["writes_ok"] += 1
        else:
            counts["writes_failed"] += 1
    return counts


def _availability_report(
    history: History, deployment: Deployment, schedule: FaultSchedule
) -> Dict[str, Any]:
    """Availability under fault: who got served, how, and how stale.

    Healthy and degraded reads are counted separately — a degraded read
    is *successful* for availability (the client got a value with an
    explicit staleness label) but is excluded from the consistency
    checkers, so the two numbers must never be conflated.
    """
    report: Dict[str, Any] = dict(_count_ops(history))
    report["reads_successful"] = (
        report["reads_healthy"] + report["reads_degraded"]
    )
    ages = [
        op.staleness_ms for op in history.reads()
        if op.ok and op.degraded and op.staleness_ms is not None
    ]
    report["degraded_staleness_ms"] = {
        "count": len(ages),
        "max": max(ages) if ages else 0.0,
        "mean": sum(ages) / len(ages) if ages else 0.0,
    }
    fe_counts = {
        "requests_served": 0, "requests_failed": 0,
        "degraded_reads": 0, "writes_shed": 0, "breaker_trips": 0,
    }
    for fe in deployment.front_ends:
        fe_counts["requests_served"] += fe.requests_served
        fe_counts["requests_failed"] += fe.requests_failed
        fe_counts["degraded_reads"] += fe.degraded_reads
        fe_counts["writes_shed"] += fe.writes_shed
        for breaker in (fe._read_breaker, fe._write_breaker):
            if breaker is not None:
                fe_counts["breaker_trips"] += breaker.trips
    report["front_ends"] = fe_counts
    res_counts = {
        "suspicions": 0, "hedges_sent": 0,
        "adaptive_rounds": 0, "catchups_started": 0,
    }
    holders = list(_server_nodes(deployment)) + [
        fe.store_client for fe in deployment.front_ends
    ]
    for holder in holders:
        res_counts["catchups_started"] += getattr(holder, "catchups_started", 0)
        res = getattr(holder, "resilience", None)
        if res is None:
            continue
        res_counts["suspicions"] += res.detector.suspicions
        res_counts["hedges_sent"] += res.hedges_sent
        res_counts["adaptive_rounds"] += res.adaptive_rounds
    report["resilience"] = res_counts
    timeline: List[Dict[str, Any]] = []
    for fault in schedule.runtime_faults():
        in_window = [
            op for op in history if fault.start <= op.end <= fault.end
        ]
        entry: Dict[str, Any] = {
            "fault": fault.describe(),
            "start": fault.start,
            "end": fault.end,
        }
        entry.update(_count_ops(in_window))
        timeline.append(entry)
    report["timeline"] = timeline
    return report


def _check_degraded_staleness(history: History) -> List[Dict[str, Any]]:
    """Every degraded read must honour its advertised staleness bound."""
    violations: List[Dict[str, Any]] = []
    for op in history.reads():
        if not (op.ok and op.degraded):
            continue
        if (op.staleness_ms is None or op.staleness_bound_ms is None
                or op.staleness_ms > op.staleness_bound_ms):
            violations.append({
                "type": "degraded_staleness",
                "key": op.key,
                "node": op.client,
                "time": op.end,
                "detail": (
                    f"degraded read of {op.key!r} served with staleness "
                    f"{op.staleness_ms} ms against advertised bound "
                    f"{op.staleness_bound_ms} ms"
                ),
            })
    return violations


def run_chaos(
    config: ChaosRunConfig, schedule: Optional[FaultSchedule] = None
) -> ChaosRunResult:
    """Execute one chaos run; returns the (deterministic) result.

    *schedule* overrides the nemesis-generated one — the shrinker and
    corpus replay use this to re-run a config under a minimized
    schedule.
    """
    sim = Simulator(seed=config.seed)
    topology, deployment = _build_deployment(config, sim)
    servers = _server_nodes(deployment)
    if schedule is None:
        context = NemesisContext(
            servers=tuple(n.node_id for n in servers),
            horizon_ms=config.horizon_ms,
            max_drift=config.max_drift,
        )
        schedule = build_schedule(config.seed, config.nemeses, context)
    schedule = schedule.sorted()

    _apply_drift(config, sim, topology, schedule)
    obs = None
    if config.trace:
        from ..obs import Observability

        obs = Observability(sim).install(topology.network)
    monitor = InvariantMonitor(sim, sample_interval_ms=config.sample_interval_ms)
    monitor.attach(topology.network, servers)
    apply_weakener(deployment, config.weaken)
    schedule.install(sim, topology.network)

    history = History()
    keys = [f"k{i}" for i in range(config.num_keys)]
    procs = []
    client_ids: List[str] = []
    for c in range(config.num_clients):
        if config.mode == "frontend":
            # Figure 1's full path: app client → front end → service
            # client.  Locality 1.0 keeps the redirection deterministic
            # (the policy short-circuits without an rng draw).
            client = deployment.app_client(c, locality=1.0)
        else:
            client = deployment.direct_client(c)
        client_ids.append(client.node_id)
        # Workload streams get their own seeded rngs (not sim.rng) so the
        # operation sequence is a function of the config alone — replaying
        # a shrunk schedule reproduces the exact same client behaviour.
        stream = BernoulliOpStream(
            nemesis_rng(config.seed, f"workload-{c}"),
            ZipfKeyChooser(keys, s=0.9),
            config.write_ratio,
            label=f"c{c}-",
        )
        procs.append(
            sim.spawn(
                closed_loop(sim, client, stream, history, config.ops_per_client)
            )
        )
    sim.run(until=config.time_limit_ms)
    monitor.check_now()

    violations: List[Dict[str, Any]] = []
    for c, proc in enumerate(procs):
        if not proc.done:
            violations.append({
                "type": "liveness",
                "node": client_ids[c],
                "detail": (
                    f"client {c}'s workload did not finish by "
                    f"{config.time_limit_ms:.0f} ms (stuck operation)"
                ),
            })
    stats: Dict[str, Any] = {
        "ops_recorded": len(history),
        "ops_failed": len(history.failures()),
        "messages": topology.network.stats.total_messages,
        "messages_dropped": topology.network.stats.dropped,
        "invariant_samples": monitor.samples_taken,
        "sim_time_ms": sim.now,
        "availability": _availability_report(history, deployment, schedule),
    }
    violations.extend(_check_degraded_staleness(history))
    if config.protocol in EVENTUALLY_CONSISTENT:
        stats["staleness"] = dataclasses.asdict(staleness_report(history))
    else:
        for v in check_regular(history):
            violations.append({
                "type": "regular",
                "key": v.read.key,
                "node": v.read.client,
                "time": v.read.end,
                "detail": str(v),
            })
    for obj in monitor.report():
        violations.append({"type": "invariant", **obj})
    trace_jsonl = trace_chrome = None
    if obs is not None:
        from ..obs import spans_to_chrome, spans_to_jsonl

        obs.finalize(topology.network, deployment)
        trace_jsonl = spans_to_jsonl(obs.tracer, faults=schedule,
                                     metrics=obs.metrics)
        trace_chrome = spans_to_chrome(obs.tracer, faults=schedule)
        # Where the milliseconds went under faults: the availability
        # report gains a phase x percentile budget per op group, with
        # degraded reads split out (their "latency" is the detour cost,
        # not a storage round trip).
        stats["availability"]["phase_budgets"] = (
            obs.latency_budget().to_json_obj()
        )
    return ChaosRunResult(
        config=config, schedule=schedule, violations=violations, stats=stats,
        trace_jsonl=trace_jsonl, trace_chrome=trace_chrome,
    )


def run_campaign(
    configs,
    *,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_path: Optional[str] = None,
):
    """Fan a batch of chaos runs across worker processes.

    Thin wrapper over :func:`repro.harness.sweeps.run_sweep` (imported
    lazily — the harness imports this module for the sweep's "chaos"
    config kind).  Returns one
    :class:`~repro.harness.sweeps.ChaosPoint` per config, in order.
    """
    from ..harness.sweeps import run_sweep

    return run_sweep(
        list(configs), workers=workers, cache=cache, cache_path=cache_path
    )
