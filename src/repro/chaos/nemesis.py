"""Seed-deterministic nemesis generators.

A *nemesis* turns ``(rng, context)`` into a list of
:class:`~repro.chaos.faults.Fault` windows.  :func:`build_schedule`
composes any subset of the registry into one
:class:`~repro.chaos.faults.FaultSchedule`.

Seeding contract
----------------
Each nemesis draws from its own ``random.Random`` seeded by
``mix(seed, nemesis_name)`` where the name is hashed with
``zlib.crc32`` — **never** Python's built-in ``hash``, which is salted
per process and would silently break cross-process determinism under
the campaign's ``ProcessPoolExecutor`` fan-out.  Consequences:

* the same ``(seed, nemeses, context)`` produces the identical schedule
  in any process, any run;
* adding or removing one nemesis from a campaign never perturbs the
  faults another nemesis generates (independent streams).

Safety envelope
---------------
Every window ends by ``context.horizon_ms`` (the workload keeps running
after that, so the system always gets a fault-free tail in which to
heal and the run terminates), crash storms leave at least one server up
at any planned instant, and clock drift stays within
``context.max_drift`` — matching the drift bound the protocols are
configured with, because drift *beyond* the declared bound is a broken
deployment assumption, not a fault the paper's lease arithmetic claims
to tolerate.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .faults import Fault, FaultSchedule

__all__ = ["NemesisContext", "NEMESES", "build_schedule", "nemesis_rng"]


@dataclass(frozen=True)
class NemesisContext:
    """What a generator may know about the system under test."""

    servers: Tuple[str, ...]
    horizon_ms: float = 10_000.0
    max_drift: float = 0.01

    def window(self, rng: random.Random,
               min_frac: float = 0.05, max_frac: float = 0.3) -> Tuple[float, float]:
        """A (start, duration) pair guaranteed to end by the horizon."""
        duration = self.horizon_ms * rng.uniform(min_frac, max_frac)
        start = rng.uniform(0.0, self.horizon_ms - duration)
        return start, duration


def nemesis_rng(seed: int, name: str) -> random.Random:
    """The independent, process-stable stream for (campaign seed, nemesis)."""
    return random.Random(((seed & 0xFFFFFFFF) << 32) | zlib.crc32(name.encode()))


# -- generators ---------------------------------------------------------------

def crash_storm(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Repeated crash/restart windows on random servers, never all at once."""
    faults = []
    for _ in range(rng.randint(2, 4)):
        start, duration = ctx.window(rng)
        # Crash a strict subset so some server is always reachable.
        count = rng.randint(1, max(1, len(ctx.servers) - 1))
        victims = tuple(sorted(rng.sample(list(ctx.servers), count)))
        faults.append(Fault.make("crash", start, duration, nodes=victims))
    return faults


def node_flap(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """One server crash-recovers in rapid succession (flapping)."""
    victim = rng.choice(list(ctx.servers))
    faults = []
    t = rng.uniform(0.0, 0.2 * ctx.horizon_ms)
    for _ in range(rng.randint(3, 6)):
        up = rng.uniform(0.02, 0.08) * ctx.horizon_ms
        down = rng.uniform(0.02, 0.08) * ctx.horizon_ms
        if t + down > ctx.horizon_ms:
            break
        faults.append(Fault.make("crash", t, down, nodes=(victim,)))
        t += down + up
    return faults


def rolling_partition(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Isolate one server after another with short partition windows."""
    order = list(ctx.servers)
    rng.shuffle(order)
    faults = []
    slot = ctx.horizon_ms / max(len(order), 1)
    for i, victim in enumerate(order):
        duration = slot * rng.uniform(0.4, 0.9)
        start = i * slot + rng.uniform(0.0, slot - duration)
        rest = tuple(s for s in ctx.servers if s != victim)
        faults.append(
            Fault.make("partition", start, duration,
                       groups=((victim,), rest))
        )
    return faults


def overlapping_partitions(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Two partitions whose windows overlap with *different* group splits —
    the case the token-scoped heal exists for."""
    servers = list(ctx.servers)
    faults = []
    for _ in range(2):
        start, duration = ctx.window(rng, min_frac=0.2, max_frac=0.45)
        rng.shuffle(servers)
        cut = rng.randint(1, max(1, len(servers) - 1))
        left = tuple(sorted(servers[:cut]))
        right = tuple(sorted(servers[cut:]))
        faults.append(Fault.make("partition", start, duration, groups=(left, right)))
    return faults


def loss_burst(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Windows of heavy network-wide message loss."""
    return [
        Fault.make("loss", *ctx.window(rng),
                   probability=rng.uniform(0.1, 0.45))
        for _ in range(rng.randint(1, 3))
    ]


def duplication_burst(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Windows of heavy message duplication (retransmission ambushes)."""
    return [
        Fault.make("duplicate", *ctx.window(rng),
                   probability=rng.uniform(0.2, 0.8))
        for _ in range(rng.randint(1, 2))
    ]


def slow_nodes(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Gray failure: servers that are alive but painfully slow."""
    faults = []
    for _ in range(rng.randint(1, 2)):
        start, duration = ctx.window(rng)
        victim = rng.choice(list(ctx.servers))
        faults.append(
            Fault.make("slow", start, duration, nodes=(victim,),
                       slow_ms=rng.uniform(50.0, 400.0))
        )
    return faults


def gray_links(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Gray failure: specific links with extra delay and loss."""
    faults = []
    if len(ctx.servers) < 2:
        return faults
    for _ in range(rng.randint(1, 3)):
        start, duration = ctx.window(rng)
        a, b = rng.sample(list(ctx.servers), 2)
        faults.append(
            Fault.make("degrade_link", start, duration, nodes=(a, b),
                       extra_delay_ms=rng.uniform(20.0, 200.0),
                       loss_probability=rng.uniform(0.0, 0.3))
        )
    return faults


def clock_drift(rng: random.Random, ctx: NemesisContext) -> List[Fault]:
    """Give every server a drifting clock within the declared bound."""
    return [
        Fault.make("clock_drift", 0.0, 0.0, nodes=(server,),
                   drift=rng.uniform(-ctx.max_drift, ctx.max_drift),
                   offset=rng.uniform(0.0, 5.0))
        for server in ctx.servers
    ]


#: the nemesis registry (names are part of the corpus format — stable)
NEMESES: Dict[str, Callable[[random.Random, NemesisContext], List[Fault]]] = {
    "crash_storm": crash_storm,
    "node_flap": node_flap,
    "rolling_partition": rolling_partition,
    "overlapping_partitions": overlapping_partitions,
    "loss_burst": loss_burst,
    "duplication_burst": duplication_burst,
    "slow_nodes": slow_nodes,
    "gray_links": gray_links,
    "clock_drift": clock_drift,
}


def build_schedule(
    seed: int, nemeses: Sequence[str], context: NemesisContext
) -> FaultSchedule:
    """Compose the named nemeses into one deterministic schedule."""
    schedule = FaultSchedule()
    for name in sorted(set(nemeses)):
        try:
            generator = NEMESES[name]
        except KeyError:
            raise KeyError(
                f"unknown nemesis {name!r}; choose from {sorted(NEMESES)}"
            ) from None
        rng = nemesis_rng(seed, name)
        for fault in generator(rng, context):
            schedule.add(fault)
    return schedule.sorted()
