"""Online protocol-invariant checking for chaos runs.

The history checker (:func:`~repro.consistency.regular.check_regular`)
judges *observable* behaviour after the fact; this monitor watches
*internal* protocol state during the run, catching bugs whose stale
reads happen not to materialise in a particular history:

``lease_serve``
    No DQVL read hit may be served without a fully valid IQS read
    quorum: for a quorum of IQS servers, the volume lease is unexpired,
    the object lease is present, marked valid, in the volume's current
    epoch, and itself unexpired (the paper's Condition C).  Checked at
    serve time via the node's ``read_hit`` trace event, but re-derived
    **independently from the raw lease-view dictionaries** — a weakened
    decision path (e.g. an expiry check compiled out) is caught because
    the raw expiry times still tell the truth.

``epoch_monotonic``
    Volume-lease epochs never regress — granter-side per
    (volume, OQS node), holder-side per (volume, IQS server).  Holder
    baselines reset when the node crash-recovers (volatile recovery
    legally discards the view).

``lc_monotonic``
    Per-replica logical clocks never regress: the IQS/majority global
    clock, the IQS per-object last-write clock, and every versioned
    store's per-key clock (stores model stable storage, so their
    baselines survive crashes).

Monitoring is *passive*: it reads state, never mutates it, and attaches
by wrapping each node's ``tracer`` and tapping the network (sampling
piggy-backs on traffic, so it stops when the workload stops and a final
:meth:`InvariantMonitor.check_now` closes the run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.dqvl import DqvlIqsNode, DqvlOqsNode
from ..sim.kernel import Simulator

__all__ = ["InvariantViolation", "InvariantMonitor", "TapTracer"]

#: stop recording beyond this many violations (a broken run can violate
#: on every read; the report needs the pattern, not a million copies)
MAX_VIOLATIONS = 200


@dataclass(frozen=True)
class InvariantViolation:
    """One observed invariant breach."""

    time: float
    node: str
    invariant: str
    detail: str

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "node": self.node,
            "invariant": self.invariant,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return f"[{self.time:.1f} ms] {self.node}: {self.invariant}: {self.detail}"


class TapTracer:
    """Wraps a node's tracer, forwarding events to a monitor hook.

    Shared by :class:`InvariantMonitor` and
    :class:`repro.mc.liveness.LivenessMonitor`; taps stack, so both can
    watch the same node.
    """

    def __init__(self, inner, hook) -> None:
        self._inner = inner
        self._hook = hook

    def emit(self, source: str, category: str, **details: Any) -> None:
        self._inner.emit(source, category, **details)
        self._hook(source, category, details)

    def __getattr__(self, name: str):  # filter/count/dump pass through
        return getattr(self._inner, name)


#: historical private name, kept for callers inside the package
_TapTracer = TapTracer


class InvariantMonitor:
    """Watches protocol nodes for invariant violations during a run."""

    def __init__(
        self,
        sim: Simulator,
        sample_interval_ms: float = 100.0,
        max_violations: int = MAX_VIOLATIONS,
    ) -> None:
        self.sim = sim
        self.sample_interval_ms = sample_interval_ms
        #: recording cap; the mc explorer lowers this to 1 because it
        #: only needs "does this schedule violate?", not the pattern
        self.max_violations = max_violations
        self.violations: List[InvariantViolation] = []
        self.samples_taken = 0
        self._nodes: List[Any] = []
        self._oqs_nodes: List[DqvlOqsNode] = []
        self._last_sample = float("-inf")
        # monotonicity baselines
        self._iqs_lc: Dict[str, Any] = {}
        self._iqs_obj_lc: Dict[Tuple[str, str], Any] = {}
        self._iqs_epochs: Dict[Tuple[str, Tuple[str, str]], int] = {}
        self._oqs_epochs: Dict[Tuple[str, Tuple[str, str]], int] = {}
        self._oqs_view_id: Dict[str, int] = {}
        self._store_lc: Dict[Tuple[str, str], Any] = {}
        self._server_lc: Dict[str, Any] = {}
        self._crash_counts: Dict[str, int] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, network, nodes: List[Any]) -> None:
        """Start watching *nodes*; taps *network* to drive sampling."""
        self._nodes = list(nodes)
        for node in self._nodes:
            if isinstance(node, DqvlOqsNode):
                self._oqs_nodes.append(node)
                node.tracer = _TapTracer(node.tracer, self._on_trace)
        network.add_tap(self._on_message)

    def _on_message(self, _message) -> None:
        if self.sim.now - self._last_sample >= self.sample_interval_ms:
            self.check_now()

    def _on_trace(self, source: str, category: str, details: Dict[str, Any]) -> None:
        if category != "read_hit":
            return
        node = next((n for n in self._oqs_nodes if n.node_id == source), None)
        if node is not None:
            self._check_lease_serve(node, details.get("obj"))

    # -- recording ---------------------------------------------------------

    def record(self, node: str, invariant: str, detail: str) -> None:
        if len(self.violations) >= self.max_violations:
            return
        self.violations.append(
            InvariantViolation(self.sim.now, node, invariant, detail)
        )

    # -- the lease-serve invariant ----------------------------------------

    def _check_lease_serve(self, node: DqvlOqsNode, obj: Optional[str]) -> None:
        """Re-derive Condition C from the raw lease view at serve time."""
        if obj is None:
            return
        view = node.view
        volume = node.volume_of(obj)
        now = node.clock.now()
        valid_servers = set()
        reasons: List[str] = []
        for i in node.iqs.nodes:
            vol_expiry = view._vol_expires.get((volume, i), float("-inf"))
            if vol_expiry <= now:
                reasons.append(f"{i}: volume lease expired at {vol_expiry:.1f}")
                continue
            lease = view._objects.get((obj, i))
            if lease is None:
                reasons.append(f"{i}: no object lease")
                continue
            if not lease.valid:
                reasons.append(f"{i}: object invalidated (lc={lease.lc})")
                continue
            vol_epoch = view._vol_epoch.get((volume, i), 0)
            if lease.epoch != vol_epoch:
                reasons.append(
                    f"{i}: epoch mismatch (obj={lease.epoch}, vol={vol_epoch})"
                )
                continue
            if lease.expires <= now:
                reasons.append(f"{i}: object lease expired at {lease.expires:.1f}")
                continue
            valid_servers.add(i)
        if not node.iqs.is_read_quorum(valid_servers):
            self.record(
                node.node_id,
                "lease_serve",
                f"read hit on {obj!r} without a fully valid IQS read quorum "
                f"(valid: {sorted(valid_servers)}; " + "; ".join(reasons) + ")",
            )

    # -- monotonicity sampling --------------------------------------------

    def check_now(self) -> None:
        """Sample every watched node's monotonic state."""
        self._last_sample = self.sim.now
        self.samples_taken += 1
        for node in self._nodes:
            crashed_since = self._crash_epoch_changed(node)
            if isinstance(node, DqvlIqsNode):
                self._check_iqs(node, crashed_since)
            elif isinstance(node, DqvlOqsNode):
                self._check_oqs(node)
            else:
                self._check_store_server(node)

    def _crash_epoch_changed(self, node) -> bool:
        count = getattr(node, "_crash_count", 0)
        changed = self._crash_counts.get(node.node_id, 0) != count
        self._crash_counts[node.node_id] = count
        return changed

    def _check_iqs(self, node: DqvlIqsNode, crashed_since: bool) -> None:
        name = node.node_id
        if crashed_since:
            # IQS state is modelled as stable storage today, but only the
            # clocks' monotonicity across *uninterrupted* execution is the
            # protocol invariant; re-baseline after a restart.
            self._iqs_lc.pop(name, None)
            for key in [k for k in self._iqs_obj_lc if k[0] == name]:
                del self._iqs_obj_lc[key]
        prev = self._iqs_lc.get(name)
        if prev is not None and node.logical_clock < prev:
            self.record(
                name, "lc_monotonic",
                f"global logical clock regressed: {prev} -> {node.logical_clock}",
            )
        self._iqs_lc[name] = node.logical_clock
        for obj, lc in node._last_write_lc.items():
            key = (name, obj)
            prev = self._iqs_obj_lc.get(key)
            if prev is not None and lc < prev:
                self.record(
                    name, "lc_monotonic",
                    f"lastWriteLC[{obj!r}] regressed: {prev} -> {lc}",
                )
            self._iqs_obj_lc[key] = lc
        # granter-side epochs only ever advance (never reset, even by GC)
        for key, epoch in node.leases._epoch.items():
            baseline_key = (name, key)
            prev_epoch = self._iqs_epochs.get(baseline_key)
            if prev_epoch is not None and epoch < prev_epoch:
                self.record(
                    name, "epoch_monotonic",
                    f"granter epoch for {key} regressed: {prev_epoch} -> {epoch}",
                )
            self._iqs_epochs[baseline_key] = epoch

    def _check_oqs(self, node: DqvlOqsNode) -> None:
        name = node.node_id
        view = node.view
        if self._oqs_view_id.get(name) != id(view):
            # volatile recovery replaced the view: start fresh baselines
            self._oqs_view_id[name] = id(view)
            for key in [k for k in self._oqs_epochs if k[0] == name]:
                del self._oqs_epochs[key]
        for key, epoch in view._vol_epoch.items():
            baseline_key = (name, key)
            prev = self._oqs_epochs.get(baseline_key)
            if prev is not None and epoch < prev:
                self.record(
                    name, "epoch_monotonic",
                    f"holder epoch for {key} regressed: {prev} -> {epoch}",
                )
            self._oqs_epochs[baseline_key] = epoch

    def _check_store_server(self, node) -> None:
        name = node.node_id
        store = getattr(node, "store", None)
        if store is not None:
            # stable storage: baselines survive crash/recovery on purpose
            for obj, (_value, lc) in store.items():
                key = (name, obj)
                prev = self._store_lc.get(key)
                if prev is not None and lc < prev:
                    self.record(
                        name, "lc_monotonic",
                        f"store clock for {obj!r} regressed: {prev} -> {lc}",
                    )
                self._store_lc[key] = lc
        server_lc = getattr(node, "logical_clock", None)
        if server_lc is not None:
            prev = self._server_lc.get(name)
            if prev is not None and server_lc < prev:
                self.record(
                    name, "lc_monotonic",
                    f"server logical clock regressed: {prev} -> {server_lc}",
                )
            self._server_lc[name] = server_lc

    # -- reporting ---------------------------------------------------------

    def report(self) -> List[Dict[str, Any]]:
        """Violations as sorted, JSON-ready dicts (deterministic)."""
        ordered = sorted(
            self.violations, key=lambda v: (v.time, v.node, v.invariant, v.detail)
        )
        return [v.to_json_obj() for v in ordered]
