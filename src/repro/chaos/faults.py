"""Declarative fault windows and their installation onto a simulation.

A :class:`Fault` is one *window*: a kind, a start time, a duration, the
affected nodes/groups, and numeric parameters.  A :class:`FaultSchedule`
is a list of windows; :meth:`FaultSchedule.install` schedules each
window's start and end actions onto the simulator, using the network's
token API so overlapping windows compose (each window removes exactly
the state it installed).

Fault kinds
-----------
``crash``
    Fail-stop every node in ``nodes`` for the window; recovery invokes
    each node's ``on_recover`` hook (so e.g. ``volatile_oqs_recovery``
    amnesia is exercised).
``partition``
    Token-scoped network partition into ``groups``.
``slow``
    Gray failure: each node in ``nodes`` processes incoming messages
    ``slow_ms`` late (:meth:`repro.sim.node.Node.set_slow`).  Concurrent
    slow windows on one node are last-writer-wins; the window end clears
    slow mode.
``degrade_link``
    Gray link: extra one-way delay and/or loss between ``nodes[0]`` and
    ``nodes[1]`` (symmetric), token-scoped.
``loss`` / ``duplicate``
    Network-wide extra loss/duplication probability for the window,
    compounding independently with the base rates, token-scoped.
``clock_drift``
    Build-time fault: each node in ``nodes`` runs on a
    :class:`~repro.sim.clock.DriftingClock` with the given ``drift``
    (and optional ``offset``) for the *whole* run.  Not installed by
    :meth:`install` — the campaign runner applies it before traffic
    starts, because lease arithmetic bakes expiry times into state and a
    mid-run clock jump would model a fault outside the paper's system
    model (drift is bounded; steps are not).

Schedules serialise to plain JSON (:meth:`to_json_obj` /
:meth:`from_json_obj`) so shrunk repros can live in
``tests/chaos_corpus/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..sim.network import Network

__all__ = ["FAULT_KINDS", "Fault", "FaultSchedule"]

FAULT_KINDS = (
    "crash",
    "partition",
    "slow",
    "degrade_link",
    "loss",
    "duplicate",
    "clock_drift",
)

#: kinds whose windows act on the network/nodes at runtime
RUNTIME_KINDS = tuple(k for k in FAULT_KINDS if k != "clock_drift")


@dataclass(frozen=True)
class Fault:
    """One fault window (see module docstring for kind semantics)."""

    kind: str
    start: float = 0.0
    duration: float = 0.0
    nodes: Tuple[str, ...] = ()
    groups: Tuple[Tuple[str, ...], ...] = ()
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.start < 0 or self.duration < 0:
            raise ValueError("fault start/duration must be non-negative")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def param(self, name: str, default: float = 0.0) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @staticmethod
    def make(kind: str, start: float = 0.0, duration: float = 0.0,
             nodes: Tuple[str, ...] = (), groups=(), **params: float) -> "Fault":
        """Convenience constructor taking params as keyword floats."""
        return Fault(
            kind=kind,
            start=start,
            duration=duration,
            nodes=tuple(nodes),
            groups=tuple(tuple(g) for g in groups),
            params=tuple(sorted(params.items())),
        )

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "nodes": list(self.nodes),
            "groups": [list(g) for g in self.groups],
            "params": dict(self.params),
        }

    @staticmethod
    def from_json_obj(obj: Dict[str, Any]) -> "Fault":
        return Fault.make(
            obj["kind"],
            start=float(obj.get("start", 0.0)),
            duration=float(obj.get("duration", 0.0)),
            nodes=tuple(obj.get("nodes", ())),
            groups=tuple(tuple(g) for g in obj.get("groups", ())),
            **{k: float(v) for k, v in (obj.get("params") or {}).items()},
        )

    def describe(self) -> str:
        target = ",".join(self.nodes) or "|".join(
            "+".join(g) for g in self.groups
        )
        params = " ".join(f"{k}={v:g}" for k, v in self.params)
        return (
            f"{self.kind}[{self.start:g}ms+{self.duration:g}ms]"
            + (f" {target}" if target else "")
            + (f" ({params})" if params else "")
        )


@dataclass
class FaultSchedule:
    """An ordered collection of fault windows."""

    faults: List[Fault] = field(default_factory=list)

    def add(self, fault: Fault) -> "FaultSchedule":
        self.faults.append(fault)
        return self

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def sorted(self) -> "FaultSchedule":
        """A copy ordered by (start, kind, nodes) — a total order, so a
        schedule's installation order never depends on generator order."""
        return FaultSchedule(
            sorted(self.faults, key=lambda f: (f.start, f.kind, f.nodes, f.groups))
        )

    def runtime_faults(self) -> List[Fault]:
        return [f for f in self.faults if f.kind != "clock_drift"]

    def drift_faults(self) -> List[Fault]:
        return [f for f in self.faults if f.kind == "clock_drift"]

    def horizon(self) -> float:
        """Latest window end (0 for an empty schedule)."""
        return max((f.end for f in self.faults), default=0.0)

    # -- serialisation ----------------------------------------------------

    def to_json_obj(self) -> List[Dict[str, Any]]:
        return [f.to_json_obj() for f in self.faults]

    @staticmethod
    def from_json_obj(obj: List[Dict[str, Any]]) -> "FaultSchedule":
        return FaultSchedule([Fault.from_json_obj(entry) for entry in obj])

    def describe(self) -> str:
        return "; ".join(f.describe() for f in self.sorted())

    # -- installation -----------------------------------------------------

    def install(self, sim: Simulator, network: Network) -> None:
        """Schedule every runtime fault window onto *sim*.

        Unknown node ids are skipped (a schedule generated for one
        deployment may name nodes another does not instantiate — chaos
        tooling must never crash the simulation it is stressing).
        ``clock_drift`` faults are ignored here; the campaign runner
        applies them at build time.
        """
        for fault in self.runtime_faults():
            self._install_one(sim, network, fault)

    def _install_one(self, sim: Simulator, network: Network, fault: Fault) -> None:
        def known_nodes() -> List:
            nodes = []
            for node_id in fault.nodes:
                try:
                    nodes.append(network.node(node_id))
                except KeyError:
                    continue
            return nodes

        if fault.kind == "crash":
            def crash_start() -> None:
                for node in known_nodes():
                    node.crash()

            def crash_end() -> None:
                for node in known_nodes():
                    node.recover()

            sim.schedule(fault.start, crash_start)
            sim.schedule(fault.end, crash_end)

        elif fault.kind == "partition":
            token_box: List[int] = []
            groups = fault.groups

            def part_start() -> None:
                token_box.append(network.partition(*groups))

            def part_end() -> None:
                if token_box:
                    network.heal(token_box.pop())

            sim.schedule(fault.start, part_start)
            sim.schedule(fault.end, part_end)

        elif fault.kind == "slow":
            slow_ms = fault.param("slow_ms", 100.0)

            def slow_start() -> None:
                for node in known_nodes():
                    node.set_slow(slow_ms)

            def slow_end() -> None:
                for node in known_nodes():
                    node.clear_slow()

            sim.schedule(fault.start, slow_start)
            sim.schedule(fault.end, slow_end)

        elif fault.kind == "degrade_link":
            if len(fault.nodes) < 2:
                return
            a, b = fault.nodes[0], fault.nodes[1]
            extra = fault.param("extra_delay_ms", 0.0)
            loss = fault.param("loss_probability", 0.0)
            token_box = []

            def link_start() -> None:
                token_box.append(
                    network.degrade_link(
                        a, b, extra_delay_ms=extra, loss_probability=loss
                    )
                )

            def link_end() -> None:
                if token_box:
                    network.restore_link(token_box.pop())

            sim.schedule(fault.start, link_start)
            sim.schedule(fault.end, link_end)

        elif fault.kind == "loss":
            p = fault.param("probability", 0.2)
            token_box = []

            def loss_start() -> None:
                token_box.append(network.add_loss_window(p))

            def loss_end() -> None:
                if token_box:
                    network.remove_loss_window(token_box.pop())

            sim.schedule(fault.start, loss_start)
            sim.schedule(fault.end, loss_end)

        elif fault.kind == "duplicate":
            p = fault.param("probability", 0.2)
            token_box = []

            def dup_start() -> None:
                token_box.append(network.add_duplication_window(p))

            def dup_end() -> None:
                if token_box:
                    network.remove_duplication_window(token_box.pop())

            sim.schedule(fault.start, dup_start)
            sim.schedule(fault.end, dup_end)

        else:  # pragma: no cover - RUNTIME_KINDS is exhaustive
            raise ValueError(f"cannot install fault kind {fault.kind!r}")
