"""Delta-debugging minimization of violating fault schedules.

A campaign failure arrives as a config plus a schedule of dozens of
fault windows; most of them are noise.  :func:`shrink_schedule` applies
Zeller's *ddmin* to the window list: repeatedly re-run the (fully
deterministic) chaos run on subsets and complements, keeping the
smallest subset that still violates.  Because a run is a pure function
of ``(config, schedule)``, evaluations are memoized and every step is
replayable.

The result can be persisted as a *repro* — a small JSON file under
``tests/chaos_corpus/`` carrying the config, the minimized schedule,
and the expected violation types.  The corpus replay test re-runs each
repro both weakened (violations must reappear) and healthy (the same
schedule must pass), so a shrunk schedule keeps witnessing its bug for
as long as the corpus lives.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from .campaign import ChaosRunConfig, run_chaos
from .faults import Fault, FaultSchedule

__all__ = ["ShrinkResult", "ddmin", "shrink_schedule", "save_repro", "load_repro"]

REPRO_FORMAT = 1

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    test: Callable[[List[T]], bool],
    *,
    should_continue: Optional[Callable[[], bool]] = None,
) -> List[T]:
    """Zeller's ddmin: a small subset of *items* for which *test* holds.

    Generic core shared by the chaos schedule shrinker (items = fault
    windows) and the ``repro.mc`` schedule shrinker (items = non-default
    scheduling decisions).  *test* must be deterministic and already hold
    for the full list; the caller handles memoization and budget
    accounting — *should_continue* is polled before every probe, and
    returning ``False`` stops early with the smallest failing subset
    found so far (still a valid repro, just possibly not 1-minimal).
    """
    items = list(items)
    if should_continue is None:
        should_continue = lambda: True
    n = 2
    while len(items) >= 2 and should_continue():
        chunk = max(1, (len(items) + n - 1) // n)
        subsets = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            if not should_continue():
                break
            if test(subset):
                items, n, reduced = subset, 2, True
                break
            complement = [x for s in subsets[:i] + subsets[i + 1:] for x in s]
            if complement and test(complement):
                items, reduced = complement, True
                n = max(n - 1, 2)
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    return items


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimized schedule and its evidence."""

    config: ChaosRunConfig
    original: FaultSchedule
    shrunk: FaultSchedule
    violations: List[Dict[str, Any]]  # of the *shrunk* replay
    runs: int = 0

    @property
    def expected_types(self) -> List[str]:
        return sorted({v["type"] for v in self.violations})


def shrink_schedule(
    config: ChaosRunConfig,
    schedule: Optional[FaultSchedule] = None,
    *,
    max_runs: int = 100,
    allow_empty: bool = True,
) -> ShrinkResult:
    """Minimize a violating schedule with ddmin under a run budget.

    *schedule* defaults to the config's own nemesis-generated schedule.
    Raises ``ValueError`` if the starting schedule does not violate.
    The budget bounds *simulated runs*, not iterations — hitting it
    simply returns the smallest failing schedule found so far (still a
    valid repro, just possibly not 1-minimal).

    ``allow_empty`` controls the zero-fault probe: some injected bugs
    violate with no faults at all, and "empty schedule" is then the most
    informative repro.  Pass ``False`` to insist on a fault-bearing
    repro (e.g. to document *which kind* of fault exposes a bug even
    when the fault is not strictly necessary).
    """
    if schedule is None:
        schedule = run_chaos(config).schedule
    faults: List[Fault] = list(schedule.sorted())
    runs = 0
    memo: Dict[Tuple[Fault, ...], List[Dict[str, Any]]] = {}

    def violations_of(subset: List[Fault]) -> List[Dict[str, Any]]:
        nonlocal runs
        key = tuple(subset)
        if key not in memo:
            runs += 1
            memo[key] = run_chaos(
                config, schedule=FaultSchedule(list(subset))
            ).violations
        return memo[key]

    baseline = violations_of(faults)
    if not baseline:
        raise ValueError(
            "schedule does not produce any violation; nothing to shrink"
        )

    # Classic ddmin never tries the empty set, but "violates with no
    # faults at all" is the most informative repro there is.
    if allow_empty and violations_of([]):
        faults = []

    faults = ddmin(
        faults,
        lambda subset: bool(violations_of(subset)),
        should_continue=lambda: runs < max_runs,
    )

    return ShrinkResult(
        config=config,
        original=schedule,
        shrunk=FaultSchedule(list(faults)).sorted(),
        violations=violations_of(faults),
        runs=runs,
    )


# -- corpus persistence --------------------------------------------------------

def save_repro(result: ShrinkResult, directory: str,
               name: Optional[str] = None) -> str:
    """Write a shrunk repro as JSON into *directory*; returns the path."""
    config = result.config
    if name is None:
        name = "_".join(
            part for part in (
                config.protocol,
                f"seed{config.seed}",
                config.weaken or "healthy",
            ) if part
        )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    payload = {
        "format": REPRO_FORMAT,
        "description": (
            f"{len(result.shrunk)}-fault repro for protocol "
            f"{config.protocol!r}"
            + (f" weakened by {config.weaken!r}" if config.weaken else "")
            + f"; expected violation types: {result.expected_types}"
        ),
        "config": dataclasses.asdict(config),
        "schedule": result.shrunk.to_json_obj(),
        "expected_types": result.expected_types,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    return path


def load_repro(path: str) -> Tuple[ChaosRunConfig, FaultSchedule, List[str]]:
    """Read a corpus repro back as (config, schedule, expected_types)."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: unsupported repro format {payload.get('format')!r}"
        )
    known = {f.name for f in dataclasses.fields(ChaosRunConfig)}
    config_obj = {
        k: v for k, v in payload["config"].items() if k in known
    }
    if config_obj.get("nemeses") is not None:
        config_obj["nemeses"] = tuple(config_obj["nemeses"])
    config = ChaosRunConfig(**config_obj)
    schedule = FaultSchedule.from_json_obj(payload["schedule"])
    return config, schedule, list(payload.get("expected_types", []))
