"""Chaos campaign engine: composable nemesis faults, invariant checking,
and failing-schedule shrinking.

The paper's headline claim is that DQVL preserves regular register
semantics *while* nodes crash, links partition, and messages are lost.
This package turns that claim into a permanent correctness harness:

* :mod:`repro.chaos.faults` — a declarative, JSON-serialisable fault
  timeline (:class:`FaultSchedule`) covering crash/restart, overlapping
  partitions, loss/duplication bursts, gray failures (slow nodes,
  degraded links), and bounded clock drift;
* :mod:`repro.chaos.nemesis` — seed-deterministic generators that
  compose random fault timelines from a campaign config;
* :mod:`repro.chaos.invariants` — an online monitor checking protocol
  invariants (no read served on an expired volume/object lease, epoch
  monotonicity, logical-clock monotonicity) *during* the run;
* :mod:`repro.chaos.campaign` — the runner: one randomized chaos run per
  (protocol, seed, nemeses) config, checked with
  :func:`~repro.consistency.regular.check_regular` plus the monitor,
  fanned out via the PR-1 sweep infrastructure;
* :mod:`repro.chaos.weaken` — deliberately broken protocol variants used
  to prove the harness *detects* bugs;
* :mod:`repro.chaos.shrink` — a delta-debugging shrinker minimizing a
  violating schedule to a small replayable repro for
  ``tests/chaos_corpus/``.

Determinism contract: a chaos run is a pure function of its
:class:`~repro.chaos.campaign.ChaosRunConfig` — the same config yields
the same schedule, the same execution, and the same violation report, in
any process (generator seeding uses ``zlib.crc32``, never Python's
per-process-salted ``hash``).
"""

from .campaign import ChaosRunConfig, ChaosRunResult, run_campaign, run_chaos
from .faults import Fault, FaultSchedule
from .invariants import InvariantMonitor, InvariantViolation
from .nemesis import NEMESES, build_schedule
from .shrink import ShrinkResult, load_repro, save_repro, shrink_schedule
from .weaken import WEAKENERS, apply_weakener

__all__ = [
    "Fault",
    "FaultSchedule",
    "NEMESES",
    "build_schedule",
    "InvariantMonitor",
    "InvariantViolation",
    "ChaosRunConfig",
    "ChaosRunResult",
    "run_chaos",
    "run_campaign",
    "WEAKENERS",
    "apply_weakener",
    "ShrinkResult",
    "shrink_schedule",
    "save_repro",
    "load_repro",
]
