"""Deliberately broken protocol variants ("weakeners").

A chaos harness that only ever reports "0 violations" proves nothing —
the zero is meaningful only if the same harness demonstrably *lights up*
when the protocol is broken.  Each weakener here disables one safety
mechanism of a built DQVL deployment, in place, by rebinding a bound
method on the live node objects (``types.MethodType``), so the healthy
code path stays byte-identical and a corpus repro can flip between
healthy and weakened replay of the *same* schedule.

Weakeners are part of the corpus format: a shrunk repro records which
weakener exposed the bug, and the replay test asserts the violation
reappears under it (and disappears without it).

``ignore_volume_expiry``
    OQS nodes skip the lease-expiry check in the read-path hit test
    (everything else — renewals, invalidations, epochs — still works).
    Breaks the paper's core safety argument: an IQS server waits out the
    volume lease of an unreachable OQS node before acking a write, but
    the weakened holder keeps serving from the "expired" lease.  Only
    fires under a fault that lets a lease actually lapse (e.g. a
    partition outlasting the lease) — proactive renewal keeps a
    fault-free run clean — which makes it the canonical target for the
    schedule shrinker.  Caught by the invariant monitor
    (``lease_serve``) and, when the stale value is actually read, by
    ``check_regular``.

``ignore_object_invalidations``
    OQS nodes drop incoming object invalidations on the floor, so cached
    objects are never marked invalid.  The raw lease view itself is now
    lying, so only the *history* checker can see the bug — which is why
    the campaign runs both checkers.

``skip_write_invalidation``
    IQS servers classify every OQS node as already-invalid on writes,
    skipping the object-write-quorum invalidation round entirely.
"""

from __future__ import annotations

import types
from typing import Callable, Dict

from ..core.dqvl import DqvlIqsNode, DqvlOqsNode
from ..types import ZERO_LC

__all__ = ["WEAKENERS", "apply_weakener"]


def _dqvl_nodes(deployment):
    cluster = getattr(deployment, "cluster", None)
    oqs = [n for n in getattr(cluster, "oqs_nodes", []) if isinstance(n, DqvlOqsNode)]
    iqs = [n for n in getattr(cluster, "iqs_nodes", []) if isinstance(n, DqvlIqsNode)]
    if not oqs or not iqs:
        raise ValueError(
            "weakeners target DQVL deployments (protocols 'dqvl'/'basic_dq' "
            "with lease views); this deployment has none"
        )
    return iqs, oqs


def ignore_volume_expiry(deployment) -> None:
    _iqs, oqs = _dqvl_nodes(deployment)
    for node in oqs:
        # Re-implements is_local_valid minus the two expiry comparisons.
        # Patching the node (not the shared view method) leaves renewal
        # and invalidation machinery fully intact.
        def is_local_valid(self, obj):
            volume = self.volume_of(obj)
            view = self.view
            valid = set()
            for i in self.iqs.nodes:
                if (volume, i) not in view._vol_expires:
                    continue
                lease = view._objects.get((obj, i))
                if lease is None or not lease.valid:
                    continue
                if lease.epoch != view._vol_epoch.get((volume, i), 0):
                    continue
                valid.add(i)
            if not self.iqs.is_read_quorum(valid):
                return False
            best = max(
                (view.object_clock(obj, i) for i in valid), default=ZERO_LC
            )
            max_seen = max(
                (view.object_clock(obj, i) for i in self.iqs.nodes),
                default=ZERO_LC,
            )
            return best >= max_seen
        node.is_local_valid = types.MethodType(is_local_valid, node)


def ignore_object_invalidations(deployment) -> None:
    _iqs, oqs = _dqvl_nodes(deployment)
    for node in oqs:
        def apply_invalidation(self, iqs_node, obj, lc):
            return None
        node.view.apply_invalidation = types.MethodType(apply_invalidation, node.view)


def skip_write_invalidation(deployment) -> None:
    iqs, _oqs = _dqvl_nodes(deployment)
    for node in iqs:
        def _classify_oqs_node(self, obj, volume, oqs_node, lc):
            return "invalid"
        node._classify_oqs_node = types.MethodType(_classify_oqs_node, node)


#: weakener registry (names are part of the corpus format — stable)
WEAKENERS: Dict[str, Callable] = {
    "ignore_volume_expiry": ignore_volume_expiry,
    "ignore_object_invalidations": ignore_object_invalidations,
    "skip_write_invalidation": skip_write_invalidation,
}


def apply_weakener(deployment, name: str) -> None:
    """Apply the named weakener to a built deployment (no-op for '')."""
    if not name:
        return
    try:
        weakener = WEAKENERS[name]
    except KeyError:
        raise KeyError(
            f"unknown weakener {name!r}; choose from {sorted(WEAKENERS)}"
        ) from None
    weakener(deployment)
