"""Deliberately broken protocol variants ("weakeners").

A chaos harness that only ever reports "0 violations" proves nothing —
the zero is meaningful only if the same harness demonstrably *lights up*
when the protocol is broken.  Each weakener here disables one safety
mechanism of a built DQVL deployment, in place, by rebinding a bound
method on the live node objects (``types.MethodType``), so the healthy
code path stays byte-identical and a corpus repro can flip between
healthy and weakened replay of the *same* schedule.

Weakeners are part of the corpus format: a shrunk repro records which
weakener exposed the bug, and the replay test asserts the violation
reappears under it (and disappears without it).

``ignore_volume_expiry``
    OQS nodes skip the lease-expiry check in the read-path hit test
    (everything else — renewals, invalidations, epochs — still works).
    Breaks the paper's core safety argument: an IQS server waits out the
    volume lease of an unreachable OQS node before acking a write, but
    the weakened holder keeps serving from the "expired" lease.  Only
    fires under a fault that lets a lease actually lapse (e.g. a
    partition outlasting the lease) — proactive renewal keeps a
    fault-free run clean — which makes it the canonical target for the
    schedule shrinker.  Caught by the invariant monitor
    (``lease_serve``) and, when the stale value is actually read, by
    ``check_regular``.

``ignore_object_invalidations``
    OQS nodes drop incoming object invalidations on the floor, so cached
    objects are never marked invalid.  The raw lease view itself is now
    lying, so only the *history* checker can see the bug — which is why
    the campaign runs both checkers.

``skip_write_invalidation``
    IQS servers classify every OQS node as already-invalid on writes,
    skipping the object-write-quorum invalidation round entirely.

``keeper_abandons_lapse``
    The proactive renewal keeper gives up the first time a volume lease
    lapses instead of re-acquiring it: a *liveness* bug, invisible to
    every safety oracle (the read path re-validates on demand, so no
    stale read ever happens) — it exists to light up the
    ``liveness_keeper`` oracle of :mod:`repro.mc.liveness`, which
    catches the keeper's warm exit.

``drop_vl_acks``
    OQS nodes silently drop their ``vl_ack`` messages.  Safe (the
    holder still *applies* the shipped invalidations — it just never
    acknowledges them), but the granter's delayed-invalidation queue
    can then never drain: the ``liveness_inval`` pending-forever
    oracle's target.
"""

from __future__ import annotations

import types
from typing import Callable, Dict

from ..core.dqvl import DqvlIqsNode, DqvlOqsNode
from ..types import ZERO_LC

__all__ = ["WEAKENERS", "apply_weakener"]


def _dqvl_nodes(deployment):
    cluster = getattr(deployment, "cluster", None)
    oqs = [n for n in getattr(cluster, "oqs_nodes", []) if isinstance(n, DqvlOqsNode)]
    iqs = [n for n in getattr(cluster, "iqs_nodes", []) if isinstance(n, DqvlIqsNode)]
    if not oqs or not iqs:
        raise ValueError(
            "weakeners target DQVL deployments (protocols 'dqvl'/'basic_dq' "
            "with lease views); this deployment has none"
        )
    return iqs, oqs


def ignore_volume_expiry(deployment) -> None:
    _iqs, oqs = _dqvl_nodes(deployment)
    for node in oqs:
        # Re-implements is_local_valid minus the two expiry comparisons.
        # Patching the node (not the shared view method) leaves renewal
        # and invalidation machinery fully intact.
        def is_local_valid(self, obj):
            volume = self.volume_of(obj)
            view = self.view
            valid = set()
            for i in self.iqs.nodes:
                if (volume, i) not in view._vol_expires:
                    continue
                lease = view._objects.get((obj, i))
                if lease is None or not lease.valid:
                    continue
                if lease.epoch != view._vol_epoch.get((volume, i), 0):
                    continue
                valid.add(i)
            if not self.iqs.is_read_quorum(valid):
                return False
            best = max(
                (view.object_clock(obj, i) for i in valid), default=ZERO_LC
            )
            max_seen = max(
                (view.object_clock(obj, i) for i in self.iqs.nodes),
                default=ZERO_LC,
            )
            return best >= max_seen
        node.is_local_valid = types.MethodType(is_local_valid, node)


def ignore_object_invalidations(deployment) -> None:
    _iqs, oqs = _dqvl_nodes(deployment)
    for node in oqs:
        def apply_invalidation(self, iqs_node, obj, lc):
            return None
        node.view.apply_invalidation = types.MethodType(apply_invalidation, node.view)


def skip_write_invalidation(deployment) -> None:
    iqs, _oqs = _dqvl_nodes(deployment)
    for node in iqs:
        def _classify_oqs_node(self, obj, volume, oqs_node, lc):
            return "invalid"
        node._classify_oqs_node = types.MethodType(_classify_oqs_node, node)


def keeper_abandons_lapse(deployment) -> None:
    _iqs, oqs = _dqvl_nodes(deployment)
    for node in oqs:
        # The healthy loop re-renews whenever the earliest quorum expiry
        # nears; this variant breaks out the first time that deadline is
        # already past (a real lapse — not the never-granted initial
        # state), abandoning a volume that still has read interest.
        def _volume_keeper(self, volume):
            margin = self.config.renewal_margin_ms
            while True:
                now = self.clock.now()
                interest = self._volume_interest.get(volume, float("-inf"))
                if now - interest > self.config.interest_window_ms:
                    break
                deadline = min(
                    (self.view.volume_expiry(volume, i) for i in self.iqs.nodes),
                    default=float("-inf"),
                )
                if deadline > float("-inf") and deadline <= now:
                    break  # the lapse: a healthy keeper would renew here
                if deadline - now <= margin:
                    yield from self._renew_volume_quorum(volume)
                else:
                    yield self.sim.sleep(max(deadline - now - margin, 1.0))
                    continue
                now = self.clock.now()
                deadline = min(
                    (self.view.volume_expiry(volume, i) for i in self.iqs.nodes),
                    default=now,
                )
                yield self.sim.sleep(max(deadline - now - margin, 1.0))
            self._keeper_exited(volume)
        node._volume_keeper = types.MethodType(_volume_keeper, node)


def drop_vl_acks(deployment) -> None:
    _iqs, oqs = _dqvl_nodes(deployment)
    for node in oqs:
        original_send = node.send

        def send(self, dst, kind, payload=None, reply_to=None, span=None):
            if kind == "vl_ack":
                return None
            return original_send(dst, kind, payload, reply_to=reply_to, span=span)
        node.send = types.MethodType(send, node)


#: weakener registry (names are part of the corpus format — stable)
WEAKENERS: Dict[str, Callable] = {
    "ignore_volume_expiry": ignore_volume_expiry,
    "ignore_object_invalidations": ignore_object_invalidations,
    "skip_write_invalidation": skip_write_invalidation,
    "keeper_abandons_lapse": keeper_abandons_lapse,
    "drop_vl_acks": drop_vl_acks,
}


def apply_weakener(deployment, name: str) -> None:
    """Apply the named weakener to a built deployment (no-op for '')."""
    if not name:
        return
    try:
        weakener = WEAKENERS[name]
    except KeyError:
        raise KeyError(
            f"unknown weakener {name!r}; choose from {sorted(WEAKENERS)}"
        ) from None
    weakener(deployment)
