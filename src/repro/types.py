"""Shared value types used across protocols.

Logical clocks
--------------
The paper orders writes by *logical clocks*.  Comparisons like
``lastWriteLC_o`` vs. an incoming write's clock require a **total**
order, so ties between concurrent writers must be broken
deterministically.  :class:`LogicalClock` therefore is a
``(counter, node_id)`` pair ordered lexicographically — the classic
Lamport construction.

Operation results
-----------------
Every protocol client returns :class:`ReadResult` / :class:`WriteResult`
records so the harness, the consistency checker and the tests are
protocol-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = ["LogicalClock", "ZERO_LC", "ReadResult", "WriteResult"]


@dataclass(frozen=True, order=True)
class LogicalClock:
    """A totally ordered Lamport clock value.

    ``counter`` dominates; ``node_id`` breaks ties between distinct
    writers that picked the same counter concurrently.  The zero clock
    (``ZERO_LC``) tags the initial value of every object.
    """

    counter: int = 0
    node_id: str = ""

    def next(self, node_id: str) -> "LogicalClock":
        """The smallest clock at *node_id* strictly greater than self."""
        return LogicalClock(self.counter + 1, node_id)

    def merge(self, other: "LogicalClock") -> "LogicalClock":
        """The larger of the two clocks (Lamport merge)."""
        return self if self >= other else other

    def __str__(self) -> str:
        return f"{self.counter}@{self.node_id or '-'}"


ZERO_LC = LogicalClock(0, "")


@dataclass
class ReadResult:
    """Outcome of a client read.

    Attributes
    ----------
    key:
        Object identifier.
    value:
        The returned value (``None`` for a never-written object).
    lc:
        Logical clock of the generating write (``ZERO_LC`` if none).
    start_time / end_time:
        Simulated invocation and response instants — the consistency
        checker uses these intervals to decide concurrency.
    client:
        Issuing service-client id.
    server:
        Replica that served the read (when meaningful).
    hit:
        For cache-based protocols: True when served without contacting
        a remote quorum (DQVL read hit).
    degraded:
        True when a front end served a remembered local value because
        its storage path was unavailable (circuit breaker open).  The
        value may be stale; regularity is not claimed for it — the
        consistency checker skips degraded reads and the chaos campaign
        counts them separately.
    staleness_ms / staleness_bound_ms:
        For degraded reads: the served value's age of information
        (simulated time since the front end last confirmed it against
        the storage layer) and the advertised bound the front end
        guarantees never to exceed.
    """

    key: str
    value: Any
    lc: LogicalClock
    start_time: float
    end_time: float
    client: str = ""
    server: Optional[str] = None
    hit: Optional[bool] = None
    degraded: bool = False
    staleness_ms: Optional[float] = None
    staleness_bound_ms: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time


@dataclass
class WriteResult:
    """Outcome of a client write (completion acknowledged)."""

    key: str
    value: Any
    lc: LogicalClock
    start_time: float
    end_time: float
    client: str = ""
    suppressed: Optional[bool] = None

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time
