"""The TPC-W customer-profile workload (Section 4.1).

The paper motivates DQVL with TPC-W's *per-customer profile object*
(name, account, recent orders, credit card, address): a multi-reader,
multi-writer object whose accesses nevertheless exhibit strong locality,
because each customer is routed to one edge server at a time.

The measured characteristics the paper states:

* **5 % writes** — "95 % reads on a customer's purchase history, credit
  information, and addresses and 5 % writes on a customer's shipping
  address when processing an online purchase";
* customer → closest edge server routing, so each edge server's clients
  touch a (mostly) disjoint customer population;
* occasional re-routing (server failure, customer travel) producing the
  rare cross-node accesses the protocol must stay correct under.

:func:`tpcw_profile_stream` builds the corresponding operation stream
for one application client; :func:`profile_keys` defines the shared key
space so volumes can be assigned per customer population.
"""

from __future__ import annotations

from typing import List, Optional

from .generators import (
    BernoulliOpStream,
    KeyUniverse,
    LazyKeys,
    PartitionedKeyChooser,
    ZipfKeyChooser,
)

__all__ = [
    "TPCW_WRITE_RATIO",
    "profile_key",
    "profile_keys",
    "tpcw_profile_stream",
]

#: The paper's update rate for the TPC-W profile object.
TPCW_WRITE_RATIO = 0.05


def profile_key(customer_id: int) -> str:
    """Storage key of one customer's profile object."""
    return f"profile:{customer_id:06d}"


def profile_keys(num_customers: int) -> List[str]:
    """Keys of the whole customer population."""
    return [profile_key(c) for c in range(num_customers)]


class _ForeignProfiles(LazyKeys):
    """Every customer profile key *except* one client's own range.

    Index *i* maps to customer ``i`` below the excluded range and to
    ``i + span`` above it, so foreign customers are sampled lazily by
    index instead of materialising the (num_clients × customers) key
    list per client — constructing a 10k-client fleet is O(1) per
    client rather than O(num_clients² × customers_per_client).
    """

    def __init__(self, total: int, own_start: int, span: int) -> None:
        self.total = total
        self.own_start = own_start
        self.span = span

    def __len__(self) -> int:
        return self.total - self.span

    def __getitem__(self, index: int) -> str:
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        customer = index if index < self.own_start else index + self.span
        return profile_key(customer)


def tpcw_profile_stream(
    rng,
    client_index: int,
    num_clients: int,
    customers_per_client: int = 50,
    affinity: float = 0.98,
    write_ratio: float = TPCW_WRITE_RATIO,
    zipf_s: float = 0.8,
    label: Optional[str] = None,
) -> BernoulliOpStream:
    """Operation stream for application client *client_index*.

    The global customer population is split evenly across clients;
    this client draws from its own partition with Zipf popularity
    (frequent shoppers) and, with probability ``1 - affinity``, touches
    a foreign customer's profile (a redirected session).
    """
    if not 0 <= client_index < num_clients:
        raise ValueError("client_index out of range")
    own_start = client_index * customers_per_client
    own = KeyUniverse(customers_per_client, fmt="profile:{:06d}", start=own_start)
    foreign = _ForeignProfiles(
        num_clients * customers_per_client, own_start, customers_per_client
    )
    chooser = PartitionedKeyChooser(
        own_keys=own,
        foreign_keys=foreign,
        affinity=affinity,
        own_chooser=ZipfKeyChooser(own, s=zipf_s),
    )
    return BernoulliOpStream(
        rng, chooser, write_ratio, label=label or f"c{client_index}-"
    )
