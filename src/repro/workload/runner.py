"""Closed-loop workload execution.

:func:`closed_loop` drives one client through an operation stream,
recording every outcome (including rejections) into a shared
:class:`~repro.consistency.history.History`.  It works against any
object exposing ``read``/``write`` generator methods — application
clients and raw protocol clients alike — so the same workloads power
response-time, availability, and consistency experiments.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..consistency.history import History
from ..edge.frontend import OperationFailed
from ..quorum.qrpc import QrpcError
from ..sim.kernel import Simulator
from ..sim.node import NodeCrashed, RpcTimeout
from .generators import READ, OpSpec

__all__ = ["closed_loop"]

#: Exceptions that mean "the system rejected the request" rather than a
#: bug: the paper's availability metric counts exactly these.
REJECTION_ERRORS = (OperationFailed, QrpcError, RpcTimeout, NodeCrashed)


def closed_loop(
    sim: Simulator,
    client,
    stream: Iterator[OpSpec],
    history: History,
    num_ops: int,
    think_time_ms: float = 0.0,
    deadline_ms: Optional[float] = None,
):
    """Run *num_ops* operations back to back (kernel process).

    Parameters
    ----------
    client:
        Anything with ``read(key)`` / ``write(key, value)`` generators.
    stream:
        Source of :class:`~repro.workload.generators.OpSpec`.
    history:
        Shared history; failures are recorded with ``ok=False``.
    think_time_ms:
        Optional pause between operations (0 = paper's closed loop).
        Think time separates *consecutive* operations: there is no
        trailing pause after the final op, and none once the deadline
        has passed — a deadline-bounded run finishes with its last
        operation, not ``think_time_ms`` later.
    deadline_ms:
        Stop issuing operations once the simulated clock passes this.

    Returns the number of operations actually issued.
    """
    issued = 0
    for remaining in range(num_ops, 0, -1):
        if deadline_ms is not None and sim.now >= deadline_ms:
            break
        spec = next(stream)
        start = sim.now
        issued += 1
        try:
            if spec.kind == READ:
                result = yield from client.read(spec.key)
                history.record_read(result)
            else:
                result = yield from client.write(spec.key, spec.value)
                history.record_write(result)
        except REJECTION_ERRORS:
            history.record_failure(
                spec.kind, spec.key, start, sim.now,
                getattr(client, "node_id", "client"),
                value=spec.value if spec.kind != READ else None,
            )
        if (
            think_time_ms > 0
            and remaining > 1
            and (deadline_ms is None or sim.now < deadline_ms)
        ):
            yield sim.sleep(think_time_ms)
    return issued
