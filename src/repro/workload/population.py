"""Aggregate client populations: open-loop arrivals at internet scale.

The paper's evaluation drives each edge server with a handful of
*closed-loop* clients — one coroutine per client, the next request only
after the previous response.  That model cannot express "millions of
users": a million coroutines would cost millions of kernel events per
simulated second before a single request is served.

This module replaces per-client coroutines with **aggregate
populations**.  A population of ``N`` modeled users, each issuing
``λ`` requests per second, is the superposition of ``N`` independent
Poisson processes — statistically identical to *one* Poisson process at
rate ``N·λ`` (the classic fluid aggregation).  So the population is
simulated as a single open-loop arrival process whose events are handed
to a **bounded pool of issuer coroutines** that drive the *existing*
protocol clients.  Kernel cost scales with the number of *arrivals*
(rate × horizon), never with the number of modeled users: a
million-user PoP at a compressed horizon costs thousands of events per
simulated second, not millions of coroutines.

Building blocks
---------------
* :class:`RateProfile` — deterministic time-varying modulation of the
  base rate: :class:`DiurnalProfile` (sinusoidal day/night cycle),
  :class:`FlashCrowdProfile` (ramp / hold / decay spike),
  :class:`CompositeProfile` (product of modulations).
* :class:`PoissonArrivals` — non-homogeneous Poisson arrivals via
  Lewis–Shedler thinning against the profile's rate ceiling.
* :class:`MmppArrivals` — a 2-state Markov-modulated Poisson process
  (normal / burst states with exponential dwell times) for arrival
  correlation beyond what a deterministic profile expresses.
* :class:`IssuerPool` — a fixed number of issuer coroutines around
  protocol clients, with a bounded FIFO overflow queue; arrivals beyond
  the queue are *dropped* (counted, like an overloaded accept queue).
* :func:`drive_population` — the dispatcher process: draws arrivals,
  load-balances them across pools, closes the pools at the horizon.
* :func:`spawn_per_user_clients` — the old one-coroutine-per-user model
  (open loop, exponential gaps) kept as the statistical reference for
  the aggregate-vs-coroutine equivalence tests.

Determinism
-----------
Every random draw comes from RNG streams owned by the caller (dedicated
``random.Random(f"...:{seed}")`` streams in the CDN scenarios); the
dispatcher hands work to issuers in FIFO order and pools serve their
queues in FIFO order, so a same-seed run replays byte-identically.  The
simulator's own ``sim.rng`` is never touched.
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from ..consistency.history import History
from ..sim.kernel import Simulator
from .generators import READ, OpSpec


def _rejection_errors():
    # Imported lazily: runner pulls in the edge package, whose cdn module
    # imports this one — a module-level import would be circular.
    from .runner import REJECTION_ERRORS

    return REJECTION_ERRORS

__all__ = [
    "RateProfile",
    "ConstantProfile",
    "DiurnalProfile",
    "FlashCrowdProfile",
    "CompositeProfile",
    "ArrivalProcess",
    "PoissonArrivals",
    "MmppArrivals",
    "PopulationStats",
    "IssuerPool",
    "drive_population",
    "pick_round_robin",
    "pick_least_loaded",
    "spawn_per_user_clients",
]


# ---------------------------------------------------------------------------
# rate profiles
# ---------------------------------------------------------------------------


class RateProfile:
    """A deterministic rate multiplier over simulated time.

    ``multiplier(t)`` scales the population's base arrival rate at time
    *t* (ms); ``ceiling()`` bounds it from above so the thinning sampler
    has a proposal rate.  Multipliers must be non-negative and never
    exceed the ceiling.
    """

    def multiplier(self, t_ms: float) -> float:
        raise NotImplementedError

    def ceiling(self) -> float:
        raise NotImplementedError


class ConstantProfile(RateProfile):
    """A flat profile (multiplier 1): the homogeneous Poisson case."""

    def multiplier(self, t_ms: float) -> float:
        return 1.0

    def ceiling(self) -> float:
        return 1.0


class DiurnalProfile(RateProfile):
    """Sinusoidal day/night modulation.

    ``1 + amplitude * cos(2π (t - peak) / period)`` — the multiplier
    peaks at ``1 + amplitude`` when ``t mod period == peak_frac *
    period`` and bottoms out at ``1 - amplitude``.  ``amplitude`` in
    [0, 1] keeps the rate non-negative.
    """

    def __init__(
        self,
        period_ms: float = 86_400_000.0,
        amplitude: float = 0.5,
        peak_frac: float = 0.5,
    ) -> None:
        if period_ms <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if not 0.0 <= peak_frac < 1.0:
            raise ValueError("peak_frac must be in [0, 1)")
        self.period_ms = period_ms
        self.amplitude = amplitude
        self.peak_frac = peak_frac

    def multiplier(self, t_ms: float) -> float:
        phase = (t_ms / self.period_ms) - self.peak_frac
        return 1.0 + self.amplitude * math.cos(2.0 * math.pi * phase)

    def ceiling(self) -> float:
        return 1.0 + self.amplitude


class FlashCrowdProfile(RateProfile):
    """A flash crowd: linear ramp to a peak, hold, exponential decay.

    Outside the event the multiplier is 1.  From ``start_ms`` it ramps
    linearly over ``ramp_ms`` to ``peak_multiplier``, holds for
    ``hold_ms``, then decays exponentially with time constant
    ``decay_ms`` back toward 1 (cut off once within 1 %).
    """

    def __init__(
        self,
        start_ms: float,
        peak_multiplier: float,
        ramp_ms: float = 1_000.0,
        hold_ms: float = 5_000.0,
        decay_ms: float = 5_000.0,
    ) -> None:
        if peak_multiplier < 1.0:
            raise ValueError("peak_multiplier must be >= 1")
        if min(ramp_ms, hold_ms, decay_ms) < 0 or start_ms < 0:
            raise ValueError("flash-crowd times must be non-negative")
        self.start_ms = start_ms
        self.peak_multiplier = peak_multiplier
        self.ramp_ms = ramp_ms
        self.hold_ms = hold_ms
        self.decay_ms = decay_ms

    def multiplier(self, t_ms: float) -> float:
        dt = t_ms - self.start_ms
        if dt < 0:
            return 1.0
        if dt < self.ramp_ms:
            return 1.0 + (self.peak_multiplier - 1.0) * (dt / self.ramp_ms)
        dt -= self.ramp_ms
        if dt < self.hold_ms:
            return self.peak_multiplier
        dt -= self.hold_ms
        if self.decay_ms <= 0:
            return 1.0
        excess = (self.peak_multiplier - 1.0) * math.exp(-dt / self.decay_ms)
        return 1.0 + (excess if excess > 0.01 * (self.peak_multiplier - 1.0) else 0.0)

    def ceiling(self) -> float:
        return self.peak_multiplier


class CompositeProfile(RateProfile):
    """Product of component profiles (diurnal cycle × flash crowd)."""

    def __init__(self, profiles: Sequence[RateProfile]) -> None:
        self.profiles = list(profiles)

    def multiplier(self, t_ms: float) -> float:
        out = 1.0
        for p in self.profiles:
            out *= p.multiplier(t_ms)
        return out

    def ceiling(self) -> float:
        out = 1.0
        for p in self.profiles:
            out *= p.ceiling()
        return out


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------


class ArrivalProcess:
    """Draws successive absolute arrival instants (ms, strictly
    increasing).  Implementations own their RNG so two processes with
    distinct streams never perturb each other."""

    def next_arrival(self, now_ms: float) -> float:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """(Non-)homogeneous Poisson arrivals at ``rate_per_s × profile``.

    Uses Lewis–Shedler thinning: candidate gaps are exponential at the
    profile's ceiling rate and accepted with probability
    ``rate(t) / rate_max`` — exact for any bounded profile, and one RNG
    stream drives both draws (deterministic under a fixed seed).
    """

    def __init__(self, rng, rate_per_s: float,
                 profile: Optional[RateProfile] = None) -> None:
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        self.rng = rng
        self.rate_per_ms = rate_per_s / 1000.0
        self.profile = profile or ConstantProfile()
        self._ceiling = self.rate_per_ms * self.profile.ceiling()
        if self._ceiling <= 0:
            raise ValueError("profile ceiling must leave a positive rate")

    def _accept_prob(self, t_ms: float) -> float:
        return (self.rate_per_ms * self.profile.multiplier(t_ms)) / self._ceiling

    def next_arrival(self, now_ms: float) -> float:
        t = now_ms
        while True:
            t += self.rng.expovariate(self._ceiling)
            if self.rng.random() < self._accept_prob(t):
                return t


class MmppArrivals(ArrivalProcess):
    """A 2-state Markov-modulated Poisson process.

    The hidden chain alternates between a *normal* state (multiplier 1)
    and a *burst* state (``burst_multiplier``), with exponential dwell
    times.  Within the current state, arrivals are Poisson at
    ``rate × state multiplier × profile(t)``.  Implemented as thinning
    at the burst-rate ceiling, with the state trajectory advanced
    lazily and deterministically from the same RNG stream.
    """

    def __init__(
        self,
        rng,
        rate_per_s: float,
        burst_multiplier: float = 4.0,
        mean_dwell_normal_ms: float = 10_000.0,
        mean_dwell_burst_ms: float = 2_000.0,
        profile: Optional[RateProfile] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if min(mean_dwell_normal_ms, mean_dwell_burst_ms) <= 0:
            raise ValueError("dwell times must be positive")
        self.rng = rng
        self.rate_per_ms = rate_per_s / 1000.0
        self.burst_multiplier = burst_multiplier
        self.dwell_ms = (mean_dwell_normal_ms, mean_dwell_burst_ms)
        self.profile = profile or ConstantProfile()
        self._ceiling = self.rate_per_ms * burst_multiplier * self.profile.ceiling()
        self._state = 0  # 0 = normal, 1 = burst
        self._next_switch = rng.expovariate(1.0 / self.dwell_ms[0])

    def _state_at(self, t_ms: float) -> int:
        while self._next_switch <= t_ms:
            self._state = 1 - self._state
            self._next_switch += self.rng.expovariate(
                1.0 / self.dwell_ms[self._state]
            )
        return self._state

    def next_arrival(self, now_ms: float) -> float:
        t = now_ms
        while True:
            t += self.rng.expovariate(self._ceiling)
            state_mult = self.burst_multiplier if self._state_at(t) else 1.0
            rate = self.rate_per_ms * state_mult * self.profile.multiplier(t)
            if self.rng.random() < rate / self._ceiling:
                return t


# ---------------------------------------------------------------------------
# issuer pools
# ---------------------------------------------------------------------------


@dataclass
class PopulationStats:
    """Counters for one population / issuer pool."""

    arrivals: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    dropped: int = 0
    queue_peak: int = 0
    #: sum over dispatched ops of (issue time - arrival time), ms
    queue_wait_ms: float = 0.0

    def merged(self, other: "PopulationStats") -> "PopulationStats":
        return PopulationStats(
            arrivals=self.arrivals + other.arrivals,
            dispatched=self.dispatched + other.dispatched,
            completed=self.completed + other.completed,
            failed=self.failed + other.failed,
            dropped=self.dropped + other.dropped,
            queue_peak=max(self.queue_peak, other.queue_peak),
            queue_wait_ms=self.queue_wait_ms + other.queue_wait_ms,
        )

    def to_json_obj(self) -> dict:
        return dataclasses.asdict(self)


class IssuerPool:
    """A bounded pool of issuer coroutines around protocol clients.

    One issuer coroutine per entry in *clients*; an arrival submitted
    while every issuer is busy waits in a bounded FIFO queue, and
    arrivals beyond ``queue_limit`` are dropped (counted — the model of
    an overloaded accept queue).  Completed operations are recorded into
    *history* with ``start`` = the *arrival* instant, so open-loop
    latency includes queueing delay, as it must.
    """

    def __init__(
        self,
        sim: Simulator,
        clients: Sequence,
        history: History,
        queue_limit: int = 1_000,
        name: str = "pool",
        stats: Optional[PopulationStats] = None,
    ) -> None:
        if not clients:
            raise ValueError("issuer pool needs at least one client")
        if queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        self.sim = sim
        self.history = history
        self.queue_limit = queue_limit
        self.name = name
        self.stats = stats if stats is not None else PopulationStats()
        self.in_flight = 0
        self._queue: deque = deque()
        self._idle: deque = deque()
        self._closed = False
        self.processes = [
            sim.spawn(self._issuer(client), name=f"{name}:issuer{i}")
            for i, client in enumerate(clients)
        ]

    @property
    def load(self) -> int:
        """Pending work: executing plus queued (the least-loaded
        balancing signal)."""
        return self.in_flight + len(self._queue)

    def submit(self, spec: OpSpec, arrival_ms: float) -> bool:
        """Hand one arrival to the pool; False when it had to be dropped."""
        if self._closed:
            raise RuntimeError(f"pool {self.name} is closed")
        self.stats.arrivals += 1
        if self._idle:
            self._idle.popleft().resolve((spec, arrival_ms))
            return True
        if len(self._queue) < self.queue_limit:
            self._queue.append((spec, arrival_ms))
            if len(self._queue) > self.stats.queue_peak:
                self.stats.queue_peak = len(self._queue)
            return True
        self.stats.dropped += 1
        return False

    def close(self) -> None:
        """No more arrivals: issuers drain the queue, then exit."""
        self._closed = True
        while self._idle:
            self._idle.popleft().resolve(None)

    def _issuer(self, client):
        rejection_errors = _rejection_errors()
        while True:
            if self._queue:
                item = self._queue.popleft()
            elif self._closed:
                return
            else:
                slot = self.sim.future(name=f"{self.name}:idle")
                self._idle.append(slot)
                item = yield slot
                if item is None:
                    return
            spec, arrival_ms = item
            self.stats.dispatched += 1
            self.stats.queue_wait_ms += self.sim.now - arrival_ms
            self.in_flight += 1
            try:
                if spec.kind == READ:
                    result = yield from client.read(spec.key)
                    self.history.record_read(
                        dataclasses.replace(result, start_time=arrival_ms)
                    )
                else:
                    result = yield from client.write(spec.key, spec.value)
                    self.history.record_write(
                        dataclasses.replace(result, start_time=arrival_ms)
                    )
                self.stats.completed += 1
            except rejection_errors:
                self.stats.failed += 1
                self.history.record_failure(
                    spec.kind, spec.key, arrival_ms, self.sim.now,
                    getattr(client, "node_id", self.name),
                    value=spec.value if spec.kind != READ else None,
                )
            finally:
                self.in_flight -= 1


# ---------------------------------------------------------------------------
# balancing + the dispatcher
# ---------------------------------------------------------------------------


def pick_round_robin(pools: Sequence[IssuerPool], index: int) -> int:
    """Spread arrivals over pools in arrival order."""
    return index % len(pools)


def pick_least_loaded(pools: Sequence[IssuerPool], index: int) -> int:
    """Send each arrival to the least-loaded pool (ties: lowest index) —
    the front-end load-balancer model."""
    best = 0
    best_load = pools[0].load
    for i in range(1, len(pools)):
        load = pools[i].load
        if load < best_load:
            best, best_load = i, load
    return best


def drive_population(
    sim: Simulator,
    arrivals: ArrivalProcess,
    stream: Iterator[OpSpec],
    pools: Sequence[IssuerPool],
    horizon_ms: float,
    balancer: Callable[[Sequence[IssuerPool], int], int] = pick_round_robin,
    stats: Optional[PopulationStats] = None,
):
    """Dispatcher kernel process for one population.

    Draws arrivals until the horizon, takes the next op from *stream*,
    and submits it to the pool chosen by *balancer*.  At the horizon
    every pool is closed (issuers drain their queues and exit).  Run it
    with ``sim.spawn``; the caller owns pool construction so several
    populations may share pools.
    """
    if horizon_ms <= 0:
        raise ValueError("horizon must be positive")
    index = 0
    t = arrivals.next_arrival(sim.now)
    while t <= horizon_ms:
        if t > sim.now:
            yield sim.sleep(t - sim.now)
        spec = next(stream)
        if stats is not None:
            stats.arrivals += 1
        pools[balancer(pools, index)].submit(spec, sim.now)
        index += 1
        t = arrivals.next_arrival(t)
    for pool in pools:
        pool.close()


# ---------------------------------------------------------------------------
# the per-user reference model
# ---------------------------------------------------------------------------


def spawn_per_user_clients(
    sim: Simulator,
    clients: Sequence,
    stream_factory: Callable[[int], Iterator[OpSpec]],
    rng_factory: Callable[[int], "object"],
    rate_per_user_per_s: float,
    history: History,
    horizon_ms: float,
) -> List:
    """The legacy one-coroutine-per-user model, for equivalence checks.

    Spawns one open-loop coroutine per entry in *clients*: user *u*
    draws exponential gaps at ``rate_per_user_per_s`` from
    ``rng_factory(u)`` and issues ops from ``stream_factory(u)`` until
    the horizon.  The superposition of these processes is statistically
    identical to one aggregate :class:`PoissonArrivals` population at
    ``len(clients) × rate`` — the property the equivalence tests pin.
    """
    rate_per_ms = rate_per_user_per_s / 1000.0
    if rate_per_ms <= 0:
        raise ValueError("per-user rate must be positive")

    rejection_errors = _rejection_errors()

    def user(u: int, client):
        rng = rng_factory(u)
        stream = stream_factory(u)
        t = rng.expovariate(rate_per_ms)
        while t <= horizon_ms:
            yield sim.sleep(t - sim.now)
            spec = next(stream)
            start = sim.now
            try:
                if spec.kind == READ:
                    result = yield from client.read(spec.key)
                    history.record_read(result)
                else:
                    result = yield from client.write(spec.key, spec.value)
                    history.record_write(result)
            except rejection_errors:
                history.record_failure(
                    spec.kind, spec.key, start, sim.now,
                    getattr(client, "node_id", f"user{u}"),
                    value=spec.value if spec.kind != READ else None,
                )
            t = max(t, sim.now) + rng.expovariate(rate_per_ms)

    return [
        sim.spawn(user(u, client), name=f"user{u}")
        for u, client in enumerate(clients)
    ]
