"""Workload generation.

The paper's target workloads have three structural properties, each
modelled by a generator here:

1. **write ratio** — e.g. 5 % for the TPC-W profile object
   (:class:`BernoulliOpStream` draws each operation independently);
2. **read/write bursts** — "reads tend to be followed by other reads and
   writes tend to be followed by other writes"
   (:class:`MarkovBurstStream` is a two-state Markov chain whose mean
   burst lengths are configurable while preserving the stationary write
   ratio);
3. **access locality across nodes** — "at any given time access to a
   given element tends to come from a single node"; this is a property
   of *key choice*, modelled by :class:`PartitionedKeyChooser` (each
   client owns a key population, as customers are routed to their
   closest edge server) and perturbed by the redirection locality knob.

Streams yield :class:`OpSpec` records; the runner executes them
closed-loop against any protocol client.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "OpSpec",
    "KeyChooser",
    "LazyKeys",
    "KeyUniverse",
    "UniformKeyChooser",
    "ZipfKeyChooser",
    "PartitionedKeyChooser",
    "FixedKeyChooser",
    "BernoulliOpStream",
    "MarkovBurstStream",
]

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class OpSpec:
    """One operation to execute."""

    kind: str  # "read" | "write"
    key: str
    value: Optional[str] = None  # writes only


# ---------------------------------------------------------------------------
# key populations
# ---------------------------------------------------------------------------


class LazyKeys(Sequence[str]):
    """Marker base for key populations generated on demand.

    Choosers copy plain lists defensively; a :class:`LazyKeys` sequence
    is kept as-is, so a million-object population costs O(1) memory.
    Subclasses must provide ``__len__`` and integer ``__getitem__``
    (which is all ``random.Random.choice`` needs).
    """

    def __getitem__(self, index: int) -> str:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class KeyUniverse(LazyKeys):
    """A contiguous, lazily formatted key population.

    Key *i* is ``fmt.format(start + i)`` — the scalable key-universe API
    behind the CDN scenarios (thousands of volumes, millions of objects)
    and the TPC-W per-customer key ranges.  Nothing is materialised:
    indexing formats one string.
    """

    def __init__(self, size: int, fmt: str = "obj:{:08d}", start: int = 0) -> None:
        if size < 1:
            raise ValueError("key universe must not be empty")
        self.size = size
        self.fmt = fmt
        self.start = start

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> str:
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError(index)
        return self.fmt.format(self.start + index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyUniverse({self.size}, {self.fmt!r}, start={self.start})"


def _own_keys(keys: Sequence[str]) -> Sequence[str]:
    """Defensive copy for plain sequences; lazy populations as-is."""
    return keys if isinstance(keys, LazyKeys) else list(keys)


# ---------------------------------------------------------------------------
# key choosers
# ---------------------------------------------------------------------------


class KeyChooser:
    """Interface: pick the key for the next operation."""

    def pick(self, rng) -> str:
        raise NotImplementedError


class FixedKeyChooser(KeyChooser):
    """Always the same key — the single read/write register case."""

    def __init__(self, key: str) -> None:
        self.key = key

    def pick(self, rng) -> str:
        return self.key


class UniformKeyChooser(KeyChooser):
    """Uniform over a key population."""

    def __init__(self, keys: Sequence[str]) -> None:
        if not keys:
            raise ValueError("key population must not be empty")
        self.keys = _own_keys(keys)

    def pick(self, rng) -> str:
        return rng.choice(self.keys)


#: Zipf CDFs memoized by (population size, exponent): thousands of
#: per-PoP choosers over the same key universe share one CDF instead of
#: recomputing (and re-storing) an O(n) table each.  Bounded FIFO so a
#: sweep over many population sizes cannot grow it without limit.
_ZIPF_CDF_CACHE: Dict[Tuple[int, float], List[float]] = {}
_ZIPF_CDF_CACHE_MAX = 32


def _zipf_cdf(n: int, s: float) -> List[float]:
    key = (n, float(s))
    cdf = _ZIPF_CDF_CACHE.get(key)
    if cdf is None:
        weights = [1.0 / (rank**s) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf = list(itertools.accumulate(w / total for w in weights))
        while len(_ZIPF_CDF_CACHE) >= _ZIPF_CDF_CACHE_MAX:
            _ZIPF_CDF_CACHE.pop(next(iter(_ZIPF_CDF_CACHE)))
        _ZIPF_CDF_CACHE[key] = cdf
    return cdf


class ZipfKeyChooser(KeyChooser):
    """Zipf-distributed popularity over a key population.

    Rank r (1-based) has probability proportional to ``1 / r**s`` —
    the classic web-object popularity model.  Sampling uses the inverse
    CDF over cumulative weights, shared across instances via
    :func:`_zipf_cdf` (keyed by size and exponent).
    """

    def __init__(self, keys: Sequence[str], s: float = 0.8) -> None:
        if not keys:
            raise ValueError("key population must not be empty")
        if s < 0:
            raise ValueError("zipf exponent must be non-negative")
        self.keys = _own_keys(keys)
        self.s = s
        self._cdf = _zipf_cdf(len(self.keys), s)

    def pick(self, rng) -> str:
        x = rng.random()
        index = bisect_left(self._cdf, x)
        # Float rounding can leave cdf[-1] fractionally below 1.0; a draw
        # in that tail must clamp to the last key, never index past it.
        if index >= len(self.keys):
            index = len(self.keys) - 1
        return self.keys[index]


class PartitionedKeyChooser(KeyChooser):
    """A client's own key population, with occasional foreign keys.

    Models per-customer data with request routing: client *c* mostly
    touches its own partition (probability ``affinity``) and sometimes a
    key owned by another client (a redirected customer) — the source of
    the rare cross-node concurrency the paper's workload analysis
    predicts.
    """

    def __init__(
        self,
        own_keys: Sequence[str],
        foreign_keys: Sequence[str],
        affinity: float = 0.95,
        own_chooser: Optional[KeyChooser] = None,
    ) -> None:
        if not own_keys:
            raise ValueError("own key population must not be empty")
        if not 0.0 <= affinity <= 1.0:
            raise ValueError("affinity must be in [0, 1]")
        self.own = own_chooser or UniformKeyChooser(own_keys)
        self.foreign = UniformKeyChooser(foreign_keys) if foreign_keys else None
        self.affinity = affinity

    def pick(self, rng) -> str:
        if self.foreign is None or rng.random() < self.affinity:
            return self.own.pick(rng)
        return self.foreign.pick(rng)


# ---------------------------------------------------------------------------
# operation streams
# ---------------------------------------------------------------------------


class _StreamBase:
    """Common value-tagging for write operations."""

    def __init__(self, rng, keys: KeyChooser, label: str = "w") -> None:
        self.rng = rng
        self.keys = keys
        self.label = label
        self._write_seq = 0

    def _write_value(self) -> str:
        self._write_seq += 1
        return f"{self.label}{self._write_seq}"


class BernoulliOpStream(_StreamBase, Iterator[OpSpec]):
    """IID operations: each is a write with probability *write_ratio*."""

    def __init__(self, rng, keys: KeyChooser, write_ratio: float, label: str = "w") -> None:
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        super().__init__(rng, keys, label)
        self.write_ratio = write_ratio

    def __iter__(self) -> "BernoulliOpStream":
        return self

    def __next__(self) -> OpSpec:
        key = self.keys.pick(self.rng)
        if self.rng.random() < self.write_ratio:
            return OpSpec(WRITE, key, self._write_value())
        return OpSpec(READ, key)


class MarkovBurstStream(_StreamBase, Iterator[OpSpec]):
    """Bursty operations from a two-state Markov chain.

    Parameters
    ----------
    write_ratio:
        Stationary fraction of writes ``w``.
    mean_write_burst:
        Mean length of a run of consecutive writes, ``Lw``.  The mean
        read-burst length is derived as ``Lr = Lw * (1 - w) / w`` so the
        stationary ratio is exactly *write_ratio*.  ``mean_write_burst=1``
        with ``write_ratio=0.5`` degenerates to strict alternation — the
        paper's worst case for DQVL's communication overhead.
    """

    def __init__(
        self,
        rng,
        keys: KeyChooser,
        write_ratio: float,
        mean_write_burst: float = 4.0,
        label: str = "w",
    ) -> None:
        if not 0.0 < write_ratio < 1.0:
            raise ValueError("write_ratio must be strictly between 0 and 1")
        if mean_write_burst < 1.0:
            raise ValueError("mean burst length must be at least 1")
        super().__init__(rng, keys, label)
        self.write_ratio = write_ratio
        mean_read_burst = mean_write_burst * (1.0 - write_ratio) / write_ratio
        mean_read_burst = max(mean_read_burst, 1.0)
        # Geometric run lengths: P(stay) = 1 - 1/mean_length.
        self._stay_write = 1.0 - 1.0 / mean_write_burst
        self._stay_read = 1.0 - 1.0 / mean_read_burst
        self._state = WRITE if rng.random() < write_ratio else READ

    def __iter__(self) -> "MarkovBurstStream":
        return self

    def __next__(self) -> OpSpec:
        key = self.keys.pick(self.rng)
        op = (
            OpSpec(WRITE, key, self._write_value())
            if self._state == WRITE
            else OpSpec(READ, key)
        )
        stay = self._stay_write if self._state == WRITE else self._stay_read
        if self.rng.random() >= stay:
            self._state = READ if self._state == WRITE else WRITE
        return op
