"""Workload generation and execution."""

from .generators import (
    BernoulliOpStream,
    FixedKeyChooser,
    KeyChooser,
    MarkovBurstStream,
    OpSpec,
    PartitionedKeyChooser,
    UniformKeyChooser,
    ZipfKeyChooser,
)
from .replay import RecordingStream, ReplayStream, dump_trace, load_trace
from .runner import closed_loop
from .tpcw import TPCW_WRITE_RATIO, profile_key, profile_keys, tpcw_profile_stream

__all__ = [
    "OpSpec",
    "KeyChooser",
    "FixedKeyChooser",
    "UniformKeyChooser",
    "ZipfKeyChooser",
    "PartitionedKeyChooser",
    "BernoulliOpStream",
    "MarkovBurstStream",
    "closed_loop",
    "RecordingStream",
    "ReplayStream",
    "dump_trace",
    "load_trace",
    "TPCW_WRITE_RATIO",
    "profile_key",
    "profile_keys",
    "tpcw_profile_stream",
]
