"""Workload recording and replay.

Two uses:

* **reproducible comparisons** — drive *different protocols with the
  same operation sequence*, removing generator randomness from A/B
  latency comparisons (the figure benches rely on fixed seeds instead;
  replay is stricter);
* **trace-driven workloads** — serialise a recorded stream to a plain
  text format (one op per line) so interesting workloads can live in
  the repository and be replayed exactly.

The text format is intentionally trivial::

    read <key>
    write <key> <value>
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, TextIO

from .generators import OpSpec, READ, WRITE

__all__ = ["RecordingStream", "ReplayStream", "dump_trace", "load_trace"]


class RecordingStream(Iterator[OpSpec]):
    """Wraps a stream, remembering every op it yields."""

    def __init__(self, inner: Iterator[OpSpec]) -> None:
        self.inner = inner
        self.recorded: List[OpSpec] = []

    def __iter__(self) -> "RecordingStream":
        return self

    def __next__(self) -> OpSpec:
        spec = next(self.inner)
        self.recorded.append(spec)
        return spec


class ReplayStream(Iterator[OpSpec]):
    """Yields a fixed operation sequence; optionally cycles."""

    def __init__(self, ops: Iterable[OpSpec], cycle: bool = False) -> None:
        self.ops = list(ops)
        if not self.ops:
            raise ValueError("cannot replay an empty trace")
        self.cycle = cycle
        self._index = 0

    def __iter__(self) -> "ReplayStream":
        return self

    def __next__(self) -> OpSpec:
        if self._index >= len(self.ops):
            if not self.cycle:
                raise StopIteration
            self._index = 0
        spec = self.ops[self._index]
        self._index += 1
        return spec

    def __len__(self) -> int:
        return len(self.ops)


def dump_trace(ops: Iterable[OpSpec], fh: TextIO) -> int:
    """Write ops to *fh* in the line format; returns the count.

    Keys and values must not contain whitespace (enforced) — the format
    favours greppability over generality.
    """
    count = 0
    for spec in ops:
        if any(ch.isspace() for ch in spec.key):
            raise ValueError(f"key contains whitespace: {spec.key!r}")
        if spec.kind == WRITE:
            value = "" if spec.value is None else str(spec.value)
            if any(ch.isspace() for ch in value):
                raise ValueError(f"value contains whitespace: {value!r}")
            fh.write(f"write {spec.key} {value}\n")
        else:
            fh.write(f"read {spec.key}\n")
        count += 1
    return count


def load_trace(fh: TextIO) -> List[OpSpec]:
    """Parse the line format back into OpSpecs (blank lines and ``#``
    comments are ignored)."""
    ops: List[OpSpec] = []
    for line_number, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "read" and len(parts) == 2:
            ops.append(OpSpec(READ, parts[1]))
        elif parts[0] == "write" and len(parts) == 3:
            ops.append(OpSpec(WRITE, parts[1], parts[2]))
        else:
            raise ValueError(f"line {line_number}: cannot parse {line!r}")
    return ops
