"""Read-One/Write-All as a quorum system.

ROWA is the extreme point of the threshold trade-off: read quorums are
singletons (best possible read latency and availability) while the write
quorum is the full node set (worst possible write availability).  The
paper treats ROWA separately from general quorums, as the literature
does, but it *is* a quorum system — and, importantly, it is exactly the
configuration the dual-quorum design recommends for the **OQS** ("span
all nodes with a read quorum size of 1").
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Set

from .system import QuorumSystem

__all__ = ["RowaQuorumSystem"]


class RowaQuorumSystem(QuorumSystem):
    """Read quorum = any single node; write quorum = all nodes."""

    def is_read_quorum(self, members: Set[str]) -> bool:
        return any(node in members for node in self.nodes)

    def is_write_quorum(self, members: Set[str]) -> bool:
        return all(node in members for node in self.nodes)

    def sample_read_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        if prefer is not None and prefer in self.nodes:
            return frozenset([prefer])
        return frozenset([rng.choice(self.nodes)])

    def sample_write_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        return frozenset(self.nodes)

    @property
    def read_quorum_size(self) -> int:
        return 1

    @property
    def write_quorum_size(self) -> int:
        return self.size

    def read_availability(self, p: float) -> float:
        """Any node alive: ``1 - p^n``."""
        return 1.0 - p**self.size

    def write_availability(self, p: float) -> float:
        """All nodes alive: ``(1 - p)^n``."""
        return (1.0 - p) ** self.size
