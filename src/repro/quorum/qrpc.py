"""QRPC — quorum-based remote procedure call.

Section 2 of the paper defines the primitive::

    replies = QRPC(system, READ/WRITE, request)

which sends *request* to nodes of the given quorum system and blocks
until replies constituting the specified quorum have been gathered.

This module implements QRPC as a kernel process, following the paper's
prototype policy:

* the request always goes to the **local node first** if it is a member
  of the system;
* enough additional nodes are selected **at random** to form a minimal
  quorum;
* on timeout, the request is retransmitted to a **freshly sampled
  quorum**, with an **exponentially increasing** retransmission interval;
* replies accumulate across attempts — QRPC completes as soon as the
  responder set contains a full quorum.

The DQVL read path needs a variation (Section 3.2): *different* requests
to different nodes, looping until a protocol-level condition (the paper's
"Condition C") becomes true rather than until a quorum of replies
arrives.  :class:`QuorumCall` supports both through two hooks: a
per-target request factory and a pluggable completion predicate.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from ..sim.kernel import Future, any_of
from ..sim.messages import Message
from ..sim.node import Node, RpcTimeout
from .system import QuorumSystem

__all__ = ["READ", "WRITE", "QrpcError", "QuorumCall", "qrpc"]

READ = "READ"
WRITE = "WRITE"


class QrpcError(Exception):
    """QRPC gave up: the attempt budget was exhausted without a quorum.

    The availability experiments treat this as the system *rejecting* the
    request (the paper's availability definition counts exactly these
    rejections).
    """

    def __init__(self, kind: str, attempts: int):
        super().__init__(f"QRPC {kind!r} failed after {attempts} attempts")
        self.kind = kind
        self.attempts = attempts


# A request factory maps a target node id to (kind, payload), or None to
# skip the target entirely on this attempt.
RequestFactory = Callable[[str], Optional[Tuple[str, Dict]]]


class QuorumCall:
    """One QRPC invocation, runnable as a kernel process.

    Parameters
    ----------
    node:
        The sending node (a service client or a server acting as one).
    system:
        Quorum system to contact.
    mode:
        ``READ`` or ``WRITE`` — which quorum flavour must respond.
    request_for:
        Per-target request factory (see :data:`RequestFactory`).
    done:
        Optional completion predicate over the accumulated replies
        (``{node_id: Message}``).  Defaults to "the responders contain a
        full quorum of the requested flavour".  DQVL's read path passes
        its Condition-C check here.
    initial_timeout_ms / backoff / max_timeout_ms:
        Retransmission schedule (exponential, capped).
    max_attempts:
        Give up (raise :class:`QrpcError`) after this many rounds;
        ``None`` retries forever, matching the basic asynchronous
        protocol in which a write "can block for an arbitrarily long
        period of time".
    prefer:
        Node id to include in every sampled quorum when possible (e.g.
        a front end's co-located replica).  Defaults to the sender
        itself when it is a member of the system — the paper's
        "always transmit to the local node" policy.
    span:
        Optional parent causal span (a ``repro.obs`` Span or raw span
        id).  When the sending node's network has observability
        installed, each retransmission round opens a child span and the
        round's messages carry that span id, producing the
        op→round→message tree.
    resilience:
        Optional :class:`~repro.resilience.NodeResilience`.  When set,
        the call feeds the node's failure detector with every
        reply/timeout, sizes per-round timeouts from observed RTT
        quantiles, avoids suspected replicas when sampling quorums,
        hedges slow rounds with one backup probe, and jitters the
        backoff schedule — all from dedicated RNG streams, so a ``None``
        here (the default) leaves the legacy behaviour byte-identical.
    """

    def __init__(
        self,
        node: Node,
        system: QuorumSystem,
        mode: str,
        request_for: RequestFactory,
        done: Optional[Callable[[Dict[str, Message]], bool]] = None,
        initial_timeout_ms: float = 400.0,
        backoff: float = 2.0,
        max_timeout_ms: float = 6400.0,
        max_attempts: Optional[int] = None,
        prefer: Optional[str] = None,
        sample_targets: Optional[Callable[[], FrozenSet[str]]] = None,
        broadcast_after: int = 2,
        span=None,
        resilience=None,
    ) -> None:
        if mode not in (READ, WRITE):
            raise ValueError(f"mode must be READ or WRITE, got {mode!r}")
        self.node = node
        self.system = system
        self.mode = mode
        self.request_for = request_for
        #: with a custom completion predicate, a target's earlier reply
        #: does not retire it: the paper's read-path variation "keeps
        #: renewing from some irq" until Condition C holds, so targets
        #: are re-queried on later attempts (request_for may still skip
        #: them).  The default quorum-of-replies mode never re-asks a
        #: responder.
        self.resend_to_responders = done is not None
        self.done = done or self._quorum_gathered
        self.initial_timeout_ms = initial_timeout_ms
        self.backoff = backoff
        self.max_timeout_ms = max_timeout_ms
        self.max_attempts = max_attempts
        self.prefer = prefer
        #: optional override of quorum selection (e.g. sticky quorums)
        self.sample_targets = sample_targets
        #: after this many unsuccessful attempts, send to *all* nodes —
        #: the paper's "more aggressive implementation might send to all
        #: nodes in system".  Decouples availability from sampling luck.
        self.broadcast_after = broadcast_after
        #: parent span for causal tracing (Span object or raw id)
        self.span: Optional[int] = getattr(span, "span_id", span)
        #: optional NodeResilience (adaptive timeouts, hedging, suspect
        #: avoidance); None keeps the legacy behaviour exactly
        self.resilience = resilience
        self.replies: Dict[str, Message] = {}
        self.attempts = 0
        self._completion: Optional[Future] = None
        #: caller crash epoch this call (and each round's replies) belongs
        #: to — replies gathered before a crash of the *caller* must not
        #: count toward a quorum completed after its recovery
        self._epoch = node._crash_count
        self._hedge_timer = None
        #: current round's span (None when tracing is off) and the call
        #: key — the first round's span id — shared by every round of
        #: this invocation so the attribution analyzer can group replies
        #: that raced across retransmission rounds back to one call
        self._round_span = None
        self._call_key: Optional[int] = None

    # -- default predicate ---------------------------------------------------

    def _quorum_gathered(self, replies: Dict[str, Message]) -> bool:
        members: Set[str] = set(replies)
        if self.mode == READ:
            return self.system.is_read_quorum(members)
        return self.system.is_write_quorum(members)

    # -- target selection -------------------------------------------------------

    def _sample_targets(self) -> FrozenSet[str]:
        if self.sample_targets is not None:
            return self.sample_targets()
        if self.attempts > self.broadcast_after:
            return frozenset(self.system.nodes)
        prefer = self.prefer
        if prefer is None and self.node.node_id in self.system.nodes:
            prefer = self.node.node_id
        if prefer is not None and prefer not in self.system.nodes:
            prefer = None
        if self.attempts > 1:
            # The paper: "retransmissions are each to a new randomly
            # selected quorum" — pinning the (possibly dead) preferred
            # node on retries would defeat the point.
            prefer = None
        if self.resilience is not None:
            # Suspect-avoiding sampling from the dedicated selection
            # stream; a suspected prefer target loses its first-hop
            # privilege inside sample_quorum.
            return self.resilience.sample_quorum(self.system, self.mode,
                                                 prefer=prefer)
        if self.mode == READ:
            return self.system.sample_read_quorum(self.node.sim.rng, prefer=prefer)
        return self.system.sample_write_quorum(self.node.sim.rng, prefer=prefer)

    # -- execution -----------------------------------------------------------------

    def run(self):
        """Kernel process: yields until done; returns the replies dict."""
        sim = self.node.sim
        res = self.resilience
        cap = self.max_timeout_ms
        base = self.initial_timeout_ms
        if res is not None:
            # Size the first-round timeout from observed RTT quantiles
            # once the detector has enough samples; the configured
            # schedule is the cold-start fallback.
            base = res.round_timeout(self.initial_timeout_ms, cap)
        interval = base
        self._completion = sim.future(name=f"qrpc:{self.node.node_id}")
        obs = getattr(self.node.net, "obs", None)
        tracer = obs.tracer if obs is not None else None

        if self.done(self.replies):
            # Degenerate but legal: the predicate may hold vacuously
            # (e.g. DQVL finds its leases already valid).
            return self.replies

        while True:
            if self.node._crash_count != self._epoch:
                # The *caller* crashed since the previous round.  Every
                # reply gathered by the dead incarnation must be
                # discarded: counting it toward a quorum completed after
                # recovery would let a single live responder masquerade
                # as a full quorum assembled across the crash.
                self._epoch = self.node._crash_count
                self.replies.clear()
                self._completion = sim.future(name=f"qrpc:{self.node.node_id}")
                base = self.initial_timeout_ms
                if res is not None:
                    base = res.round_timeout(self.initial_timeout_ms, cap)
                interval = base

            self.attempts += 1
            if self.max_attempts is not None and self.attempts > self.max_attempts:
                raise QrpcError(self.mode, self.attempts - 1)

            targets = self._sample_targets()
            self._round_interval = interval
            round_span = None
            if tracer is not None:
                round_span = tracer.span(
                    "qrpc_round", category="qrpc", node=self.node.node_id,
                    parent=self.span, mode=self.mode,
                    attempt=self.attempts, targets=sorted(targets),
                    broadcast=(self.sample_targets is None
                               and self.attempts > self.broadcast_after),
                )
            if round_span is not None:
                if self._call_key is None:
                    self._call_key = round_span.span_id
                round_span.annotate(call=self._call_key)
                round_span.event("round_start", interval_ms=interval,
                                 attempt=self.attempts)
            self._round_span = round_span
            call_span = round_span.span_id if round_span is not None else self.span
            # Iterate in sorted order: target sets are frozensets, whose
            # iteration order depends on the per-process string-hash
            # seed; sending in hash order would make traces differ
            # between processes with the same simulation seed.
            for target in sorted(targets):
                if target in self.replies and not self.resend_to_responders:
                    continue
                request = self.request_for(target)
                if request is None:
                    continue
                kind, payload = request
                future = self.node.call(target, kind, payload, timeout=interval,
                                        span=call_span)
                future.add_callback(self._make_reply_handler(target))

            self._maybe_hedge(targets, interval, call_span)
            winner_index, _ = yield any_of(sim, [self._completion, sim.sleep(interval)])
            self._cancel_hedge()
            if self.node._crash_count != self._epoch:
                # Crashed mid-round; the loop top resets to a clean slate.
                if round_span is not None:
                    round_span.finish(outcome="crashed")
                continue
            if winner_index == 0:
                if round_span is not None:
                    round_span.finish(outcome="quorum")
                return self.replies
            if self.done(self.replies):
                # The predicate may have become true through replies that
                # raced with the timeout sleep.
                if round_span is not None:
                    round_span.finish(outcome="quorum")
                return self.replies
            if round_span is not None:
                round_span.finish(outcome="timeout", replies=len(self.replies))
            if res is not None:
                interval = res.next_interval(interval, base, cap)
            else:
                interval = min(interval * self.backoff, cap)
            if round_span is not None:
                round_span.event("backoff", next_interval_ms=interval)

    # -- hedging -------------------------------------------------------------

    def _maybe_hedge(self, targets: FrozenSet[str], interval: float,
                     call_span) -> None:
        """Arm this round's backup probe, if resilience says to.

        When the round has been outstanding for the detector's
        hedge-quantile RTT estimate without completing, one extra
        replica (not yet targeted, unsuspected preferred) gets the same
        request — straight-up tail-latency hedging, bounded to a single
        extra message per round.
        """
        res = self.resilience
        if res is None:
            return
        delay = res.hedge_delay(interval)
        if delay is None:
            return
        completion = self._completion

        def fire() -> None:
            self._hedge_timer = None
            if completion is not self._completion or completion.done:
                return
            target = res.pick_hedge(self.system, targets, self.replies)
            if target is None:
                return
            request = self.request_for(target)
            if request is None:
                return
            kind, payload = request
            remaining = max(1.0, interval - delay)
            future = self.node.call(target, kind, payload, timeout=remaining,
                                    span=call_span)
            future.add_callback(self._make_reply_handler(target))
            res.hedges_sent += 1
            if self._round_span is not None:
                self._round_span.event("hedge", target=target, delay_ms=delay)

        # node.after is crash-epoch-guarded: a hedge armed before a crash
        # never fires on the recovered incarnation.
        self._hedge_timer = self.node.after(delay, fire)

    def _cancel_hedge(self) -> None:
        if self._hedge_timer is not None:
            self._hedge_timer.cancel()
            self._hedge_timer = None

    # -- reply handling ------------------------------------------------------

    def _make_reply_handler(self, target: str) -> Callable[[Future], None]:
        epoch = self._epoch
        sent_at = self.node.sim.now
        round_interval = getattr(self, "_round_interval", self.initial_timeout_ms)
        res = self.resilience
        # The round that sent this request: a reply always attributes to
        # the round whose request produced it, even if it arrives while a
        # later retransmission round is already underway.
        round_span = self._round_span

        def handle(future: Future) -> None:
            if future.failed:
                if res is not None and epoch == self._epoch:
                    exc = future.exception
                    if isinstance(exc, RpcTimeout):
                        res.detector.observe_timeout(target, round_interval)
                return  # timeout or crash: the retransmission loop covers it
            if epoch != self._epoch:
                # Reply to a request issued before the caller crashed:
                # the recovered incarnation must not count it.
                return
            message: Message = future._value
            if res is not None:
                res.detector.observe_reply(target, self.node.sim.now - sent_at)
            if target not in self.replies or self.resend_to_responders:
                self.replies[target] = message
            if round_span is not None:
                round_span.event(
                    "reply_k_of_n", target=target, msg=message.msg_id,
                    req=message.reply_to, k=len(self.replies),
                )
            if (
                self._completion is not None
                and not self._completion.done
                and self.done(self.replies)
            ):
                if round_span is not None:
                    round_span.event("quorum_formed", k=len(self.replies),
                                     by=target)
                self._completion.resolve(None)

        return handle


def qrpc(
    node: Node,
    system: QuorumSystem,
    mode: str,
    kind: str,
    payload: Optional[Dict] = None,
    **config,
):
    """The paper's plain ``QRPC(system, READ/WRITE, request)``.

    Returns a generator suitable for ``yield node.spawn(...)`` or
    ``yield from``; the result is ``{node_id: reply Message}`` containing
    (at least) a full quorum of repliers.  ``**config`` forwards to
    :class:`QuorumCall`, including ``span=`` for causal tracing.
    """
    payload = payload or {}
    call = QuorumCall(
        node,
        system,
        mode,
        request_for=lambda target: (kind, dict(payload)),
        **config,
    )
    return call.run()
