"""Gifford-style weighted voting.

Each node holds an integral number of *votes*.  A read quorum is any set
of nodes holding at least ``read_threshold`` votes; a write quorum any
set holding at least ``write_threshold`` votes; intersection requires
``read_threshold + write_threshold > total_votes``.

Weighted voting subsumes the threshold systems (all weights 1) and lets
operators bias quorum formation toward well-connected replicas — the
flexibility the paper's related-work section credits to Gifford [12] and
Garcia-Molina & Barbara [11].
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Set

from .system import QuorumSystem

__all__ = ["WeightedVotingSystem"]


class WeightedVotingSystem(QuorumSystem):
    """Quorums defined by vote thresholds over weighted nodes."""

    def __init__(
        self,
        votes: Dict[str, int],
        read_threshold: int,
        write_threshold: int,
    ) -> None:
        if not votes:
            raise ValueError("votes must not be empty")
        if any(v <= 0 for v in votes.values()):
            raise ValueError("all vote counts must be positive")
        super().__init__(sorted(votes))
        self.votes = dict(votes)
        self.total_votes = sum(votes.values())
        if not 1 <= read_threshold <= self.total_votes:
            raise ValueError("read_threshold out of range")
        if not 1 <= write_threshold <= self.total_votes:
            raise ValueError("write_threshold out of range")
        if read_threshold + write_threshold <= self.total_votes:
            raise ValueError(
                "read_threshold + write_threshold must exceed total votes "
                f"({read_threshold} + {write_threshold} <= {self.total_votes})"
            )
        self.read_threshold = read_threshold
        self.write_threshold = write_threshold

    def _vote_count(self, members: Set[str]) -> int:
        return sum(self.votes.get(node, 0) for node in members)

    def is_read_quorum(self, members: Set[str]) -> bool:
        return self._vote_count(set(members)) >= self.read_threshold

    def is_write_quorum(self, members: Set[str]) -> bool:
        return self._vote_count(set(members)) >= self.write_threshold

    def _sample(self, rng, threshold: int, prefer: Optional[str]) -> FrozenSet[str]:
        """Greedy minimal-ish quorum: accumulate shuffled nodes until the
        threshold is met, then drop members that are not needed."""
        pool = list(self.nodes)
        rng.shuffle(pool)
        if prefer is not None and prefer in pool:
            pool.remove(prefer)
            pool.insert(0, prefer)
        chosen: list = []
        total = 0
        for node in pool:
            chosen.append(node)
            total += self.votes[node]
            if total >= threshold:
                break
        # prune redundant members (keep `prefer` when possible)
        for node in sorted(chosen, key=lambda n: (n == prefer, self.votes[n])):
            if total - self.votes[node] >= threshold:
                chosen.remove(node)
                total -= self.votes[node]
        return frozenset(chosen)

    def sample_read_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        return self._sample(rng, self.read_threshold, prefer)

    def sample_write_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        return self._sample(rng, self.write_threshold, prefer)

    @property
    def read_quorum_size(self) -> int:
        """Minimum number of nodes whose votes reach the read threshold."""
        return self._min_nodes(self.read_threshold)

    @property
    def write_quorum_size(self) -> int:
        return self._min_nodes(self.write_threshold)

    def _min_nodes(self, threshold: int) -> int:
        total = 0
        for count, weight in enumerate(
            sorted(self.votes.values(), reverse=True), start=1
        ):
            total += weight
            if total >= threshold:
                return count
        return len(self.nodes)
