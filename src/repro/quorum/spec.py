"""Declarative, serializable quorum-system specifications.

A :class:`QuorumSpec` names a quorum *shape* without binding it to a
node set: ``majority:r=2,w=4``, ``grid:3x3``, ``rowa``, ``single``,
``weighted:votes=3-1-1,r=3,w=2``.  Calling :meth:`QuorumSpec.build`
with the node ids instantiates the matching concrete
:class:`~repro.quorum.system.QuorumSystem`.  This is the single
construction path for every quorum system in the repo: cluster
builders, the scenario/CLI layer, and the ``repro tune`` autotuner all
talk specs, so a shape chosen by the tuner can be replayed verbatim in
any runner.

Specs round-trip through both representations::

    QuorumSpec.parse(str(spec)) == spec
    QuorumSpec.from_json(spec.to_json()) == spec

String grammar (``kind[:param,(param...)]``):

===========  ==========================================  ==============
kind         parameters                                  example
===========  ==========================================  ==============
majority     ``r=<int>`` / ``w=<int>`` (default: simple  ``majority:r=2,w=4``
             majorities)
grid         ``<rows>x<cols>`` (default: near-square     ``grid:3x3``
             ragged grid for the node count)
rowa         none                                        ``rowa``
single       none (first node is the quorum)             ``single``
weighted     ``votes=<v1>-<v2>-...`` (positional, one    ``weighted:votes=3-1-1,r=3,w=2``
             per node), ``r=<int>`` / ``w=<int>``
             thresholds
===========  ==========================================  ==============

Shape constraints that do not need a node count (vote positivity,
threshold intersection) are validated at construction; the rest
(``r + w > n``, grid dimensions vs node count, vote count vs node
count) are validated by :meth:`build` through the concrete systems'
own constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from .grid import GridQuorumSystem, near_square_grid
from .majority import MajorityQuorumSystem, SingleNodeQuorumSystem
from .rowa import RowaQuorumSystem
from .system import QuorumSystem
from .weighted import WeightedVotingSystem

__all__ = [
    "QuorumSpec",
    "SpecLike",
    "DEFAULT_IQS_SPEC",
    "DEFAULT_OQS_SPEC",
]

_KINDS = ("majority", "grid", "rowa", "single", "weighted")

#: anything :meth:`QuorumSpec.parse` accepts
SpecLike = Union["QuorumSpec", str, Dict[str, Any]]


@dataclass(frozen=True)
class QuorumSpec:
    """A declarative quorum shape (frozen, hashable, picklable).

    Only the fields relevant to ``kind`` may be set; the rest must stay
    ``None`` (enforced at construction, so equality and hashing are
    canonical).
    """

    kind: str = "majority"
    #: majority: explicit read/write quorum sizes (None = simple majority)
    read_size: Optional[int] = None
    write_size: Optional[int] = None
    #: grid: explicit layout (None/None = near-square ragged grid)
    rows: Optional[int] = None
    cols: Optional[int] = None
    #: weighted: per-node vote counts, positional over the build node list
    votes: Optional[Tuple[int, ...]] = None
    read_threshold: Optional[int] = None
    write_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown quorum kind {self.kind!r}; choose from {_KINDS}"
            )
        if self.votes is not None:
            object.__setattr__(self, "votes", tuple(int(v) for v in self.votes))
        allowed = {
            "majority": ("read_size", "write_size"),
            "grid": ("rows", "cols"),
            "rowa": (),
            "single": (),
            "weighted": ("votes", "read_threshold", "write_threshold"),
        }[self.kind]
        for f in fields(self):
            if f.name == "kind" or f.name in allowed:
                continue
            if getattr(self, f.name) is not None:
                raise ValueError(
                    f"{f.name} does not apply to kind={self.kind!r}"
                )
        if self.kind == "majority":
            for name in ("read_size", "write_size"):
                value = getattr(self, name)
                if value is not None and value < 1:
                    raise ValueError(f"{name} must be a positive quorum size")
        elif self.kind == "grid":
            if (self.rows is None) != (self.cols is None):
                raise ValueError(
                    "grid needs both rows and cols (or neither, for the "
                    "near-square default)"
                )
            if self.rows is not None and (self.rows < 1 or self.cols < 1):
                raise ValueError("grid dimensions must be positive")
        elif self.kind == "weighted":
            if not self.votes:
                raise ValueError("weighted spec needs a non-empty votes tuple")
            if any(v <= 0 for v in self.votes):
                raise ValueError("all vote counts must be positive")
            if self.read_threshold is None or self.write_threshold is None:
                raise ValueError("weighted spec needs r=/w= vote thresholds")
            total = sum(self.votes)
            for name in ("read_threshold", "write_threshold"):
                if not 1 <= getattr(self, name) <= total:
                    raise ValueError(
                        f"{name} out of range [1, {total}] for votes {self.votes}"
                    )
            if self.read_threshold + self.write_threshold <= total:
                raise ValueError(
                    "read_threshold + write_threshold must exceed total votes "
                    f"({self.read_threshold} + {self.write_threshold} <= {total})"
                )

    # -- construction --------------------------------------------------------

    def build(self, nodes: Sequence[str]) -> QuorumSystem:
        """Instantiate the concrete quorum system over *nodes*.

        Node-count-dependent constraints (``r + w > n``, grid dims vs
        node count, vote count vs node count) are checked here.
        """
        nodes = list(nodes)
        if not nodes:
            raise ValueError("cannot build a quorum system over zero nodes")
        if self.kind == "majority":
            return MajorityQuorumSystem(nodes, self.read_size, self.write_size)
        if self.kind == "grid":
            if self.rows is None:
                return near_square_grid(nodes)
            return GridQuorumSystem(nodes, rows=self.rows, cols=self.cols)
        if self.kind == "rowa":
            return RowaQuorumSystem(nodes)
        if self.kind == "single":
            return SingleNodeQuorumSystem(nodes[0])
        if len(self.votes) != len(nodes):
            raise ValueError(
                f"weighted spec carries {len(self.votes)} vote counts "
                f"for {len(nodes)} nodes"
            )
        return WeightedVotingSystem(
            dict(zip(nodes, self.votes)),
            self.read_threshold,
            self.write_threshold,
        )

    # -- string form ---------------------------------------------------------

    def __str__(self) -> str:
        """Canonical string form; ``parse(str(spec)) == spec``."""
        params = []
        if self.kind == "majority":
            if self.read_size is not None:
                params.append(f"r={self.read_size}")
            if self.write_size is not None:
                params.append(f"w={self.write_size}")
        elif self.kind == "grid":
            if self.rows is not None:
                params.append(f"{self.rows}x{self.cols}")
        elif self.kind == "weighted":
            params.append("votes=" + "-".join(str(v) for v in self.votes))
            params.append(f"r={self.read_threshold}")
            params.append(f"w={self.write_threshold}")
        if not params:
            return self.kind
        return f"{self.kind}:{','.join(params)}"

    @classmethod
    def parse(cls, value: SpecLike) -> "QuorumSpec":
        """Parse a spec from its string form (specs and JSON dicts pass
        through, so config plumbing can accept any representation)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_json(value)
        if not isinstance(value, str):
            raise TypeError(
                f"cannot parse a quorum spec from {type(value).__name__}"
            )
        text = value.strip()
        kind, _, param_text = text.partition(":")
        kind = kind.strip()
        if kind not in _KINDS:
            raise ValueError(
                f"unknown quorum kind {kind!r} in {value!r}; "
                f"choose from {_KINDS}"
            )
        kwargs: Dict[str, Any] = {}
        for raw in filter(None, (p.strip() for p in param_text.split(","))):
            try:
                kwargs.update(cls._parse_param(kind, raw))
            except ValueError as exc:
                raise ValueError(f"bad quorum spec {value!r}: {exc}") from None
        return cls(kind=kind, **kwargs)

    @staticmethod
    def _parse_param(kind: str, raw: str) -> Dict[str, Any]:
        if kind == "grid":
            rows, sep, cols = raw.partition("x")
            if not sep:
                raise ValueError(f"expected <rows>x<cols>, got {raw!r}")
            return {"rows": int(rows), "cols": int(cols)}
        key, sep, val = raw.partition("=")
        if not sep:
            raise ValueError(f"expected key=value, got {raw!r}")
        if key == "votes":
            return {"votes": tuple(int(v) for v in val.split("-"))}
        names = {
            "majority": {"r": "read_size", "w": "write_size"},
            "weighted": {"r": "read_threshold", "w": "write_threshold"},
        }.get(kind, {})
        if key not in names:
            raise ValueError(f"parameter {key!r} does not apply to {kind!r}")
        return {names[key]: int(val)}

    # -- JSON form -----------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A minimal JSON object: ``kind`` plus the set parameters."""
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name != "kind" and value is not None:
                out[f.name] = list(value) if f.name == "votes" else value
        return out

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "QuorumSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(
                f"unknown quorum spec keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**obj)


#: the paper's recommended shapes: majority IQS, read-one/write-all OQS
DEFAULT_IQS_SPEC = QuorumSpec(kind="majority")
DEFAULT_OQS_SPEC = QuorumSpec(kind="rowa")
