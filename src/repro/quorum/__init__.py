"""Quorum systems and quorum-based RPC.

The building blocks from which both the dual-quorum protocol (IQS/OQS)
and the baseline quorum protocols are assembled.
"""

from .grid import GridQuorumSystem
from .majority import MajorityQuorumSystem, SingleNodeQuorumSystem, binomial_tail
from .qrpc import READ, WRITE, QrpcError, QuorumCall, qrpc
from .rowa import RowaQuorumSystem
from .system import (
    QuorumSystem,
    exact_quorum_availability,
    monte_carlo_quorum_availability,
)
from .weighted import WeightedVotingSystem

__all__ = [
    "QuorumSystem",
    "MajorityQuorumSystem",
    "SingleNodeQuorumSystem",
    "RowaQuorumSystem",
    "GridQuorumSystem",
    "WeightedVotingSystem",
    "binomial_tail",
    "exact_quorum_availability",
    "monte_carlo_quorum_availability",
    "QuorumCall",
    "QrpcError",
    "qrpc",
    "READ",
    "WRITE",
]
