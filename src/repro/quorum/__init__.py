"""Quorum systems and quorum-based RPC — the stable public facade.

The building blocks from which both the dual-quorum protocol (IQS/OQS)
and the baseline quorum protocols are assembled.  Import from this
package, not its submodules; everything listed in ``__all__`` is a
stable name:

* :class:`QuorumSystem` — the abstract interface (predicates, sampling,
  sizes, availability);
* concrete systems — :class:`MajorityQuorumSystem`,
  :class:`GridQuorumSystem` (+ :func:`near_square_grid`),
  :class:`RowaQuorumSystem`, :class:`SingleNodeQuorumSystem`,
  :class:`WeightedVotingSystem`;
* :class:`QuorumSpec` — the declarative, serializable shape description
  (``majority:r=2,w=4``, ``grid:3x3``, ...) whose
  :meth:`~QuorumSpec.build` is the single construction path for every
  system above, with :data:`DEFAULT_IQS_SPEC` / :data:`DEFAULT_OQS_SPEC`
  naming the paper's recommended shapes;
* availability helpers — :func:`binomial_tail`,
  :func:`exact_quorum_availability`,
  :func:`monte_carlo_quorum_availability`;
* quorum RPC — :func:`qrpc`, :class:`QuorumCall`, :class:`QrpcError`,
  and the :data:`READ` / :data:`WRITE` phase constants.
"""

from .grid import GridQuorumSystem, near_square_grid
from .majority import MajorityQuorumSystem, SingleNodeQuorumSystem, binomial_tail
from .qrpc import READ, WRITE, QrpcError, QuorumCall, qrpc
from .rowa import RowaQuorumSystem
from .spec import DEFAULT_IQS_SPEC, DEFAULT_OQS_SPEC, QuorumSpec
from .system import (
    QuorumSystem,
    exact_quorum_availability,
    monte_carlo_quorum_availability,
)
from .weighted import WeightedVotingSystem

__all__ = [
    "QuorumSystem",
    "MajorityQuorumSystem",
    "SingleNodeQuorumSystem",
    "RowaQuorumSystem",
    "GridQuorumSystem",
    "near_square_grid",
    "WeightedVotingSystem",
    "QuorumSpec",
    "DEFAULT_IQS_SPEC",
    "DEFAULT_OQS_SPEC",
    "binomial_tail",
    "exact_quorum_availability",
    "monte_carlo_quorum_availability",
    "QuorumCall",
    "QrpcError",
    "qrpc",
    "READ",
    "WRITE",
]
