"""Threshold (majority / Gifford-style) quorum systems.

:class:`MajorityQuorumSystem` generalises the classic majority quorum: a
read quorum is *any* ``r`` nodes and a write quorum *any* ``w`` nodes
with ``r + w > n``.  The defaults give the symmetric majority system the
paper compares against (``r = w = floor(n/2) + 1``).

:class:`SingleNodeQuorumSystem` is the degenerate one-node system used to
model a primary site, and is also handy as the IQS in unit tests.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Optional, Sequence, Set

from .system import QuorumSystem

__all__ = ["MajorityQuorumSystem", "SingleNodeQuorumSystem", "binomial_tail"]


def binomial_tail(n: int, k: int, q: float) -> float:
    """P[X >= k] for X ~ Binomial(n, q) — exact summation.

    Used for closed-form threshold-quorum availability, where *q* is the
    per-node probability of being alive.
    """
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    total = 0.0
    for i in range(k, n + 1):
        total += math.comb(n, i) * q**i * (1.0 - q) ** (n - i)
    return min(1.0, total)


class MajorityQuorumSystem(QuorumSystem):
    """Any ``read_size`` nodes form a read quorum; any ``write_size`` a
    write quorum.  Intersection requires ``read_size + write_size > n``.

    Parameters default to simple majorities of the node set.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        read_size: Optional[int] = None,
        write_size: Optional[int] = None,
    ) -> None:
        super().__init__(nodes)
        n = len(self.nodes)
        majority = n // 2 + 1
        self._read_size = majority if read_size is None else read_size
        self._write_size = majority if write_size is None else write_size
        if not 1 <= self._read_size <= n:
            raise ValueError(f"read_size {self._read_size} out of range for n={n}")
        if not 1 <= self._write_size <= n:
            raise ValueError(f"write_size {self._write_size} out of range for n={n}")
        if self._read_size + self._write_size <= n:
            raise ValueError(
                f"read_size + write_size must exceed n for intersection "
                f"({self._read_size} + {self._write_size} <= {n})"
            )

    # -- predicates ---------------------------------------------------------

    def is_read_quorum(self, members: Set[str]) -> bool:
        return len(set(members) & set(self.nodes)) >= self._read_size

    def is_write_quorum(self, members: Set[str]) -> bool:
        return len(set(members) & set(self.nodes)) >= self._write_size

    # -- selection -------------------------------------------------------------

    def _sample(self, rng, size: int, prefer: Optional[str]) -> FrozenSet[str]:
        pool = list(self.nodes)
        chosen = []
        if prefer is not None and prefer in pool:
            chosen.append(prefer)
            pool.remove(prefer)
        chosen.extend(rng.sample(pool, size - len(chosen)))
        return frozenset(chosen)

    def sample_read_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        return self._sample(rng, self._read_size, prefer)

    def sample_write_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        return self._sample(rng, self._write_size, prefer)

    # -- sizes -------------------------------------------------------------------

    @property
    def read_quorum_size(self) -> int:
        return self._read_size

    @property
    def write_quorum_size(self) -> int:
        return self._write_size

    # -- closed-form availability ---------------------------------------------------

    def read_availability(self, p: float) -> float:
        return binomial_tail(self.size, self._read_size, 1.0 - p)

    def write_availability(self, p: float) -> float:
        return binomial_tail(self.size, self._write_size, 1.0 - p)


class SingleNodeQuorumSystem(QuorumSystem):
    """One designated node is both the read and the write quorum.

    Models the primary in a primary/backup scheme (the backups replicate
    state but take no part in quorum formation), and the degenerate
    single-server configuration of traditional lease protocols.
    """

    def __init__(self, node: str) -> None:
        super().__init__([node])

    def is_read_quorum(self, members: Set[str]) -> bool:
        return self.nodes[0] in members

    def is_write_quorum(self, members: Set[str]) -> bool:
        return self.nodes[0] in members

    def sample_read_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        return frozenset(self.nodes)

    def sample_write_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        return frozenset(self.nodes)

    @property
    def read_quorum_size(self) -> int:
        return 1

    @property
    def write_quorum_size(self) -> int:
        return 1

    def read_availability(self, p: float) -> float:
        return 1.0 - p

    def write_availability(self, p: float) -> float:
        return 1.0 - p
