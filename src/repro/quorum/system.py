"""Quorum system abstraction.

A *quorum system* over a set of nodes defines read quorums and write
quorums such that every read quorum intersects every write quorum (this
is what makes a quorum-replicated register *regular*: a read that reaches
a read quorum is guaranteed to see the newest completed write at one of
its members).

The dual-quorum protocol composes two such systems — the IQS and the
OQS — each independently configurable, which is exactly why the
abstraction matters here: the paper's recommended configuration pairs a
read-one/write-all OQS with a majority IQS, and its future-work section
considers grid-quorum IQS and larger OQS read quorums.  All of those are
instances of this interface.

Concrete systems in this package:

================================  ========================================
:class:`~repro.quorum.majority.MajorityQuorumSystem`   any ``r`` nodes read, any ``w`` write, ``r + w > n``
:class:`~repro.quorum.rowa.RowaQuorumSystem`           read any 1, write all
:class:`~repro.quorum.grid.GridQuorumSystem`           rows × columns grid (Cheung et al.)
:class:`~repro.quorum.weighted.WeightedVotingSystem`   Gifford weighted voting
:class:`~repro.quorum.majority.SingleNodeQuorumSystem` a designated primary
================================  ========================================
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["QuorumSystem", "exact_quorum_availability", "monte_carlo_quorum_availability"]


class QuorumSystem(ABC):
    """Abstract base for quorum systems over named nodes."""

    def __init__(self, nodes: Sequence[str]) -> None:
        if len(set(nodes)) != len(nodes):
            raise ValueError("duplicate node ids in quorum system")
        if not nodes:
            raise ValueError("a quorum system needs at least one node")
        self.nodes: Tuple[str, ...] = tuple(nodes)

    # -- membership predicates ---------------------------------------------

    @abstractmethod
    def is_read_quorum(self, members: Set[str]) -> bool:
        """True if *members* contains at least one full read quorum."""

    @abstractmethod
    def is_write_quorum(self, members: Set[str]) -> bool:
        """True if *members* contains at least one full write quorum."""

    # -- quorum selection ----------------------------------------------------

    @abstractmethod
    def sample_read_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        """A minimal read quorum chosen at random.

        When *prefer* names a member node, the sampled quorum includes it
        if any minimal quorum does — this implements the paper's
        prototype policy of always sending to the local node first.
        """

    @abstractmethod
    def sample_write_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        """A minimal write quorum chosen at random (see above)."""

    def sample_read_quorum_biased(self, rng, preferred: Set[str]) -> FrozenSet[str]:
        """A minimal read quorum overlapping *preferred* as much as possible.

        Used by DQVL's OQS nodes to keep renewing volumes and objects
        from the *same* IQS servers across requests: sticky renewal
        quorums are what let one volume-lease renewal amortise over all
        objects of the volume.  The default implementation samples a
        quorum and greedily swaps members for preferred nodes while the
        quorum property is preserved; subclasses may do better.
        """
        quorum = set(self.sample_read_quorum(rng))
        for candidate in sorted(preferred):
            if candidate in quorum or candidate not in self.nodes:
                continue
            for member in sorted(quorum):
                if member in preferred:
                    continue
                trial = (quorum - {member}) | {candidate}
                if self.is_read_quorum(trial):
                    quorum = trial
                    break
        return frozenset(quorum)

    # -- sizes (used by the analytical overhead model) -----------------------

    @property
    @abstractmethod
    def read_quorum_size(self) -> int:
        """Cardinality of a minimal read quorum."""

    @property
    @abstractmethod
    def write_quorum_size(self) -> int:
        """Cardinality of a minimal write quorum."""

    @property
    def size(self) -> int:
        """Number of nodes in the system."""
        return len(self.nodes)

    # -- availability ---------------------------------------------------------

    def read_availability(self, p: float) -> float:
        """Probability a read quorum of live nodes exists.

        Nodes fail independently with probability *p* (the paper's model).
        Subclasses override with closed forms; this default enumerates all
        live-sets for small systems and falls back to Monte Carlo.
        """
        return exact_quorum_availability(self.nodes, self.is_read_quorum, p)

    def write_availability(self, p: float) -> float:
        """Probability a write quorum of live nodes exists."""
        return exact_quorum_availability(self.nodes, self.is_write_quorum, p)

    # -- validation -------------------------------------------------------------

    def check_intersection(self, rng, trials: int = 200) -> None:
        """Assert sampled read quorums intersect sampled write quorums.

        Concrete systems are constructed to guarantee intersection; this
        randomized check is used by tests (and is exhaustive in spirit
        for the highly symmetric systems here, where all quorums are
        isomorphic under node permutation).
        """
        for _ in range(trials):
            rq = self.sample_read_quorum(rng)
            wq = self.sample_write_quorum(rng)
            if not (rq & wq):
                raise AssertionError(
                    f"{type(self).__name__}: read quorum {sorted(rq)} does not "
                    f"intersect write quorum {sorted(wq)}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n={self.size} r={self.read_quorum_size} w={self.write_quorum_size}>"


def exact_quorum_availability(
    nodes: Sequence[str],
    is_quorum,
    p: float,
    enumeration_limit: int = 20,
    mc_trials: int = 200_000,
    mc_seed: int = 1234,
) -> float:
    """Probability that the live-node set contains a quorum.

    Exact for systems with at most *enumeration_limit* nodes (sums over
    all ``2^n`` live-sets); Monte Carlo beyond that.  Exactness matters
    for reproducing Figure 8, where unavailabilities reach ``1e-12`` —
    far below Monte Carlo resolution — so every system used in the
    figures supplies a closed form instead of relying on this helper.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    n = len(nodes)
    if n <= enumeration_limit:
        total = 0.0
        node_list = list(nodes)
        for bits in range(1 << n):
            live = {node_list[i] for i in range(n) if bits & (1 << i)}
            if is_quorum(live):
                k = len(live)
                total += (1.0 - p) ** k * p ** (n - k)
        return total
    return monte_carlo_quorum_availability(nodes, is_quorum, p, mc_trials, mc_seed)


def monte_carlo_quorum_availability(
    nodes: Sequence[str], is_quorum, p: float, trials: int = 200_000, seed: int = 1234
) -> float:
    """Monte Carlo estimate of quorum availability (large systems)."""
    import random

    rng = random.Random(seed)
    node_list = list(nodes)
    hits = 0
    for _ in range(trials):
        live = {node for node in node_list if rng.random() >= p}
        if is_quorum(live):
            hits += 1
    return hits / trials
