"""Grid quorum system (Cheung, Ahamad, Ammar).

Nodes are arranged column-wise on a logical grid of up to ``rows``
rows and exactly ``cols`` columns; when ``rows * cols`` exceeds the
node count the last column is simply shorter (a *ragged* grid), so any
node count gets a sensible near-square layout — no degenerate ``1 × n``
grids for prime sizes.

* A **read quorum** is a *column cover*: one node from every column
  (size ``cols``).
* A **write quorum** is one complete column plus one node from every
  other column (size ``len(column) + cols - 1``).

Every read quorum intersects every write quorum (the write's full column
meets the read's cover in that column), and write quorums intersect each
other (each contains a cover, which meets the other's full column) —
ragged or not, since the argument only uses columns as units.

The paper's future-work section suggests a grid-quorum IQS to reduce
system load; the A4 ablation benchmark exercises that configuration.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Optional, Sequence, Set

from .system import QuorumSystem

__all__ = ["GridQuorumSystem", "near_square_grid"]


def near_square_grid(nodes: Sequence[str]) -> "GridQuorumSystem":
    """A near-square (possibly ragged) grid over *nodes*."""
    n = len(nodes)
    rows = max(1, math.isqrt(n))
    cols = math.ceil(n / rows)
    return GridQuorumSystem(nodes, rows=rows, cols=cols)


class GridQuorumSystem(QuorumSystem):
    """Nodes laid out column-major on an (optionally ragged) grid."""

    def __init__(self, nodes: Sequence[str], rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        if not (rows * (cols - 1) < len(nodes) <= rows * cols):
            raise ValueError(
                f"grid {rows}x{cols} fits {rows * (cols - 1) + 1}.."
                f"{rows * cols} nodes, got {len(nodes)}"
            )
        super().__init__(nodes)
        self.rows = rows
        self.cols = cols
        # Balanced column fill: columns differ in height by at most one.
        # (A greedy fill could leave a final column of a single node,
        # whose availability would then dominate every read quorum.)
        base, extra = divmod(len(self.nodes), cols)
        self._columns: List[List[str]] = []
        start = 0
        for c in range(cols):
            height = base + (1 if c < extra else 0)
            self._columns.append(list(self.nodes[start:start + height]))
            start += height

    def column_of(self, node: str) -> int:
        """Grid column index of *node*."""
        for c, col in enumerate(self._columns):
            if node in col:
                return c
        raise ValueError(f"{node!r} is not in this grid")

    # -- predicates ------------------------------------------------------------

    def is_read_quorum(self, members: Set[str]) -> bool:
        members = set(members)
        return all(any(n in members for n in col) for col in self._columns)

    def is_write_quorum(self, members: Set[str]) -> bool:
        members = set(members)
        if not self.is_read_quorum(members):
            return False
        return any(all(n in members for n in col) for col in self._columns)

    # -- selection ----------------------------------------------------------------

    def sample_read_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        chosen = []
        for c, col in enumerate(self._columns):
            if prefer is not None and prefer in col:
                chosen.append(prefer)
            else:
                chosen.append(rng.choice(col))
        return frozenset(chosen)

    def sample_write_quorum(self, rng, prefer: Optional[str] = None) -> FrozenSet[str]:
        if prefer is not None and prefer in self.nodes:
            full_col = self.column_of(prefer)
        else:
            full_col = rng.randrange(self.cols)
        chosen: Set[str] = set(self._columns[full_col])
        for c, col in enumerate(self._columns):
            if c == full_col:
                continue
            if prefer is not None and prefer in col:
                chosen.add(prefer)
            else:
                chosen.add(rng.choice(col))
        return frozenset(chosen)

    # -- sizes ------------------------------------------------------------------------

    @property
    def read_quorum_size(self) -> int:
        return self.cols

    @property
    def write_quorum_size(self) -> int:
        shortest = min(len(col) for col in self._columns)
        return shortest + self.cols - 1

    # -- closed-form availability -----------------------------------------------------

    def read_availability(self, p: float) -> float:
        """Every column has a live node: ``prod_c (1 - p^|col_c|)``."""
        out = 1.0
        for col in self._columns:
            out *= 1.0 - p ** len(col)
        return out

    def write_availability(self, p: float) -> float:
        """Some column fully live *and* every column has a live node.

        Columns are independent; per column let ``a_c = (1-p)^|col_c|``
        (fully live) and ``b_c = 1 - p^|col_c|`` (has a live node,
        ``a_c <= b_c``).  Then P = ``prod b_c - prod (b_c - a_c)`` —
        all columns covered, minus the cases where no column is full.
        """
        covered = 1.0
        covered_none_full = 1.0
        for col in self._columns:
            a = (1.0 - p) ** len(col)
            b = 1.0 - p ** len(col)
            covered *= b
            covered_none_full *= b - a
        return covered - covered_none_full
