"""The TPC-W edge bookstore (the paper's motivating application).

Section 1 of the paper recalls the authors' earlier edge-service work
[10, 22], which classified an e-commerce application's shared objects
into four categories and replicated each differently:

1. **single-writer, multi-reader** — product descriptions and prices:
   the origin publishes; edges cache
   (:class:`~repro.apps.bookstore.stores.CatalogNode`);
2. **multi-writer, single-reader** — customer orders: edges accept and
   acknowledge locally, then stream reliably to the origin's
   fulfilment pipeline (:class:`~repro.apps.bookstore.stores.OrderNode`);
3. **commutative-write, approximate-read** — per-product inventory:
   escrow allotments let edges sell locally while the origin guards the
   global never-oversell invariant
   (:class:`~repro.apps.bookstore.stores.InventoryOriginNode`);
4. **multi-writer, multi-reader with locality** — per-customer
   profiles: the class the paper contributes **DQVL** for.

:class:`~repro.apps.bookstore.service.BookstoreService` composes all
four into one per-edge facade; ``build_bookstore`` deploys the whole
application across an :class:`~repro.edge.topology.EdgeTopology`.
"""

from .service import BookstoreDeployment, BookstoreService, build_bookstore
from .stores import (
    CatalogNode,
    CatalogOriginNode,
    InventoryEdgeNode,
    InventoryOriginNode,
    OrderNode,
    OrderOriginNode,
)

__all__ = [
    "BookstoreService",
    "BookstoreDeployment",
    "build_bookstore",
    "CatalogOriginNode",
    "CatalogNode",
    "OrderNode",
    "OrderOriginNode",
    "InventoryEdgeNode",
    "InventoryOriginNode",
]
