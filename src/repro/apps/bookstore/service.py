"""The per-edge bookstore facade and the full deployment builder.

:class:`BookstoreService` is the service logic a front end would run:
it composes the four object stores into application operations —
``browse``, ``get_profile``/``update_profile``, and the compound
``purchase`` (reserve inventory → record the order → update the
customer's profile).  All methods are kernel processes
(``yield from``-able).

:func:`build_bookstore` deploys the whole application over an
:class:`~repro.edge.topology.EdgeTopology`: the origin servers on a
dedicated edge host, a catalog cache + order intake + inventory escrow
node on every edge, and a DQVL cluster for the profiles (OQS replica
per edge, majority IQS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...core.cluster import DqvlCluster, build_dqvl_cluster
from ...core.config import DqvlConfig
from ...edge.topology import EdgeTopology
from .stores import (
    CatalogNode,
    CatalogOriginNode,
    InventoryEdgeNode,
    InventoryOriginNode,
    OrderNode,
    OrderOriginNode,
)

__all__ = ["BookstoreService", "BookstoreDeployment", "build_bookstore"]


@dataclass
class PurchaseResult:
    """Outcome of one purchase attempt."""

    ok: bool
    order_id: Optional[str] = None
    reason: str = ""


class BookstoreService:
    """One edge server's bookstore logic."""

    def __init__(
        self,
        edge_index: int,
        catalog: CatalogNode,
        orders: OrderNode,
        inventory: InventoryEdgeNode,
        profile_client,
    ) -> None:
        self.edge_index = edge_index
        self.catalog = catalog
        self.orders = orders
        self.inventory = inventory
        self.profiles = profile_client
        self.purchases_ok = 0
        self.purchases_failed = 0

    # -- the four object classes, individually ------------------------------

    def browse(self, item: str):
        """Catalog lookup: local and immediate (class 1)."""
        version, data = self.catalog.lookup(item)
        return version, data
        yield  # pragma: no cover - uniform generator interface

    def get_profile(self, customer: str):
        """Profile read via DQVL (class 4)."""
        result = yield from self.profiles.read(f"profile:{customer}")
        return result.value

    def update_profile(self, customer: str, profile: Dict[str, Any]):
        """Profile write via DQVL (class 4)."""
        result = yield from self.profiles.write(f"profile:{customer}", profile)
        return result.lc

    def stock_hint(self, item: str) -> int:
        """Approximate inventory read (class 3): this edge's allotment."""
        return self.inventory.approximate_count(item)

    # -- the compound purchase ------------------------------------------------

    def purchase(self, customer: str, item: str, quantity: int = 1):
        """Reserve stock, record the order, update the profile.

        The inventory reservation is the only gate: once units are
        secured the order is accepted locally (class 2 — the customer
        never waits for the origin) and the profile's purchase history
        updates through DQVL.
        """
        reserved = yield from self.inventory.reserve(item, quantity)
        if not reserved:
            self.purchases_failed += 1
            return PurchaseResult(ok=False, reason="out of stock")

        order_id = self.orders.submit(customer, item, quantity)

        profile = yield from self.get_profile(customer)
        profile = dict(profile or {})
        history = list(profile.get("history", []))
        history.append(order_id)
        profile["history"] = history
        profile["last_item"] = item
        yield from self.update_profile(customer, profile)

        self.purchases_ok += 1
        return PurchaseResult(ok=True, order_id=order_id)


@dataclass
class BookstoreDeployment:
    """Handles to a deployed bookstore."""

    topology: EdgeTopology
    services: List[BookstoreService]
    catalog_origin: CatalogOriginNode
    order_origin: OrderOriginNode
    inventory_origin: InventoryOriginNode
    profiles: DqvlCluster

    def service_for_edge(self, k: int) -> BookstoreService:
        return self.services[k]

    # -- global invariants (used by tests and the example) -------------------

    def units_sold(self) -> int:
        return sum(svc.inventory.sold for svc in self.services)

    def orders_received(self) -> int:
        return self.order_origin.order_count()

    def orders_accepted(self) -> int:
        return sum(svc.orders.accepted for svc in self.services)


def build_bookstore(
    topology: EdgeTopology,
    stock: Dict[str, int],
    origin_edge: int = 0,
    dqvl_config: Optional[DqvlConfig] = None,
    inventory_batch: int = 10,
    catalog_resync_ms: float = 5_000.0,
    order_flush_ms: float = 1_000.0,
) -> BookstoreDeployment:
    """Deploy the bookstore across *topology*'s edge servers.

    The origin tier (catalog writer, order sink, inventory guard) lives
    on ``origin_edge``; every edge gets the caching/intake/escrow trio
    plus a DQVL profile replica.
    """
    sim, net = topology.sim, topology.network
    n = topology.config.num_edges

    # origin tier
    catalog_origin = CatalogOriginNode(
        sim, net, "cat-origin",
        edge_ids=[f"cat{k}" for k in range(n)],
        resync_interval_ms=catalog_resync_ms,
    )
    order_origin = OrderOriginNode(sim, net, "ord-origin")
    inventory_origin = InventoryOriginNode(
        sim, net, "inv-origin", stock, batch=inventory_batch
    )
    for node_id in ("cat-origin", "ord-origin", "inv-origin"):
        topology.place_on_edge(node_id, origin_edge)

    # profile tier: DQVL with an OQS replica on every edge
    config = dqvl_config or DqvlConfig(proactive_renewal=True)
    profiles = build_dqvl_cluster(
        sim, net,
        [f"piqs{k}" for k in range(n)],
        [f"poqs{k}" for k in range(n)],
        config,
    )
    for k in range(n):
        topology.place_on_edge(f"piqs{k}", k)
        topology.place_on_edge(f"poqs{k}", k)

    # per-edge tier
    services: List[BookstoreService] = []
    for k in range(n):
        catalog = CatalogNode(sim, net, f"cat{k}", "cat-origin")
        orders = OrderNode(sim, net, f"ord{k}", "ord-origin",
                           flush_interval_ms=order_flush_ms)
        inventory = InventoryEdgeNode(sim, net, f"inv{k}", "inv-origin")
        profile_client = profiles.client(f"pcli{k}", prefer_oqs=f"poqs{k}")
        for node_id in (f"cat{k}", f"ord{k}", f"inv{k}", f"pcli{k}"):
            topology.place_on_edge(node_id, k)
        services.append(
            BookstoreService(k, catalog, orders, inventory, profile_client)
        )

    return BookstoreDeployment(
        topology=topology,
        services=services,
        catalog_origin=catalog_origin,
        order_origin=order_origin,
        inventory_origin=inventory_origin,
        profiles=profiles,
    )
