"""The bookstore's non-profile object stores.

Three of the paper's four object classes need no quorums at all — each
gets the cheapest protocol that meets its class-specific contract:

* **Catalog** (single-writer, multi-reader).  The origin owns every
  item and publishes versioned updates: an eager push to all edges,
  backed by periodic digest re-sync so edges that missed pushes
  converge.  Contract: per-item versions never go backwards at any
  edge, and every edge eventually serves the newest version.

* **Orders** (multi-writer, single-reader).  An edge accepts an order,
  assigns it a locally unique id, acknowledges the customer
  immediately, and streams it to the origin with retransmission until
  acknowledged.  Contract: every acknowledged order reaches the origin
  exactly once (dedup by id), regardless of message loss.

* **Inventory** (commutative-write, approximate-read).  Escrow: the
  origin splits each product's stock into allotments that edges draw
  down locally; an edge refills synchronously from the origin when its
  allotment runs dry.  Contract: the *global* invariant — units sold
  never exceed stock — holds under any concurrency, while reads of the
  remaining count are cheap and approximate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...sim.kernel import Simulator
from ...sim.messages import Message
from ...sim.network import Network
from ...sim.node import Node, RpcTimeout

__all__ = [
    "CatalogOriginNode",
    "CatalogNode",
    "OrderNode",
    "OrderOriginNode",
    "InventoryOriginNode",
    "InventoryEdgeNode",
]


# ---------------------------------------------------------------------------
# catalog: single writer, many readers
# ---------------------------------------------------------------------------


class CatalogOriginNode(Node):
    """The catalog's single writer: publishes versioned item updates."""

    def __init__(self, sim, network, node_id, edge_ids: Sequence[str],
                 resync_interval_ms: float = 5_000.0) -> None:
        super().__init__(sim, network, node_id)
        self.edge_ids = list(edge_ids)
        self._items: Dict[str, Tuple[int, Any]] = {}  # item -> (version, data)
        self.publishes = 0
        if resync_interval_ms > 0 and self.edge_ids:
            self.after(resync_interval_ms, self._resync_tick, resync_interval_ms)

    def publish(self, item: str, data: Any) -> int:
        """Install a new version locally and push it to every edge.

        Only the origin calls this — the single-writer assumption; the
        returned version number is per-item monotonic.
        """
        version = self._items.get(item, (0, None))[0] + 1
        self._items[item] = (version, data)
        self.publishes += 1
        for edge in self.edge_ids:
            self.send(edge, "cat_update", {
                "item": item, "version": version, "data": data,
            })
        return version

    def current(self, item: str) -> Tuple[int, Any]:
        return self._items.get(item, (0, None))

    def _resync_tick(self, interval: float) -> None:
        """Anti-entropy: ship the digest; edges pull what they miss."""
        digest = {item: version for item, (version, _d) in self._items.items()}
        for edge in self.edge_ids:
            self.send(edge, "cat_digest", {"digest": digest})
        self.after(interval, self._resync_tick, interval)

    def on_cat_pull(self, msg: Message) -> None:
        wanted = {}
        for item in msg["items"]:
            if item in self._items:
                version, data = self._items[item]
                wanted[item] = (version, data)
        self.reply(msg, payload={"items": wanted})


class CatalogNode(Node):
    """An edge's read-only catalog cache."""

    def __init__(self, sim, network, node_id, origin_id: str) -> None:
        super().__init__(sim, network, node_id)
        self.origin_id = origin_id
        self._items: Dict[str, Tuple[int, Any]] = {}
        self.stale_updates_ignored = 0

    def lookup(self, item: str) -> Tuple[int, Any]:
        """Local, immediate read: ``(version, data)`` (0, None if unseen)."""
        return self._items.get(item, (0, None))

    def _apply(self, item: str, version: int, data: Any) -> None:
        """Install if newer; per-item versions never regress at an edge."""
        current = self._items.get(item, (0, None))[0]
        if version > current:
            self._items[item] = (version, data)
        elif version < current:
            self.stale_updates_ignored += 1

    def on_cat_update(self, msg: Message) -> None:
        self._apply(msg["item"], msg["version"], msg["data"])

    def on_cat_digest(self, msg: Message):
        missing = [
            item for item, version in msg["digest"].items()
            if self._items.get(item, (0, None))[0] < version
        ]
        if not missing:
            return
        try:
            reply = yield self.call(
                self.origin_id, "cat_pull", {"items": missing}, timeout=2_000.0
            )
        except RpcTimeout:
            return  # the next digest round retries
        for item, (version, data) in reply["items"].items():
            self._apply(item, version, data)


# ---------------------------------------------------------------------------
# orders: many writers, one reader
# ---------------------------------------------------------------------------


class OrderNode(Node):
    """An edge's order intake: local ack, reliable async stream to origin."""

    def __init__(self, sim, network, node_id, origin_id: str,
                 flush_interval_ms: float = 1_000.0) -> None:
        super().__init__(sim, network, node_id)
        self.origin_id = origin_id
        self.flush_interval_ms = flush_interval_ms
        self._seq = 0
        self._pending: Dict[str, dict] = {}  # order_id -> order
        self.accepted = 0
        self.after(flush_interval_ms, self._flush_tick)

    def submit(self, customer: str, item: str, quantity: int = 1) -> str:
        """Accept an order locally; returns its globally unique id.

        The customer is acknowledged before the origin knows — the
        availability win of this object class; delivery to the origin
        is the store's (asynchronous, reliable) responsibility.
        """
        self._seq += 1
        order_id = f"{self.node_id}:{self._seq}"
        order = {
            "order_id": order_id,
            "customer": customer,
            "item": item,
            "quantity": quantity,
            "accepted_at": self.sim.now,
        }
        self._pending[order_id] = order
        self.accepted += 1
        self._send_order(order)
        return order_id

    @property
    def backlog(self) -> int:
        """Orders accepted but not yet confirmed by the origin."""
        return len(self._pending)

    def _send_order(self, order: dict) -> None:
        future = self.call(self.origin_id, "ord_deliver", dict(order),
                           timeout=self.flush_interval_ms)

        def on_reply(f) -> None:
            if not f.failed:
                self._pending.pop(f._value["order_id"], None)

        future.add_callback(on_reply)

    def _flush_tick(self) -> None:
        for order in list(self._pending.values()):
            self._send_order(order)
        self.after(self.flush_interval_ms, self._flush_tick)


class OrderOriginNode(Node):
    """The single reader: the origin's fulfilment pipeline."""

    def __init__(self, sim, network, node_id) -> None:
        super().__init__(sim, network, node_id)
        self._orders: Dict[str, dict] = {}
        self.duplicates_dropped = 0

    def on_ord_deliver(self, msg: Message) -> None:
        order_id = msg["order_id"]
        if order_id in self._orders:
            self.duplicates_dropped += 1
        else:
            self._orders[order_id] = dict(msg.payload)
        self.reply(msg, payload={"order_id": order_id})

    def orders(self) -> List[dict]:
        """All orders received, in acceptance-time order."""
        return sorted(self._orders.values(), key=lambda o: o["accepted_at"])

    def order_count(self) -> int:
        return len(self._orders)


# ---------------------------------------------------------------------------
# inventory: commutative writes, approximate reads
# ---------------------------------------------------------------------------


class InventoryOriginNode(Node):
    """Guards the global stock: grants escrow allotments to edges."""

    def __init__(self, sim, network, node_id, stock: Dict[str, int],
                 batch: int = 10) -> None:
        super().__init__(sim, network, node_id)
        if any(count < 0 for count in stock.values()):
            raise ValueError("stock counts must be non-negative")
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self._remaining: Dict[str, int] = dict(stock)
        self.batch = batch
        self.grants = 0

    def on_inv_refill(self, msg: Message) -> None:
        """Grant up to ``batch`` units (idempotence is the edge's job:
        an unacked grant is simply lost stock until restock — the safe
        direction for the never-oversell invariant)."""
        item = msg["item"]
        remaining = self._remaining.get(item, 0)
        granted = min(self.batch, remaining)
        self._remaining[item] = remaining - granted
        if granted:
            self.grants += 1
        self.reply(msg, payload={"item": item, "granted": granted})

    def restock(self, item: str, quantity: int) -> None:
        if quantity < 0:
            raise ValueError("quantity must be non-negative")
        self._remaining[item] = self._remaining.get(item, 0) + quantity

    def remaining(self, item: str) -> int:
        """Units not yet granted to any edge."""
        return self._remaining.get(item, 0)


class InventoryEdgeNode(Node):
    """An edge's escrow allotments; sells locally, refills on demand."""

    def __init__(self, sim, network, node_id, origin_id: str) -> None:
        super().__init__(sim, network, node_id)
        self.origin_id = origin_id
        self._allotment: Dict[str, int] = {}
        self.sold = 0

    def approximate_count(self, item: str) -> int:
        """Cheap, local, possibly stale: this edge's unsold allotment."""
        return self._allotment.get(item, 0)

    def reserve(self, item: str, quantity: int = 1):
        """Reserve units for a sale (kernel process).

        Serves from the local allotment when possible; otherwise asks
        the origin for a refill (bounded retries).  Returns True when
        the units are secured, False when the product is sold out or
        the origin unreachable — never overselling either way.
        """
        if quantity < 1:
            raise ValueError("quantity must be positive")
        for _attempt in range(3):
            if self._allotment.get(item, 0) >= quantity:
                self._allotment[item] -= quantity
                self.sold += quantity
                return True
            try:
                reply = yield self.call(
                    self.origin_id, "inv_refill", {"item": item},
                    timeout=2_000.0,
                )
            except RpcTimeout:
                continue
            granted = reply["granted"]
            if granted == 0:
                return False  # origin says: out of stock
            self._allotment[item] = self._allotment.get(item, 0) + granted
        return False

    def release(self, item: str, quantity: int) -> None:
        """Return units to the local allotment (an aborted sale)."""
        if quantity < 0:
            raise ValueError("quantity must be non-negative")
        self._allotment[item] = self._allotment.get(item, 0) + quantity
        self.sold -= quantity
