"""Applications built on the replication library.

The paper motivates dual-quorum replication with an edge-service
e-commerce application (TPC-W); :mod:`repro.apps.bookstore` implements
that application's data tier, mapping each of the four object classes
from the authors' taxonomy (Section 1) to an appropriate replication
strategy — with DQVL covering the class the paper contributes.
"""

from . import bookstore

__all__ = ["bookstore"]
