"""Full edge-service deployments, one builder per protocol.

Each builder places protocol servers on the edge hosts of an
:class:`~repro.edge.topology.EdgeTopology`, creates a front end (with
its protocol service client) on every edge server, and returns a
:class:`Deployment` from which application clients can be spawned.

This is the wiring used by every response-time experiment:

* **dqvl** — an OQS node on every edge server (read-one/write-all OQS),
  an IQS node on the first ``num_iqs`` edge servers (majority IQS);
  front ends prefer their co-located OQS node.
* **basic_dq** — the lease-free dual-quorum protocol, same placement.
* **majority** — one replica per edge server, majority quorums.
* **primary_backup** — replica per edge server, primary on edge 0.
* **rowa** — replica per edge server, synchronous write-all.
* **rowa_async** — replica per edge server, epidemic propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.cluster import build_basic_dq_cluster, build_dqvl_cluster
from ..core.config import DqvlConfig
from ..protocols.majority import build_majority_cluster
from ..protocols.primary_backup import build_primary_backup_cluster
from ..protocols.rowa import build_rowa_cluster
from ..protocols.rowa_async import build_rowa_async_cluster
from ..quorum.spec import QuorumSpec, SpecLike
from ..quorum.system import QuorumSystem
from ..resilience import NodeResilience, ResilienceConfig, derive_qrpc_timeouts
from .frontend import AppClient, FrontEnd, LocalityRedirection
from .topology import EdgeTopology

__all__ = [
    "Deployment",
    "default_qrpc",
    "deploy_dqvl",
    "deploy_basic_dq",
    "deploy_majority",
    "deploy_primary_backup",
    "deploy_rowa",
    "deploy_rowa_async",
    "PROTOCOL_DEPLOYERS",
]


def default_qrpc(topology: EdgeTopology) -> Dict[str, float]:
    """QRPC retransmission schedule derived from the topology's delay
    distribution (the historical fixed 400/6400 ms was wrong for both
    LAN-only and degraded-WAN topologies)."""
    initial, cap = derive_qrpc_timeouts(topology.config)
    return {
        "initial_timeout_ms": initial,
        "backoff": 2.0,
        "max_timeout_ms": cap,
    }


@dataclass
class Deployment:
    """A protocol deployed across the edge topology.

    Two ways to drive it:

    * **front-end mode** (Figure 1's full architecture): spawn
      :meth:`app_client`\\ s that send requests to front ends over the
      8/86 ms links; the front ends' co-located service clients run the
      protocol.  Used by the examples and integration tests.
    * **direct mode** (the prototype measurement setup of Section 4.1):
      :meth:`direct_client` places a service client on the application
      client's machine; reads reach the preferred replica over the 8 ms
      link and other replicas over 86 ms.  :meth:`set_preferred_edge`
      retargets the replica choice per operation — the access-locality
      knob of Figure 7.  In this mode majority and primary/backup are
      locality-insensitive (their quorums/primary are mostly remote
      either way), matching the paper.
    """

    name: str
    topology: EdgeTopology
    front_ends: List[FrontEnd]
    cluster: Any
    protocol_kinds: List[str] = field(default_factory=list)
    #: builds an (unplaced) protocol client: (node_id, prefer_edge) -> client
    _store_client_factory: Optional[Callable[[str, Optional[int]], Any]] = None
    #: client attribute that names the preferred replica (None: no choice)
    pref_attr: Optional[str] = None
    #: replica node id on each edge (for preference switching)
    replica_ids: List[str] = field(default_factory=list)
    #: resilience layer attached at deploy time (None: disabled)
    resilience: Optional[ResilienceConfig] = None
    _app_counter: int = 0

    def direct_client(self, client_index: int):
        """Create a service client on application client *client_index*'s
        machine, preferring its home edge's replica."""
        if self._store_client_factory is None:
            raise RuntimeError(f"{self.name} deployment has no client factory")
        node_id = f"appsc{client_index}"
        home = self.topology.home_edge_index(client_index)
        client = self._store_client_factory(node_id, home)
        self.topology.place_on_client(node_id, client_index)
        return client

    def set_preferred_edge(self, client, edge_index: int) -> None:
        """Point *client*'s replica preference at edge *edge_index*
        (no-op for protocols without replica choice)."""
        if self.pref_attr is None or not self.replica_ids:
            return
        setattr(client, self.pref_attr, self.replica_ids[edge_index])

    @property
    def front_end_ids(self) -> List[str]:
        return [fe.node_id for fe in self.front_ends]

    def front_end_for_edge(self, k: int) -> FrontEnd:
        return self.front_ends[k]

    def app_client(
        self,
        client_index: int,
        locality: float = 1.0,
        request_timeout_ms: float = 30_000.0,
    ) -> AppClient:
        """Create application client *client_index* on its client host,
        homed at its closest edge server's front end."""
        topo = self.topology
        home_edge = topo.home_edge_index(client_index)
        redirection = LocalityRedirection(
            home=self.front_end_ids[home_edge],
            all_front_ends=self.front_end_ids,
            locality=locality,
        )
        self._app_counter += 1
        node_id = f"app{client_index}"
        budget = (
            self.resilience.shed_retry_budget if self.resilience is not None else 3
        )
        app = AppClient(
            topo.sim, topo.network, node_id, redirection,
            request_timeout_ms=request_timeout_ms,
            shed_retry_budget=budget,
        )
        topo.place_on_client(node_id, client_index)
        return app

    def protocol_message_count(self) -> int:
        """Messages of protocol kinds accepted by the network so far —
        excludes the app↔front-end hop, matching the paper's
        communication-overhead accounting."""
        stats = self.topology.network.stats
        return sum(stats.by_kind[k] for k in self.protocol_kinds)


def _make_front_ends(
    topology: EdgeTopology, make_store_client: Callable[[int], Any],
    resilience: Optional[ResilienceConfig] = None,
) -> List[FrontEnd]:
    front_ends = []
    for k in range(topology.config.num_edges):
        store_client = make_store_client(k)
        fe = FrontEnd(topology.sim, topology.network, f"fe{k}", store_client,
                      resilience=resilience)
        topology.place_on_edge(fe.node_id, k)
        front_ends.append(fe)
    return front_ends


_DQ_KINDS = [
    "dq_read", "dq_read_reply", "dq_write", "dq_write_reply",
    "lc_read", "lc_read_reply", "inval", "inval_reply",
    "obj_renew", "obj_renew_reply", "vl_renew", "vl_renew_reply",
    "vlobj_renew", "vlobj_renew_reply", "vl_ack",
]


def deploy_dqvl(
    topology: EdgeTopology,
    num_iqs: Optional[int] = None,
    config: Optional[DqvlConfig] = None,
    iqs_system: Optional[QuorumSystem] = None,
    oqs_system: Optional[QuorumSystem] = None,
    client_max_attempts: Optional[int] = None,
    resilience: Optional[ResilienceConfig] = None,
    iqs_spec: Optional[SpecLike] = None,
    oqs_spec: Optional[SpecLike] = None,
) -> Deployment:
    """Deploy DQVL: OQS everywhere, IQS on the first *num_iqs* edges.

    *iqs_spec*/*oqs_spec* override the quorum shapes declaratively
    (e.g. ``"grid:3x3"``) while keeping the deployment's derived
    defaults — QRPC timeouts, volume maps — intact; they also override
    the shapes of a passed *config*.  A prebuilt *iqs_system*/
    *oqs_system* still wins over both.

    With *resilience* set, every OQS node and service client gets a
    :class:`NodeResilience` (failure detector, adaptive timeouts,
    hedging) and every front end a circuit breaker with degraded-read /
    shed-write behaviour.
    """
    n = topology.config.num_edges
    num_iqs = n if num_iqs is None else num_iqs
    if not 1 <= num_iqs <= n:
        raise ValueError(f"num_iqs must be in [1, {n}]")
    if config is None:
        initial, cap = derive_qrpc_timeouts(topology.config)
        config = DqvlConfig(proactive_renewal=True,
                            qrpc_initial_timeout_ms=initial,
                            qrpc_max_timeout_ms=cap)
    if iqs_spec is not None:
        config.iqs_spec = QuorumSpec.parse(iqs_spec)
    if oqs_spec is not None:
        config.oqs_spec = QuorumSpec.parse(oqs_spec)
    if client_max_attempts is not None:
        config.client_max_attempts = client_max_attempts
    iqs_ids = [f"iqs{k}" for k in range(num_iqs)]
    oqs_ids = [f"oqs{k}" for k in range(n)]
    cluster = build_dqvl_cluster(
        topology.sim, topology.network, iqs_ids, oqs_ids,
        config=config, iqs_system=iqs_system, oqs_system=oqs_system,
    )
    for k, node_id in enumerate(iqs_ids):
        topology.place_on_edge(node_id, k)
    for k, node_id in enumerate(oqs_ids):
        topology.place_on_edge(node_id, k)
    if resilience is not None:
        for node in cluster.oqs_nodes:
            node.resilience = NodeResilience(
                topology.sim, node.node_id, resilience
            )

    def attach_resilience(client):
        if resilience is not None:
            client.resilience = NodeResilience(
                topology.sim, client.node_id, resilience
            )
        return client

    def make_store_client(k: int):
        client = cluster.client(
            f"sc{k}",
            prefer_oqs=f"oqs{k}",
            prefer_iqs=f"iqs{k}" if k < num_iqs else None,
        )
        topology.place_on_edge(client.node_id, k)
        return attach_resilience(client)

    front_ends = _make_front_ends(topology, make_store_client, resilience)

    def store_client_factory(node_id: str, prefer_edge: Optional[int]):
        return attach_resilience(cluster.client(
            node_id,
            prefer_oqs=f"oqs{prefer_edge}" if prefer_edge is not None else None,
        ))

    return Deployment(
        "dqvl", topology, front_ends, cluster, list(_DQ_KINDS),
        _store_client_factory=store_client_factory,
        pref_attr="prefer_oqs", replica_ids=list(oqs_ids),
        resilience=resilience,
    )


def deploy_basic_dq(
    topology: EdgeTopology,
    num_iqs: Optional[int] = None,
    config: Optional[DqvlConfig] = None,
    client_max_attempts: Optional[int] = None,
    resilience: Optional[ResilienceConfig] = None,
    iqs_spec: Optional[SpecLike] = None,
    oqs_spec: Optional[SpecLike] = None,
) -> Deployment:
    """Deploy the lease-free basic dual-quorum protocol (Section 3.1)."""
    n = topology.config.num_edges
    num_iqs = n if num_iqs is None else num_iqs
    if config is None:
        initial, cap = derive_qrpc_timeouts(topology.config)
        config = DqvlConfig(qrpc_initial_timeout_ms=initial,
                            qrpc_max_timeout_ms=cap)
    if iqs_spec is not None:
        config.iqs_spec = QuorumSpec.parse(iqs_spec)
    if oqs_spec is not None:
        config.oqs_spec = QuorumSpec.parse(oqs_spec)
    if client_max_attempts is not None:
        config.client_max_attempts = client_max_attempts
    iqs_ids = [f"iqs{k}" for k in range(num_iqs)]
    oqs_ids = [f"oqs{k}" for k in range(n)]
    cluster = build_basic_dq_cluster(
        topology.sim, topology.network, iqs_ids, oqs_ids, config=config
    )
    for k, node_id in enumerate(iqs_ids):
        topology.place_on_edge(node_id, k)
    for k, node_id in enumerate(oqs_ids):
        topology.place_on_edge(node_id, k)
    if resilience is not None:
        for node in cluster.oqs_nodes:
            node.resilience = NodeResilience(
                topology.sim, node.node_id, resilience
            )

    def attach_resilience(client):
        if resilience is not None:
            client.resilience = NodeResilience(
                topology.sim, client.node_id, resilience
            )
        return client

    def make_store_client(k: int):
        client = cluster.client(
            f"sc{k}",
            prefer_oqs=f"oqs{k}",
            prefer_iqs=f"iqs{k}" if k < num_iqs else None,
        )
        topology.place_on_edge(client.node_id, k)
        return attach_resilience(client)

    front_ends = _make_front_ends(topology, make_store_client, resilience)

    def store_client_factory(node_id: str, prefer_edge: Optional[int]):
        return attach_resilience(cluster.client(
            node_id,
            prefer_oqs=f"oqs{prefer_edge}" if prefer_edge is not None else None,
        ))

    return Deployment(
        "basic_dq", topology, front_ends, cluster, list(_DQ_KINDS),
        _store_client_factory=store_client_factory,
        pref_attr="prefer_oqs", replica_ids=list(oqs_ids),
        resilience=resilience,
    )


def deploy_majority(
    topology: EdgeTopology,
    system: Optional[QuorumSystem] = None,
    client_max_attempts: Optional[int] = None,
    spec: Optional[SpecLike] = None,
) -> Deployment:
    """Deploy a majority-quorum register, one replica per edge server.

    *spec* (e.g. ``"grid:3x3"``) picks a non-default quorum shape; a
    prebuilt *system* wins over it.
    """
    n = topology.config.num_edges
    server_ids = [f"srv{k}" for k in range(n)]
    qrpc_config = default_qrpc(topology)
    if client_max_attempts is not None:
        qrpc_config["max_attempts"] = client_max_attempts
    cluster = build_majority_cluster(
        topology.sim, topology.network, server_ids,
        system=system, qrpc_config=qrpc_config, spec=spec,
    )
    for k, node_id in enumerate(server_ids):
        topology.place_on_edge(node_id, k)

    def make_store_client(k: int):
        client = cluster.client(f"sc{k}", prefer=f"srv{k}")
        topology.place_on_edge(client.node_id, k)
        return client

    front_ends = _make_front_ends(topology, make_store_client)
    kinds = ["mq_read", "mq_read_reply", "mq_write", "mq_write_reply",
             "mq_lc", "mq_lc_reply"]

    def store_client_factory(node_id: str, prefer_edge: Optional[int]):
        prefer = f"srv{prefer_edge}" if prefer_edge is not None else None
        return cluster.client(node_id, prefer=prefer)

    return Deployment(
        "majority", topology, front_ends, cluster, kinds,
        _store_client_factory=store_client_factory,
        pref_attr="prefer", replica_ids=list(server_ids),
    )


def deploy_primary_backup(
    topology: EdgeTopology,
    primary_edge: int = 0,
    client_max_attempts: Optional[int] = None,
) -> Deployment:
    """Deploy primary/backup with the primary on *primary_edge*."""
    n = topology.config.num_edges
    server_ids = [f"srv{k}" for k in range(n)]
    cluster = build_primary_backup_cluster(
        topology.sim, topology.network, server_ids,
        primary_id=f"srv{primary_edge}", max_attempts=client_max_attempts,
    )
    for k, node_id in enumerate(server_ids):
        topology.place_on_edge(node_id, k)

    def make_store_client(k: int):
        client = cluster.client(f"sc{k}")
        topology.place_on_edge(client.node_id, k)
        return client

    front_ends = _make_front_ends(topology, make_store_client)
    kinds = ["pb_read", "pb_read_reply", "pb_write", "pb_write_reply", "pb_sync"]

    def store_client_factory(node_id: str, prefer_edge: Optional[int]):
        return cluster.client(node_id)

    return Deployment(
        "primary_backup", topology, front_ends, cluster, kinds,
        _store_client_factory=store_client_factory,
        pref_attr=None, replica_ids=list(server_ids),
    )


def deploy_rowa(
    topology: EdgeTopology,
    client_max_attempts: Optional[int] = None,
) -> Deployment:
    """Deploy synchronous ROWA, one replica per edge server."""
    n = topology.config.num_edges
    server_ids = [f"srv{k}" for k in range(n)]
    qrpc_config = default_qrpc(topology)
    if client_max_attempts is not None:
        qrpc_config["max_attempts"] = client_max_attempts
    cluster = build_rowa_cluster(
        topology.sim, topology.network, server_ids, qrpc_config=qrpc_config
    )
    for k, node_id in enumerate(server_ids):
        topology.place_on_edge(node_id, k)

    def make_store_client(k: int):
        client = cluster.client(f"sc{k}", prefer=f"srv{k}")
        topology.place_on_edge(client.node_id, k)
        return client

    front_ends = _make_front_ends(topology, make_store_client)
    kinds = ["rowa_read", "rowa_read_reply", "rowa_write", "rowa_write_reply"]

    def store_client_factory(node_id: str, prefer_edge: Optional[int]):
        prefer = f"srv{prefer_edge}" if prefer_edge is not None else None
        return cluster.client(node_id, prefer=prefer)

    return Deployment(
        "rowa", topology, front_ends, cluster, kinds,
        _store_client_factory=store_client_factory,
        pref_attr="prefer", replica_ids=list(server_ids),
    )


def deploy_rowa_async(
    topology: EdgeTopology,
    gossip_interval_ms: float = 1000.0,
    client_max_attempts: Optional[int] = None,
) -> Deployment:
    """Deploy epidemic ROWA-Async, one replica per edge server."""
    n = topology.config.num_edges
    server_ids = [f"srv{k}" for k in range(n)]
    cluster = build_rowa_async_cluster(
        topology.sim, topology.network, server_ids,
        gossip_interval_ms=gossip_interval_ms, max_attempts=client_max_attempts,
    )
    for k, node_id in enumerate(server_ids):
        topology.place_on_edge(node_id, k)

    def make_store_client(k: int):
        client = cluster.client(f"sc{k}", prefer=f"srv{k}")
        topology.place_on_edge(client.node_id, k)
        return client

    front_ends = _make_front_ends(topology, make_store_client)
    kinds = ["ra_read", "ra_read_reply", "ra_write", "ra_write_reply",
             "ra_update", "ra_digest", "ra_pull"]

    def store_client_factory(node_id: str, prefer_edge: Optional[int]):
        prefer = f"srv{prefer_edge}" if prefer_edge is not None else f"srv0"
        return cluster.client(node_id, prefer=prefer)

    return Deployment(
        "rowa_async", topology, front_ends, cluster, kinds,
        _store_client_factory=store_client_factory,
        pref_attr="replica_id", replica_ids=list(server_ids),
    )


#: Registry used by the harness and benchmarks.
PROTOCOL_DEPLOYERS: Dict[str, Callable[..., Deployment]] = {
    "dqvl": deploy_dqvl,
    "basic_dq": deploy_basic_dq,
    "majority": deploy_majority,
    "primary_backup": deploy_primary_backup,
    "rowa": deploy_rowa,
    "rowa_async": deploy_rowa_async,
}
