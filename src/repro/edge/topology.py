"""The paper's edge-service topology.

Section 4.1 fixes three delays for the prototype experiment:

* **8 ms** ("LAN") between an application client and its closest edge
  server;
* **86 ms** ("WAN") between an application client and every other edge
  server;
* **80 ms** between any two edge servers.

This module models those as one-way delays between *hosts*.  Every
simulated node (an OQS server, an IQS server, a front-end service
client, an application client) is **placed** on a host; nodes sharing a
host communicate with zero delay — that is how co-location of roles on
one edge server (e.g. an OQS node, an IQS node and the front end) is
expressed, matching the paper's remark that "an IQS server could
physically be on the same node as an OQS server".

The paper assumes a constant processing delay on every edge server for
both reads and writes; since it is constant across protocols it shifts
every curve equally, and we set it to zero by default (configurable via
``processing_ms``, added per network hop at the receiving edge host).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.kernel import Simulator
from ..sim.network import DelayModel, Network

__all__ = ["EdgeTopologyConfig", "EdgeDelayModel", "EdgeTopology"]


@dataclass
class EdgeTopologyConfig:
    """Topology parameters (defaults are the paper's)."""

    num_edges: int = 9
    num_clients: int = 3
    lan_ms: float = 8.0
    client_wan_ms: float = 86.0
    server_wan_ms: float = 80.0
    #: constant per-message processing delay charged at edge hosts
    processing_ms: float = 0.0
    #: uniform jitter added to every delay (enables reordering)
    jitter_ms: float = 0.0
    #: number of geographic regions; edge servers are split into
    #: contiguous blocks of ``num_edges / regions``.  ``None`` keeps the
    #: paper's flat topology (every edge pair at ``server_wan_ms``).
    regions: Optional[int] = None
    #: edge-to-edge delay *within* a region (only with ``regions`` set)
    intra_region_ms: float = 20.0

    def __post_init__(self) -> None:
        if self.num_edges < 1 or self.num_clients < 0:
            raise ValueError("topology needs at least one edge server")
        if min(self.lan_ms, self.client_wan_ms, self.server_wan_ms) < 0:
            raise ValueError("delays must be non-negative")
        if self.regions is not None:
            if not 1 <= self.regions <= self.num_edges:
                raise ValueError("regions must be in [1, num_edges]")
            if self.intra_region_ms < 0:
                raise ValueError("intra-region delay must be non-negative")


class EdgeDelayModel(DelayModel):
    """Delay lookup through host placement."""

    def __init__(self, config: EdgeTopologyConfig) -> None:
        self.config = config
        self.host_of: Dict[str, str] = {}
        self.home_edge: Dict[str, str] = {}
        self.region_of: Dict[str, int] = {}

    def place(self, node_id: str, host: str) -> None:
        self.host_of[node_id] = host

    def set_home(self, client_host: str, edge_host: str) -> None:
        self.home_edge[client_host] = edge_host

    def set_region(self, host: str, region: int) -> None:
        self.region_of[host] = region

    def _host_delay(self, host_a: str, host_b: str) -> float:
        if host_a == host_b:
            return 0.0
        a_is_client = host_a.startswith("client")
        b_is_client = host_b.startswith("client")
        if a_is_client and b_is_client:
            # Application clients never talk to each other; charge the
            # worst WAN delay if someone tries.
            return self.config.client_wan_ms
        if a_is_client or b_is_client:
            client_host = host_a if a_is_client else host_b
            edge_host = host_b if a_is_client else host_a
            if self.home_edge.get(client_host) == edge_host:
                return self.config.lan_ms
            return self.config.client_wan_ms
        region_a = self.region_of.get(host_a)
        region_b = self.region_of.get(host_b)
        if region_a is not None and region_a == region_b:
            return self.config.intra_region_ms
        return self.config.server_wan_ms

    def delay(self, src: str, dst: str, rng) -> float:
        host_src = self.host_of.get(src)
        host_dst = self.host_of.get(dst)
        if host_src is None or host_dst is None:
            missing = src if host_src is None else dst
            raise KeyError(f"node {missing!r} has not been placed on a host")
        delay = self._host_delay(host_src, host_dst)
        if not host_dst.startswith("client"):
            delay += self.config.processing_ms
        if self.config.jitter_ms:
            delay += rng.uniform(0.0, self.config.jitter_ms)
        return delay


class EdgeTopology:
    """A simulator + network wired with the edge delay model.

    Host naming: edge servers are ``edge0..edge{n-1}``; application
    client machines are ``client0..client{m-1}``.  Client *c*'s home
    (closest) edge server is ``edge{c % num_edges}``.

    With ``config.regions`` set, edge servers are grouped into
    contiguous regional blocks (``edge0..`` in region 0, the next block
    in region 1, ...): edges in the same region talk at
    ``intra_region_ms``, cross-region pairs at ``server_wan_ms`` — the
    multi-PoP CDN geometry (PoPs within a metro area vs. across
    continents).
    """

    def __init__(self, sim: Simulator, config: Optional[EdgeTopologyConfig] = None) -> None:
        self.sim = sim
        self.config = config or EdgeTopologyConfig()
        self.delay_model = EdgeDelayModel(self.config)
        self.network = Network(sim, self.delay_model)
        for c in range(self.config.num_clients):
            self.delay_model.set_home(self.client_host(c), self.edge_host(c % self.config.num_edges))
        if self.config.regions is not None:
            for k in range(self.config.num_edges):
                self.delay_model.set_region(self.edge_host(k), self.region_of_edge(k))

    # -- host names -----------------------------------------------------------

    def edge_host(self, k: int) -> str:
        if not 0 <= k < self.config.num_edges:
            raise IndexError(f"edge index {k} out of range")
        return f"edge{k}"

    def client_host(self, c: int) -> str:
        if not 0 <= c < self.config.num_clients:
            raise IndexError(f"client index {c} out of range")
        return f"client{c}"

    def home_edge_index(self, c: int) -> int:
        """Index of client *c*'s closest edge server."""
        return c % self.config.num_edges

    def region_of_edge(self, k: int) -> int:
        """Region index of edge server *k* (0 when regions are off)."""
        if self.config.regions is None:
            return 0
        return k * self.config.regions // self.config.num_edges

    @property
    def edge_hosts(self) -> List[str]:
        return [self.edge_host(k) for k in range(self.config.num_edges)]

    # -- placement --------------------------------------------------------------

    def place_on_edge(self, node_id: str, k: int) -> str:
        """Place a node on edge server *k*; returns the host name."""
        host = self.edge_host(k)
        self.delay_model.place(node_id, host)
        return host

    def place_on_client(self, node_id: str, c: int) -> str:
        """Place a node on application-client machine *c*."""
        host = self.client_host(c)
        self.delay_model.place(node_id, host)
        return host
