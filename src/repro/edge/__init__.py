"""Edge-service architecture: topology, front ends, deployments.

Models Figure 1 of the paper: application clients reach nearby front-end
edge servers, which execute service logic and act as service clients of
the replicated storage system.
"""

from .deployments import (
    PROTOCOL_DEPLOYERS,
    Deployment,
    deploy_basic_dq,
    deploy_dqvl,
    deploy_majority,
    deploy_primary_backup,
    deploy_rowa,
    deploy_rowa_async,
)
from .frontend import (
    AppClient,
    FrontEnd,
    LocalityRedirection,
    OperationFailed,
    RedirectionPolicy,
)
from .topology import EdgeDelayModel, EdgeTopology, EdgeTopologyConfig

# cdn sits on top of both the workload and harness packages, which in
# turn import edge submodules during their own initialisation — an eager
# import here would be circular whenever this package is reached through
# one of them.  Expose its names lazily instead (PEP 562): by the time a
# caller touches repro.edge.CdnScenarioConfig, every package involved is
# fully initialised.
_CDN_NAMES = ("CdnResult", "CdnScenarioConfig", "run_cdn")


def __getattr__(name):
    if name in _CDN_NAMES:
        from . import cdn

        return getattr(cdn, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EdgeTopology",
    "EdgeTopologyConfig",
    "EdgeDelayModel",
    "FrontEnd",
    "AppClient",
    "RedirectionPolicy",
    "LocalityRedirection",
    "OperationFailed",
    "Deployment",
    "deploy_dqvl",
    "deploy_basic_dq",
    "deploy_majority",
    "deploy_primary_backup",
    "deploy_rowa",
    "deploy_rowa_async",
    "PROTOCOL_DEPLOYERS",
    "CdnScenarioConfig",
    "CdnResult",
    "run_cdn",
]
