"""Edge-service architecture: topology, front ends, deployments.

Models Figure 1 of the paper: application clients reach nearby front-end
edge servers, which execute service logic and act as service clients of
the replicated storage system.
"""

from .deployments import (
    PROTOCOL_DEPLOYERS,
    Deployment,
    deploy_basic_dq,
    deploy_dqvl,
    deploy_majority,
    deploy_primary_backup,
    deploy_rowa,
    deploy_rowa_async,
)
from .frontend import (
    AppClient,
    FrontEnd,
    LocalityRedirection,
    OperationFailed,
    RedirectionPolicy,
)
from .topology import EdgeDelayModel, EdgeTopology, EdgeTopologyConfig

__all__ = [
    "EdgeTopology",
    "EdgeTopologyConfig",
    "EdgeDelayModel",
    "FrontEnd",
    "AppClient",
    "RedirectionPolicy",
    "LocalityRedirection",
    "OperationFailed",
    "Deployment",
    "deploy_dqvl",
    "deploy_basic_dq",
    "deploy_majority",
    "deploy_primary_backup",
    "deploy_rowa",
    "deploy_rowa_async",
    "PROTOCOL_DEPLOYERS",
]
