"""Front ends and application clients (Figure 1's request path).

An :class:`AppClient` is an end user's machine: it sends each request to
a front-end edge server chosen by a :class:`RedirectionPolicy` and waits
for the response — a closed loop, as in the paper ("the application
client sends the next request only after it receives the response of the
current request").

A :class:`FrontEnd` is the service logic on an edge server: it owns a
protocol *service client* (DQVL, majority, ROWA, ...) and translates
application requests into storage operations.  Application clients are
unaware of the storage protocol and never contact the OQS/IQS directly,
exactly as the system model requires.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..sim.kernel import Simulator
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node, RpcTimeout
from ..types import ZERO_LC, ReadResult, WriteResult

__all__ = ["FrontEnd", "AppClient", "RedirectionPolicy", "LocalityRedirection", "OperationFailed"]


class OperationFailed(Exception):
    """An application-level operation was rejected or timed out."""

    def __init__(self, kind: str, key: str, detail: str = ""):
        super().__init__(f"{kind}({key!r}) failed{': ' + detail if detail else ''}")
        self.kind = kind
        self.key = key
        self.detail = detail


class FrontEnd(Node):
    """Edge-server service logic: application requests → storage ops.

    ``store_client`` is any object with ``read(key)`` / ``write(key,
    value)`` generator methods returning Read/Write results — i.e. any
    protocol client from :mod:`repro.core` or :mod:`repro.protocols`.
    Protocol errors (quorum unreachable) surface to the application as
    an ``error`` field in the reply, which :class:`AppClient` converts
    into :class:`OperationFailed` — the "rejected request" of the
    paper's availability definition.
    """

    def __init__(self, sim: Simulator, network: Network, node_id: str, store_client) -> None:
        super().__init__(sim, network, node_id)
        self.store_client = store_client
        self.requests_served = 0
        self.requests_failed = 0

    def on_fe_read(self, msg: Message):
        try:
            result: ReadResult = yield from self.store_client.read(msg["obj"])
        except Exception as exc:  # noqa: BLE001 - report to the app client
            self.requests_failed += 1
            self.reply(msg, payload={"error": repr(exc)})
            return
        self.requests_served += 1
        self.reply(
            msg,
            payload={
                "obj": result.key,
                "value": result.value,
                "lc": result.lc,
                "hit": result.hit,
                "server": result.server,
            },
        )

    def on_fe_write(self, msg: Message):
        try:
            result: WriteResult = yield from self.store_client.write(
                msg["obj"], msg["value"]
            )
        except Exception as exc:  # noqa: BLE001
            self.requests_failed += 1
            self.reply(msg, payload={"error": repr(exc)})
            return
        self.requests_served += 1
        self.reply(msg, payload={"obj": result.key, "lc": result.lc})


class RedirectionPolicy:
    """Chooses the front end for each application request."""

    def pick(self, rng) -> str:
        raise NotImplementedError


class LocalityRedirection(RedirectionPolicy):
    """With probability *locality*, route to the home front end;
    otherwise to a uniformly random distant one.

    This is the paper's access-locality knob (Figure 7): locality 1.0 is
    the normal case (requests always reach the closest edge server);
    lower values model failures of the closest server or client
    mobility.
    """

    def __init__(self, home: str, all_front_ends: Sequence[str], locality: float) -> None:
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        self.home = home
        self.others: List[str] = [fe for fe in all_front_ends if fe != home]
        if home not in all_front_ends:
            raise ValueError("home front end must be among all_front_ends")
        if not self.others and locality < 1.0:
            raise ValueError("need at least two front ends for locality < 1")
        self.locality = locality

    def pick(self, rng) -> str:
        if self.locality >= 1.0 or rng.random() < self.locality:
            return self.home
        return rng.choice(self.others)


class AppClient(Node):
    """A closed-loop application client."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        redirection: RedirectionPolicy,
        request_timeout_ms: float = 30_000.0,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.redirection = redirection
        self.request_timeout_ms = request_timeout_ms

    def read(self, key: str):
        """Issue one read via a redirected front end.

        Returns an application-level :class:`ReadResult` whose latency
        includes the client↔front-end hop; raises
        :class:`OperationFailed` on rejection or timeout.
        """
        start = self.sim.now
        front_end = self.redirection.pick(self.sim.rng)
        try:
            reply = yield self.call(
                front_end, "fe_read", {"obj": key}, timeout=self.request_timeout_ms
            )
        except RpcTimeout as exc:
            raise OperationFailed("read", key, detail=str(exc))
        if "error" in reply.payload:
            raise OperationFailed("read", key, detail=reply["error"])
        return ReadResult(
            key=key,
            value=reply["value"],
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
            server=reply.get("server"),
            hit=reply.get("hit"),
        )

    def write(self, key: str, value: Any):
        """Issue one write via a redirected front end (see :meth:`read`)."""
        start = self.sim.now
        front_end = self.redirection.pick(self.sim.rng)
        try:
            reply = yield self.call(
                front_end,
                "fe_write",
                {"obj": key, "value": value},
                timeout=self.request_timeout_ms,
            )
        except RpcTimeout as exc:
            raise OperationFailed("write", key, detail=str(exc))
        if "error" in reply.payload:
            raise OperationFailed("write", key, detail=reply["error"])
        return WriteResult(
            key=key,
            value=value,
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
        )
