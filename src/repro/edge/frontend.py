"""Front ends and application clients (Figure 1's request path).

An :class:`AppClient` is an end user's machine: it sends each request to
a front-end edge server chosen by a :class:`RedirectionPolicy` and waits
for the response — a closed loop, as in the paper ("the application
client sends the next request only after it receives the response of the
current request").

A :class:`FrontEnd` is the service logic on an edge server: it owns a
protocol *service client* (DQVL, majority, ROWA, ...) and translates
application requests into storage operations.  Application clients are
unaware of the storage protocol and never contact the OQS/IQS directly,
exactly as the system model requires.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..resilience import CircuitBreaker, ResilienceConfig
from ..sim.kernel import Simulator
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node, RpcTimeout
from ..types import LogicalClock, ZERO_LC, ReadResult, WriteResult

__all__ = ["FrontEnd", "AppClient", "RedirectionPolicy", "LocalityRedirection", "OperationFailed"]

#: age-of-information bucket bounds (ms) for the degraded-read histogram
STALENESS_BUCKETS_MS = (
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_000.0,
    4_000.0, 8_000.0, 16_000.0, 32_000.0,
)


class OperationFailed(Exception):
    """An application-level operation was rejected or timed out."""

    def __init__(self, kind: str, key: str, detail: str = ""):
        super().__init__(f"{kind}({key!r}) failed{': ' + detail if detail else ''}")
        self.kind = kind
        self.key = key
        self.detail = detail


class FrontEnd(Node):
    """Edge-server service logic: application requests → storage ops.

    ``store_client`` is any object with ``read(key)`` / ``write(key,
    value)`` generator methods returning Read/Write results — i.e. any
    protocol client from :mod:`repro.core` or :mod:`repro.protocols`.
    Protocol errors (quorum unreachable) surface to the application as
    an ``error`` field in the reply, which :class:`AppClient` converts
    into :class:`OperationFailed` — the "rejected request" of the
    paper's availability definition.

    With a :class:`~repro.resilience.ResilienceConfig` attached, the
    front end degrades gracefully instead of failing hard:

    * reads behind an open circuit breaker (or whose storage attempt
      just failed) are served from the front end's *last-known* value —
      a counted, labeled **degraded read** carrying its age of
      information and the advertised staleness bound — provided the age
      is within that bound;
    * writes behind an open breaker are **shed** with a ``retry_after``
      hint instead of tying up the storage path, bounding the write
      pressure a partitioned edge keeps adding.

    With ``max_inflight`` set, the front end additionally throttles by
    admission control: once that many storage operations are executing
    concurrently, further reads are rejected outright and further writes
    shed with a ``retry_after`` hint — the per-PoP overload valve of the
    CDN scenarios.
    """

    def __init__(self, sim: Simulator, network: Network, node_id: str,
                 store_client,
                 resilience: Optional[ResilienceConfig] = None,
                 max_inflight: Optional[int] = None,
                 throttle_retry_after_ms: float = 50.0) -> None:
        super().__init__(sim, network, node_id)
        self.store_client = store_client
        self.resilience = resilience
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_inflight = max_inflight
        self.throttle_retry_after_ms = throttle_retry_after_ms
        self.inflight = 0
        self.reads_throttled = 0
        self.writes_throttled = 0
        self._read_breaker: Optional[CircuitBreaker] = None
        self._write_breaker: Optional[CircuitBreaker] = None
        if resilience is not None:
            self._read_breaker = CircuitBreaker(
                lambda: sim.now, resilience.breaker_failure_threshold,
                resilience.breaker_cooldown_ms,
            )
            self._write_breaker = CircuitBreaker(
                lambda: sim.now, resilience.breaker_failure_threshold,
                resilience.breaker_cooldown_ms,
            )
        #: per key: (value, lc, sim time the value was last confirmed
        #: against the storage layer) — the degraded-read source
        self._last_known: Dict[str, Tuple[Any, LogicalClock, float]] = {}
        self.requests_served = 0
        self.requests_failed = 0
        self.degraded_reads = 0
        self.writes_shed = 0

    def _remember(self, key: str, value: Any, lc: LogicalClock) -> None:
        self._last_known[key] = (value, lc, self.sim.now)

    def _serve_degraded(self, msg: Message, obj: str, detail: str = "") -> bool:
        """Serve *obj* from the last-known cache if within the advertised
        staleness bound; returns False when no in-bound value exists (the
        caller then reports a plain failure)."""
        entry = self._last_known.get(obj)
        if entry is None:
            return False
        value, lc, confirmed_at = entry
        age = self.sim.now - confirmed_at
        bound = self.resilience.degraded_max_staleness_ms
        if age > bound:
            return False
        self.degraded_reads += 1
        self.requests_served += 1
        obs = getattr(self.net, "obs", None)
        if obs is not None:
            obs.metrics.histogram(
                "fe.degraded_staleness_ms", STALENESS_BUCKETS_MS
            ).observe(age)
            obs.tracer.event("degraded_serve", span=msg.span_id,
                             node=self.node_id, key=obj,
                             staleness_ms=age)
        self.reply(
            msg,
            payload={
                "obj": obj,
                "value": value,
                "lc": lc,
                "hit": False,
                "server": self.node_id,
                "degraded": True,
                "staleness_ms": age,
                "staleness_bound_ms": bound,
            },
        )
        return True

    def _at_capacity(self) -> bool:
        return self.max_inflight is not None and self.inflight >= self.max_inflight

    def on_fe_read(self, msg: Message):
        obj: str = msg["obj"]
        if self._at_capacity():
            self.reads_throttled += 1
            self.requests_failed += 1
            self.reply(msg, payload={"error": "throttled: front end at capacity"})
            return
        breaker = self._read_breaker
        if breaker is not None and not breaker.allow():
            if self._serve_degraded(msg, obj):
                return
            self.requests_failed += 1
            self.reply(msg, payload={"error": "circuit open, no local value"})
            return
        self.inflight += 1
        try:
            result: ReadResult = yield from self.store_client.read(
                obj, parent=msg.span_id
            )
        except Exception as exc:  # noqa: BLE001 - report to the app client
            if breaker is not None:
                breaker.record_failure()
                if self._serve_degraded(msg, obj, detail=repr(exc)):
                    return
            self.requests_failed += 1
            self.reply(msg, payload={"error": repr(exc)})
            return
        finally:
            self.inflight -= 1
        if breaker is not None:
            breaker.record_success()
            self._remember(obj, result.value, result.lc)
        self.requests_served += 1
        self.reply(
            msg,
            payload={
                "obj": result.key,
                "value": result.value,
                "lc": result.lc,
                "hit": result.hit,
                "server": result.server,
            },
        )

    def on_fe_write(self, msg: Message):
        obj: str = msg["obj"]
        if self._at_capacity():
            self.writes_throttled += 1
            self.writes_shed += 1
            self.reply(
                msg,
                payload={
                    "shed": True,
                    "retry_after_ms": self.throttle_retry_after_ms,
                },
            )
            return
        breaker = self._write_breaker
        if breaker is not None and not breaker.allow():
            self.writes_shed += 1
            obs = getattr(self.net, "obs", None)
            if obs is not None:
                obs.tracer.event("write_shed", span=msg.span_id,
                                 node=self.node_id, key=obj)
            self.reply(
                msg,
                payload={
                    "shed": True,
                    "retry_after_ms": breaker.retry_after_ms(
                        self.resilience.shed_retry_after_ms
                    ),
                },
            )
            return
        self.inflight += 1
        try:
            result: WriteResult = yield from self.store_client.write(
                obj, msg["value"], parent=msg.span_id
            )
        except Exception as exc:  # noqa: BLE001
            if breaker is not None:
                breaker.record_failure()
            self.requests_failed += 1
            self.reply(msg, payload={"error": repr(exc)})
            return
        finally:
            self.inflight -= 1
        if breaker is not None:
            breaker.record_success()
            # A completed write is as fresh as storage truth gets: it is
            # the newest value this front end has confirmed.
            self._remember(obj, result.value, result.lc)
        self.requests_served += 1
        self.reply(msg, payload={"obj": result.key, "lc": result.lc})


class RedirectionPolicy:
    """Chooses the front end for each application request."""

    def pick(self, rng) -> str:
        raise NotImplementedError


class LocalityRedirection(RedirectionPolicy):
    """With probability *locality*, route to the home front end;
    otherwise to a uniformly random distant one.

    This is the paper's access-locality knob (Figure 7): locality 1.0 is
    the normal case (requests always reach the closest edge server);
    lower values model failures of the closest server or client
    mobility.
    """

    def __init__(self, home: str, all_front_ends: Sequence[str], locality: float) -> None:
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        self.home = home
        self.others: List[str] = [fe for fe in all_front_ends if fe != home]
        if home not in all_front_ends:
            raise ValueError("home front end must be among all_front_ends")
        if not self.others and locality < 1.0:
            raise ValueError("need at least two front ends for locality < 1")
        self.locality = locality

    def pick(self, rng) -> str:
        if self.locality >= 1.0 or rng.random() < self.locality:
            return self.home
        return rng.choice(self.others)


class AppClient(Node):
    """A closed-loop application client."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        redirection: RedirectionPolicy,
        request_timeout_ms: float = 30_000.0,
        shed_retry_budget: int = 3,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.redirection = redirection
        self.request_timeout_ms = request_timeout_ms
        #: how many times a shed write is re-submitted (after waiting out
        #: each retry-after hint) before it counts as rejected
        self.shed_retry_budget = shed_retry_budget
        self.degraded_reads_seen = 0
        self.writes_shed_seen = 0

    def read(self, key: str):
        """Issue one read via a redirected front end.

        Returns an application-level :class:`ReadResult` whose latency
        includes the client↔front-end hop; raises
        :class:`OperationFailed` on rejection or timeout.
        """
        start = self.sim.now
        front_end = self.redirection.pick(self.sim.rng)
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("read", category="op", node=self.node_id,
                               key=key, path="app", fe=front_end)
        try:
            reply = yield self.call(
                front_end, "fe_read", {"obj": key},
                timeout=self.request_timeout_ms,
                span=span.span_id if span is not None else None,
            )
        except RpcTimeout as exc:
            if span is not None:
                span.finish(status="timeout")
            raise OperationFailed("read", key, detail=str(exc))
        if "error" in reply.payload:
            if span is not None:
                span.finish(status="rejected")
            raise OperationFailed("read", key, detail=reply["error"])
        if reply.get("degraded"):
            self.degraded_reads_seen += 1
        if span is not None:
            span.finish(status="ok", hit=reply.get("hit"),
                        degraded=bool(reply.get("degraded", False)))
        return ReadResult(
            key=key,
            value=reply["value"],
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
            server=reply.get("server"),
            hit=reply.get("hit"),
            degraded=bool(reply.get("degraded", False)),
            staleness_ms=reply.get("staleness_ms"),
            staleness_bound_ms=reply.get("staleness_bound_ms"),
        )

    def write(self, key: str, value: Any):
        """Issue one write via a redirected front end (see :meth:`read`).

        A throttling front end may *shed* the write with a retry-after
        hint; the client waits it out and re-submits, up to
        ``shed_retry_budget`` times, before reporting the rejection.
        """
        start = self.sim.now
        front_end = self.redirection.pick(self.sim.rng)
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("write", category="op", node=self.node_id,
                               key=key, path="app", fe=front_end)
        sheds = 0
        while True:
            try:
                reply = yield self.call(
                    front_end,
                    "fe_write",
                    {"obj": key, "value": value},
                    timeout=self.request_timeout_ms,
                    span=span.span_id if span is not None else None,
                )
            except RpcTimeout as exc:
                if span is not None:
                    span.finish(status="timeout")
                raise OperationFailed("write", key, detail=str(exc))
            if "shed" in reply.payload:
                self.writes_shed_seen += 1
                sheds += 1
                if sheds > self.shed_retry_budget:
                    if span is not None:
                        span.finish(status="rejected", sheds=sheds)
                    raise OperationFailed(
                        "write", key,
                        detail=f"shed {sheds} times (throttled)",
                    )
                yield self.sim.sleep(reply["retry_after_ms"])
                continue
            break
        if "error" in reply.payload:
            if span is not None:
                span.finish(status="rejected")
            raise OperationFailed("write", key, detail=reply["error"])
        if span is not None:
            span.finish(status="ok", sheds=sheds)
        return WriteResult(
            key=key,
            value=value,
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
        )
