"""The edge-CDN scenario family: multi-region PoPs, aggregate users.

The paper's north star is "edge services serving millions of users";
its prototype experiment drives each edge server with a handful of
closed-loop clients.  This module closes that gap with scenarios built
from three scalable pieces:

* a **multi-PoP topology** — ``regions × pops_per_region`` edge servers
  over :class:`~repro.edge.topology.EdgeTopology`, PoPs within a region
  at metro delay and regions at WAN delay;
* **aggregate client populations**
  (:mod:`repro.workload.population`) — one open-loop arrival process
  per region (Poisson or MMPP, modulated by diurnal / flash-crowd
  profiles) feeding a bounded issuer pool per PoP through a front-end
  load balancer, so a million modeled users costs thousands of kernel
  events per simulated second;
* a **scalable key universe** — Zipf object popularity over a lazily
  generated population of ``num_objects`` keys spread across
  ``num_volumes`` volumes (DQVL-family protocols lease per volume).

Determinism: every random draw comes from dedicated string-seeded
streams (``cdn-arrivals:{seed}:r{r}``, ``cdn-ops:{seed}:r{r}``), the
dispatcher and the pools are FIFO, and :meth:`CdnResult.to_json` is a
canonical serialisation — a same-seed double run is byte-identical,
which the CI smoke locks in.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..consistency.history import History
from ..core.config import DqvlConfig
from ..core.volumes import HashVolumeMap
from ..obs import Observability, attribute_trace, latency_budget
from ..resilience import derive_qrpc_timeouts
from ..sim.kernel import Simulator
from ..workload.generators import BernoulliOpStream, KeyUniverse, ZipfKeyChooser
from ..workload.population import (
    ArrivalProcess,
    CompositeProfile,
    DiurnalProfile,
    FlashCrowdProfile,
    IssuerPool,
    MmppArrivals,
    PoissonArrivals,
    PopulationStats,
    RateProfile,
    drive_population,
    pick_least_loaded,
    pick_round_robin,
)
from ..harness.metrics import HistorySummary, summarize
from .deployments import PROTOCOL_DEPLOYERS, Deployment
from .frontend import AppClient, LocalityRedirection
from .topology import EdgeTopology, EdgeTopologyConfig

__all__ = ["CdnScenarioConfig", "CdnResult", "run_cdn"]

_BALANCERS = {
    "round_robin": pick_round_robin,
    "least_loaded": pick_least_loaded,
}


@dataclass
class CdnScenarioConfig:
    """One edge-CDN scenario (population model + topology + protocol).

    ``users`` is the number of *modeled* users; each issues
    ``ops_per_user_per_s`` requests per second, and only the product
    (the aggregate arrival rate) affects simulation cost.  The
    population is split evenly across regions.
    """

    protocol: str = "dqvl"
    seed: int = 0
    # -- geometry --------------------------------------------------------
    regions: int = 2
    pops_per_region: int = 2
    intra_region_ms: float = 20.0
    jitter_ms: float = 0.0
    # -- population ------------------------------------------------------
    users: int = 100_000
    ops_per_user_per_s: float = 0.01
    write_ratio: float = 0.05
    #: arrival model: "poisson" | "mmpp"
    arrivals: str = "poisson"
    mmpp_burst_multiplier: float = 4.0
    mmpp_dwell_normal_ms: float = 10_000.0
    mmpp_dwell_burst_ms: float = 2_000.0
    #: sinusoidal day/night swing (0 = off) and its compressed period
    diurnal_amplitude: float = 0.0
    diurnal_period_ms: float = 60_000.0
    diurnal_peak_frac: float = 0.5
    #: flash crowd (None = off) hitting every region simultaneously
    flash_start_ms: Optional[float] = None
    flash_peak_multiplier: float = 5.0
    flash_ramp_ms: float = 500.0
    flash_hold_ms: float = 1_000.0
    flash_decay_ms: float = 1_000.0
    # -- content ---------------------------------------------------------
    num_objects: int = 100_000
    num_volumes: int = 1_000
    zipf_s: float = 0.9
    # -- service capacity ------------------------------------------------
    issuers_per_pop: int = 8
    queue_limit: int = 256
    #: per-PoP front-end admission cap (None = unthrottled)
    fe_max_inflight: Optional[int] = None
    balance: str = "least_loaded"
    request_timeout_ms: float = 30_000.0
    # -- horizon ---------------------------------------------------------
    horizon_ms: float = 2_000.0
    #: extra simulated time allowed for queued work to drain
    drain_ms: float = 30_000.0
    # -- instrumentation -------------------------------------------------
    trace: bool = False
    deploy_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_DEPLOYERS:
            raise KeyError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {sorted(PROTOCOL_DEPLOYERS)}"
            )
        if self.regions < 1 or self.pops_per_region < 1:
            raise ValueError("need at least one region and one PoP per region")
        if self.users < 1:
            raise ValueError("population must have at least one user")
        if self.ops_per_user_per_s <= 0:
            raise ValueError("per-user rate must be positive")
        if self.arrivals not in ("poisson", "mmpp"):
            raise ValueError("arrivals must be 'poisson' or 'mmpp'")
        if self.balance not in _BALANCERS:
            raise ValueError(f"balance must be one of {sorted(_BALANCERS)}")
        if self.num_objects < 1 or self.num_volumes < 1:
            raise ValueError("need at least one object and one volume")
        if self.issuers_per_pop < 1:
            raise ValueError("need at least one issuer per PoP")
        if self.horizon_ms <= 0:
            raise ValueError("horizon must be positive")

    @property
    def num_pops(self) -> int:
        return self.regions * self.pops_per_region

    def region_users(self, r: int) -> int:
        """Modeled users homed in region *r* (even split, remainder to
        the lowest-numbered regions)."""
        base, extra = divmod(self.users, self.regions)
        return base + (1 if r < extra else 0)


@dataclass
class CdnResult:
    """Outcome of one CDN scenario run."""

    config: CdnScenarioConfig
    summary: HistorySummary
    #: merged population counters across regions
    stats: PopulationStats
    #: per-region population counters, region order
    region_stats: List[PopulationStats]
    #: front-end counters summed over PoPs
    fe_counters: Dict[str, int]
    events_processed: int
    sim_time_ms: float
    history: Optional[History] = None
    deployment: Optional[Deployment] = None
    obs: Optional[Observability] = None
    #: phase-budget table (PR-8 attribution), present when trace was on
    budget: Optional[Dict[str, Any]] = None

    @property
    def events_per_arrival(self) -> float:
        return self.events_processed / self.stats.arrivals if self.stats.arrivals else 0.0

    def to_json_obj(self) -> Dict[str, Any]:
        """Canonical reduced form (no sim objects): the byte-compare and
        sweep-cache payload."""
        return {
            "config": dataclasses.asdict(self.config),
            "summary": dataclasses.asdict(self.summary),
            "stats": self.stats.to_json_obj(),
            "region_stats": [s.to_json_obj() for s in self.region_stats],
            "fe_counters": {k: self.fe_counters[k] for k in sorted(self.fe_counters)},
            "events_processed": self.events_processed,
            "sim_time_ms": self.sim_time_ms,
            "budget": self.budget,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_obj(), sort_keys=True,
                          separators=(",", ":"), default=repr) + "\n"


def _build_profile(config: CdnScenarioConfig) -> Optional[RateProfile]:
    parts: List[RateProfile] = []
    if config.diurnal_amplitude > 0:
        parts.append(DiurnalProfile(
            period_ms=config.diurnal_period_ms,
            amplitude=config.diurnal_amplitude,
            peak_frac=config.diurnal_peak_frac,
        ))
    if config.flash_start_ms is not None:
        parts.append(FlashCrowdProfile(
            start_ms=config.flash_start_ms,
            peak_multiplier=config.flash_peak_multiplier,
            ramp_ms=config.flash_ramp_ms,
            hold_ms=config.flash_hold_ms,
            decay_ms=config.flash_decay_ms,
        ))
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return CompositeProfile(parts)


def _build_arrivals(config: CdnScenarioConfig, region: int,
                    rate_per_s: float) -> ArrivalProcess:
    rng = random.Random(f"cdn-arrivals:{config.seed}:r{region}")
    profile = _build_profile(config)
    if config.arrivals == "mmpp":
        return MmppArrivals(
            rng, rate_per_s,
            burst_multiplier=config.mmpp_burst_multiplier,
            mean_dwell_normal_ms=config.mmpp_dwell_normal_ms,
            mean_dwell_burst_ms=config.mmpp_dwell_burst_ms,
            profile=profile,
        )
    return PoissonArrivals(rng, rate_per_s, profile=profile)


def _deploy(config: CdnScenarioConfig, topology: EdgeTopology) -> Deployment:
    deploy_kwargs = dict(config.deploy_kwargs)
    if config.protocol in ("dqvl", "basic_dq") and "config" not in deploy_kwargs:
        initial, cap = derive_qrpc_timeouts(topology.config)
        deploy_kwargs["config"] = DqvlConfig(
            proactive_renewal=(config.protocol == "dqvl"),
            volume_map=HashVolumeMap(config.num_volumes),
            qrpc_initial_timeout_ms=initial,
            qrpc_max_timeout_ms=cap,
        )
    return PROTOCOL_DEPLOYERS[config.protocol](topology, **deploy_kwargs)


def run_cdn(config: CdnScenarioConfig) -> CdnResult:
    """Execute one CDN scenario.

    Per region: one arrival process at ``region_users × rate`` drives a
    balancer over the region's PoP issuer pools; each pool's issuers are
    :class:`~repro.edge.frontend.AppClient`\\ s homed at their PoP's
    front end, so every request crosses the client↔front-end link and
    the front end's protocol service client — the full Figure 1 path at
    population scale.
    """
    sim = Simulator(seed=config.seed)
    topo_config = EdgeTopologyConfig(
        num_edges=config.num_pops,
        num_clients=config.num_pops,
        regions=config.regions,
        intra_region_ms=config.intra_region_ms,
        jitter_ms=config.jitter_ms,
    )
    topology = EdgeTopology(sim, topo_config)
    deployment = _deploy(config, topology)

    obs: Optional[Observability] = None
    if config.trace:
        obs = Observability(sim).install(topology.network)

    if config.fe_max_inflight is not None:
        for fe in deployment.front_ends:
            fe.max_inflight = config.fe_max_inflight

    history = History()
    universe = KeyUniverse(config.num_objects)
    balancer = _BALANCERS[config.balance]
    region_stats: List[PopulationStats] = []
    dispatchers = []
    all_pools: List[IssuerPool] = []
    for r in range(config.regions):
        stats = PopulationStats()
        region_stats.append(stats)
        pools = []
        for i in range(config.pops_per_region):
            p = r * config.pops_per_region + i  # global PoP index
            clients = []
            for j in range(config.issuers_per_pop):
                node_id = f"cdn{p}u{j}"
                app = AppClient(
                    sim, topology.network, node_id,
                    LocalityRedirection(
                        home=deployment.front_end_ids[p],
                        all_front_ends=deployment.front_end_ids,
                        locality=1.0,
                    ),
                    request_timeout_ms=config.request_timeout_ms,
                )
                topology.place_on_client(node_id, p)
                clients.append(app)
            pools.append(IssuerPool(
                sim, clients, history,
                queue_limit=config.queue_limit,
                name=f"pop{p}", stats=stats,
            ))
        all_pools.extend(pools)
        rate_per_s = config.region_users(r) * config.ops_per_user_per_s
        arrivals = _build_arrivals(config, r, rate_per_s)
        stream = BernoulliOpStream(
            random.Random(f"cdn-ops:{config.seed}:r{r}"),
            ZipfKeyChooser(universe, s=config.zipf_s),
            config.write_ratio,
            label=f"r{r}-",
        )
        dispatchers.append(sim.spawn(
            drive_population(
                sim, arrivals, stream, pools, config.horizon_ms,
                balancer=balancer,
            ),
            name=f"region{r}",
        ))

    # DQVL renewal keepers tick forever, so the run must be bounded; the
    # horizon stops new arrivals and `drain_ms` bounds how long queued
    # work may take to finish.  Drain in slices and stop at the first
    # quiet point so a long drain allowance costs nothing when queues
    # are short.
    def _pending():
        return [d for d in dispatchers if not d.done] + [
            proc for pool in all_pools for proc in pool.processes if not proc.done
        ]

    deadline = config.horizon_ms + config.drain_ms
    sim.run(until=config.horizon_ms)
    while _pending() and sim.now < deadline:
        sim.run(until=min(sim.now + 500.0, deadline))
    unfinished = _pending()
    if unfinished:
        names = ", ".join(proc.name for proc in unfinished[:5])
        raise RuntimeError(
            f"cdn scenario hit the time limit with work pending ({names}); "
            "raise drain_ms or lower the arrival rate"
        )

    budget: Optional[Dict[str, Any]] = None
    if obs is not None:
        obs.finalize(topology.network, deployment)
        budget = latency_budget(attribute_trace(obs.tracer)).to_json_obj()

    merged = PopulationStats()
    for stats in region_stats:
        merged = merged.merged(stats)
    fe_counters = {
        "requests_served": sum(fe.requests_served for fe in deployment.front_ends),
        "requests_failed": sum(fe.requests_failed for fe in deployment.front_ends),
        "writes_shed": sum(fe.writes_shed for fe in deployment.front_ends),
        "reads_throttled": sum(fe.reads_throttled for fe in deployment.front_ends),
        "writes_throttled": sum(fe.writes_throttled for fe in deployment.front_ends),
        "degraded_reads": sum(fe.degraded_reads for fe in deployment.front_ends),
    }
    return CdnResult(
        config=config,
        summary=summarize(history),
        stats=merged,
        region_stats=region_stats,
        fe_counters=fe_counters,
        events_processed=sim.events_processed,
        sim_time_ms=sim.now,
        history=history,
        deployment=deployment,
        obs=obs,
        budget=budget,
    )
