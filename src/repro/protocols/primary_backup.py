"""Primary/backup replication (Alsberg & Day).

One designated **primary** orders all operations; **backups** hold
replicas for durability and read-only failover is *not* modelled (a
backup serving reads without coordination would break the consistency
guarantee this baseline is meant to represent).

* **read** — forwarded to the primary; one round trip to wherever the
  primary lives (a WAN hop for most edge clients — the reason DQVL beats
  this baseline by >6x on read latency in Figure 6(a)).
* **write** — one round trip to the primary.  The primary applies the
  write, acknowledges, and propagates the update to the backups in the
  background.  This matches the paper's accounting ("only one round trip
  is needed for primary/backup and ROWA") and the classic primary-copy
  scheme in which the primary is the single source of truth and the
  backups trail it.

Because the primary serializes everything, clients observe atomic (and
therefore regular) semantics while the primary is reachable; when it is
not, the service is simply unavailable (no failover protocol — the paper
treats primary-election machinery as out of scope and its availability
model charges primary/backup accordingly).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..sim.kernel import Simulator
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node, RpcTimeout
from ..types import ZERO_LC, LogicalClock, ReadResult, WriteResult
from .base import StoreServer

__all__ = [
    "PrimaryServer",
    "BackupServer",
    "PrimaryBackupClient",
    "PrimaryBackupCluster",
    "build_primary_backup_cluster",
]


class PrimaryServer(StoreServer):
    """The primary: orders writes, serves reads, feeds the backups."""

    def __init__(self, sim, network, node_id, backup_ids: Sequence[str], clock=None) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.backup_ids = list(backup_ids)
        self._counter = 0
        self.updates_propagated = 0

    def on_pb_read(self, msg: Message) -> None:
        self.reads_served += 1
        value, lc = self.store.get(msg["obj"])
        self.reply(msg, payload={"obj": msg["obj"], "value": value, "lc": lc})

    def on_pb_write(self, msg: Message) -> None:
        self.writes_served += 1
        self._counter += 1
        lc = LogicalClock(self._counter, self.node_id)
        self.store.apply(msg["obj"], msg["value"], lc)
        self.reply(msg, payload={"obj": msg["obj"], "lc": lc})
        # Background propagation: one update message per backup, no ack
        # awaited (the primary remains the authority for reads).
        for backup in self.backup_ids:
            self.updates_propagated += 1
            self.send(backup, "pb_sync", {"obj": msg["obj"], "value": msg["value"], "lc": lc})


class BackupServer(StoreServer):
    """A backup: applies the primary's update stream."""

    def on_pb_sync(self, msg: Message) -> None:
        self.store.apply(msg["obj"], msg["value"], msg["lc"])


class PrimaryBackupClient(Node):
    """Routes every operation to the primary, with bounded retries."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        primary_id: str,
        rpc_timeout_ms: float = 2000.0,
        max_attempts: Optional[int] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.primary_id = primary_id
        self.rpc_timeout_ms = rpc_timeout_ms
        self.max_attempts = max_attempts

    def _call_primary(self, kind: str, payload: dict, span=None):
        attempts = 0
        span_id = span.span_id if span is not None else None
        while True:
            attempts += 1
            try:
                reply = yield self.call(
                    self.primary_id, kind, payload,
                    timeout=self.rpc_timeout_ms, span=span_id,
                )
                return reply
            except RpcTimeout:
                if self.max_attempts is not None and attempts >= self.max_attempts:
                    raise

    def read(self, obj: str, parent=None):
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("read", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            reply = yield from self._call_primary("pb_read", {"obj": obj},
                                                  span=span)
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        if span is not None:
            span.finish(status="ok", server=reply.src)
        return ReadResult(
            key=obj,
            value=reply["value"],
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
            server=reply.src,
        )

    def write(self, obj: str, value: Any, parent=None):
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("write", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            reply = yield from self._call_primary(
                "pb_write", {"obj": obj, "value": value}, span=span
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        if span is not None:
            span.finish(status="ok", lc=str(reply["lc"]))
        return WriteResult(
            key=obj,
            value=value,
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
        )


class PrimaryBackupCluster:
    """Handles to a primary/backup deployment."""

    def __init__(self, sim, network, primary, backups, rpc_timeout_ms, max_attempts) -> None:
        self.sim = sim
        self.network = network
        self.primary = primary
        self.backups = backups
        self.rpc_timeout_ms = rpc_timeout_ms
        self.max_attempts = max_attempts

    @property
    def servers(self):
        return [self.primary] + list(self.backups)

    def client(self, node_id: str, prefer: Optional[str] = None) -> PrimaryBackupClient:
        # `prefer` is accepted for interface uniformity; primary/backup
        # cannot exploit locality — every request goes to the primary,
        # which is exactly the behaviour Figure 7(b) demonstrates.
        return PrimaryBackupClient(
            self.sim, self.network, node_id, self.primary.node_id,
            rpc_timeout_ms=self.rpc_timeout_ms, max_attempts=self.max_attempts,
        )


def build_primary_backup_cluster(
    sim: Simulator,
    network: Network,
    server_ids: Sequence[str],
    primary_id: Optional[str] = None,
    rpc_timeout_ms: float = 2000.0,
    max_attempts: Optional[int] = None,
) -> PrimaryBackupCluster:
    """Build a primary/backup deployment; the first id is the primary
    unless *primary_id* says otherwise."""
    server_ids = list(server_ids)
    primary_id = primary_id or server_ids[0]
    backup_ids = [s for s in server_ids if s != primary_id]
    primary = PrimaryServer(sim, network, primary_id, backup_ids)
    backups = [BackupServer(sim, network, node_id) for node_id in backup_ids]
    return PrimaryBackupCluster(sim, network, primary, backups, rpc_timeout_ms, max_attempts)
