"""ROWA-Async: epidemic replication with local reads and writes.

The weakly consistent baseline (Bayou-style).  Both operations complete
at the client's nearest replica in a single LAN round trip:

* **read** — served from the local replica's current state, stale or not;
* **write** — applied locally, acknowledged immediately, then propagated
  asynchronously: an eager best-effort push to every peer, backed by
  periodic **anti-entropy** sessions (push-pull digests with a random
  peer) that heal losses and partitions.

This is the protocol family whose latency/availability DQVL aims to
match — *without* inheriting its weakness: reads here can return stale
data with **no staleness bound whatsoever**, and the consistency checker
(:mod:`repro.consistency`) demonstrates concrete regular-semantics
violations under cross-node access (see the consistency-audit example).

Conflict resolution is last-writer-wins on (local-clock, node-id)
timestamps, as in the paper's epidemic references.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.kernel import Simulator
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node, RpcTimeout
from ..types import ZERO_LC, LogicalClock, ReadResult, WriteResult
from .base import StoreServer, lamport_from_clock

__all__ = [
    "RowaAsyncServer",
    "RowaAsyncClient",
    "RowaAsyncCluster",
    "build_rowa_async_cluster",
]


class RowaAsyncServer(StoreServer):
    """An epidemic replica: local apply, eager push, anti-entropy."""

    def __init__(
        self,
        sim,
        network,
        node_id,
        peer_ids: Sequence[str],
        gossip_interval_ms: float = 1000.0,
        eager_push: bool = True,
        clock=None,
    ) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.peer_ids = [p for p in peer_ids if p != node_id]
        self.gossip_interval_ms = gossip_interval_ms
        self.eager_push = eager_push
        self._counter = 0
        self.gossip_rounds = 0
        self.updates_pushed = 0
        if self.peer_ids and gossip_interval_ms > 0:
            # Desynchronise gossip across replicas.
            self.after(self.sim.rng.uniform(0, gossip_interval_ms), self._gossip_tick)

    # -- client operations ---------------------------------------------------

    def on_ra_read(self, msg: Message) -> None:
        self.reads_served += 1
        value, lc = self.store.get(msg["obj"])
        self.reply(msg, payload={"obj": msg["obj"], "value": value, "lc": lc})

    def on_ra_write(self, msg: Message) -> None:
        self.writes_served += 1
        self._counter += 1
        lc = lamport_from_clock(self.clock.now(), self.node_id)
        _, current = self.store.get(msg["obj"])
        if lc <= current:
            lc = current.next(self.node_id)
        self.store.apply(msg["obj"], msg["value"], lc)
        self.reply(msg, payload={"obj": msg["obj"], "lc": lc})
        if self.eager_push:
            for peer in self.peer_ids:
                self.updates_pushed += 1
                self.send(peer, "ra_update", {"obj": msg["obj"], "value": msg["value"], "lc": lc})

    # -- epidemic propagation ---------------------------------------------------

    def on_ra_update(self, msg: Message) -> None:
        self.store.apply(msg["obj"], msg["value"], msg["lc"])

    def _gossip_tick(self) -> None:
        if self.peer_ids:
            peer = self.sim.rng.choice(self.peer_ids)
            self.gossip_rounds += 1
            digest = {obj: lc for obj, (value, lc) in self.store.items()}
            self.send(peer, "ra_digest", {"digest": digest})
        self.after(self.gossip_interval_ms, self._gossip_tick)

    def on_ra_digest(self, msg: Message) -> None:
        """Anti-entropy, responder side: push what the initiator lacks and
        ask for what we lack."""
        digest: Dict[str, LogicalClock] = msg["digest"]
        want: List[str] = []
        for obj, their_lc in digest.items():
            _, ours = self.store.get(obj)
            if their_lc > ours:
                want.append(obj)
        for obj, (value, lc) in list(self.store.items()):
            if lc > digest.get(obj, ZERO_LC):
                self.updates_pushed += 1
                self.send(msg.src, "ra_update", {"obj": obj, "value": value, "lc": lc})
        if want:
            self.send(msg.src, "ra_pull", {"objects": want})

    def on_ra_pull(self, msg: Message) -> None:
        for obj in msg["objects"]:
            value, lc = self.store.get(obj)
            if lc > ZERO_LC or obj in self.store:
                self.updates_pushed += 1
                self.send(msg.src, "ra_update", {"obj": obj, "value": value, "lc": lc})


class RowaAsyncClient(Node):
    """Reads and writes the nearest replica; fails over on timeout.

    Any replica can serve any operation in ROWA-Async — that is where
    its availability comes from — so after a timeout the client retries
    against a uniformly random *other* replica when ``fallback_replicas``
    are configured.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        replica_id: str,
        rpc_timeout_ms: float = 2000.0,
        max_attempts: Optional[int] = None,
        fallback_replicas: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.replica_id = replica_id
        self.rpc_timeout_ms = rpc_timeout_ms
        self.max_attempts = max_attempts
        self.fallback_replicas = list(fallback_replicas or [])

    def _call_replica(self, kind: str, payload: dict, span=None):
        attempts = 0
        target = self.replica_id
        span_id = span.span_id if span is not None else None
        while True:
            attempts += 1
            try:
                reply = yield self.call(
                    target, kind, payload,
                    timeout=self.rpc_timeout_ms, span=span_id,
                )
                return reply
            except RpcTimeout:
                if self.max_attempts is not None and attempts >= self.max_attempts:
                    raise
                others = [r for r in self.fallback_replicas if r != target]
                if others:
                    target = self.sim.rng.choice(others)

    def read(self, obj: str, parent=None):
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("read", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            reply = yield from self._call_replica("ra_read", {"obj": obj},
                                                  span=span)
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        if span is not None:
            span.finish(status="ok", server=reply.src)
        return ReadResult(
            key=obj,
            value=reply["value"],
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
            server=reply.src,
        )

    def write(self, obj: str, value: Any, parent=None):
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("write", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            reply = yield from self._call_replica(
                "ra_write", {"obj": obj, "value": value}, span=span
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        if span is not None:
            span.finish(status="ok", server=reply.src)
        return WriteResult(
            key=obj,
            value=value,
            lc=reply["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
        )


class RowaAsyncCluster:
    """Handles to an epidemic deployment."""

    def __init__(self, sim, network, servers, rpc_timeout_ms, max_attempts) -> None:
        self.sim = sim
        self.network = network
        self.servers = servers
        self.rpc_timeout_ms = rpc_timeout_ms
        self.max_attempts = max_attempts

    def client(self, node_id: str, prefer: Optional[str] = None) -> RowaAsyncClient:
        replica = prefer or self.servers[0].node_id
        return RowaAsyncClient(
            self.sim, self.network, node_id, replica,
            rpc_timeout_ms=self.rpc_timeout_ms, max_attempts=self.max_attempts,
            fallback_replicas=[s.node_id for s in self.servers],
        )

    def server(self, node_id: str) -> RowaAsyncServer:
        return next(s for s in self.servers if s.node_id == node_id)


def build_rowa_async_cluster(
    sim: Simulator,
    network: Network,
    server_ids: Sequence[str],
    gossip_interval_ms: float = 1000.0,
    eager_push: bool = True,
    rpc_timeout_ms: float = 2000.0,
    max_attempts: Optional[int] = None,
) -> RowaAsyncCluster:
    """Build an epidemic (ROWA-Async) deployment over *server_ids*."""
    server_ids = list(server_ids)
    servers = [
        RowaAsyncServer(
            sim, network, node_id, server_ids,
            gossip_interval_ms=gossip_interval_ms, eager_push=eager_push,
        )
        for node_id in server_ids
    ]
    return RowaAsyncCluster(sim, network, servers, rpc_timeout_ms, max_attempts)
