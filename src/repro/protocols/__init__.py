"""Baseline replication protocols the paper compares DQVL against.

All baselines run on the same simulation substrate and expose the same
client interface (``read``/``write`` generators), so the harness can
swap protocols under identical workloads and topologies:

* :mod:`~repro.protocols.primary_backup` — one primary orders everything;
* :mod:`~repro.protocols.majority` — quorum register, one-round reads and
  two-round writes (also hosts grid-quorum deployments via a custom
  quorum system);
* :mod:`~repro.protocols.rowa` — synchronous read-one/write-all;
* :mod:`~repro.protocols.rowa_async` — epidemic, weakly consistent.
"""

from .base import StoreServer, VersionedStore, lamport_from_clock
from .majority import MajorityClient, MajorityCluster, MajorityServer, build_majority_cluster
from .primary_backup import (
    BackupServer,
    PrimaryBackupClient,
    PrimaryBackupCluster,
    PrimaryServer,
    build_primary_backup_cluster,
)
from .rowa import RowaClient, RowaCluster, RowaServer, build_rowa_cluster
from .rowa_async import (
    RowaAsyncClient,
    RowaAsyncCluster,
    RowaAsyncServer,
    build_rowa_async_cluster,
)

__all__ = [
    "VersionedStore",
    "StoreServer",
    "lamport_from_clock",
    "MajorityServer",
    "MajorityClient",
    "MajorityCluster",
    "build_majority_cluster",
    "PrimaryServer",
    "BackupServer",
    "PrimaryBackupClient",
    "PrimaryBackupCluster",
    "build_primary_backup_cluster",
    "RowaServer",
    "RowaClient",
    "RowaCluster",
    "build_rowa_cluster",
    "RowaAsyncServer",
    "RowaAsyncClient",
    "RowaAsyncCluster",
    "build_rowa_async_cluster",
]
