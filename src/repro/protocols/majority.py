"""Majority-quorum replicated register (Gifford / Thomas).

The classic strongly consistent baseline the paper compares against:

* **read** — QRPC to a read quorum (majority by default); return the
  reply with the highest logical clock.  One wide-area round trip.
* **write** — QRPC to a read quorum to learn the highest logical clock,
  advance it, then QRPC the value to a write quorum.  Two round trips —
  the same write path as DQVL's IQS interaction, which is why Figure 6(b)
  shows their write latencies converging.

A single round-trip read gives *regular* semantics (a concurrent read
may see either side of an in-flight write at different replicas, but
always some completed-or-concurrent write).  Atomic semantics would need
a read write-back phase; the paper targets regular semantics throughout,
so none is performed here.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..quorum.qrpc import READ, WRITE, qrpc
from ..quorum.spec import QuorumSpec, SpecLike
from ..quorum.system import QuorumSystem
from ..sim.kernel import Simulator
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node
from ..types import ZERO_LC, LogicalClock, ReadResult, WriteResult
from .base import StoreServer

__all__ = ["MajorityServer", "MajorityClient", "MajorityCluster", "build_majority_cluster"]


class MajorityServer(StoreServer):
    """A quorum replica: versioned store plus logical-clock bookkeeping."""

    def __init__(self, sim, network, node_id, clock=None) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.logical_clock = ZERO_LC

    def on_mq_lc(self, msg: Message) -> None:
        """Serve the highest logical clock this replica has applied."""
        self.reply(msg, payload={"lc": self.logical_clock})

    def on_mq_read(self, msg: Message) -> None:
        self.reads_served += 1
        value, lc = self.store.get(msg["obj"])
        self.reply(msg, payload={"obj": msg["obj"], "value": value, "lc": lc})

    def on_mq_write(self, msg: Message) -> None:
        self.writes_served += 1
        lc: LogicalClock = msg["lc"]
        self.store.apply(msg["obj"], msg["value"], lc)
        self.logical_clock = self.logical_clock.merge(lc)
        self.reply(msg, payload={"obj": msg["obj"], "lc": lc})


class MajorityClient(Node):
    """Client of the majority-quorum register."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        system: QuorumSystem,
        qrpc_config: Optional[Dict[str, Any]] = None,
        prefer: Optional[str] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.system = system
        self.qrpc_config = dict(qrpc_config or {})
        self.prefer = prefer
        self._lc_seen = ZERO_LC

    def _config(self) -> Dict[str, Any]:
        cfg = dict(self.qrpc_config)
        cfg.setdefault("prefer", self.prefer)
        return cfg

    def read(self, obj: str, parent=None):
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("read", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            replies = yield from qrpc(
                self, self.system, READ, "mq_read", {"obj": obj},
                span=span, **self._config()
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        best = max(replies.values(), key=lambda r: r["lc"])
        self._lc_seen = self._lc_seen.merge(best["lc"])
        if span is not None:
            span.finish(status="ok", server=best.src)
        return ReadResult(
            key=obj,
            value=best["value"],
            lc=best["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
            server=best.src,
        )

    def write(self, obj: str, value: Any, parent=None):
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("write", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            replies = yield from qrpc(self, self.system, READ, "mq_lc", {},
                                      span=span, **self._config())
            highest = max((r["lc"] for r in replies.values()), default=ZERO_LC)
            lc = max(highest, self._lc_seen).next(self.node_id)
            self._lc_seen = lc
            yield from qrpc(
                self, self.system, WRITE, "mq_write",
                {"obj": obj, "value": value, "lc": lc},
                span=span, **self._config(),
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        if span is not None:
            span.finish(status="ok", lc=str(lc))
        return WriteResult(
            key=obj,
            value=value,
            lc=lc,
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
        )


class MajorityCluster:
    """Handles to a majority-quorum deployment."""

    def __init__(self, sim, network, servers, system, qrpc_config) -> None:
        self.sim = sim
        self.network = network
        self.servers = servers
        self.system = system
        self.qrpc_config = qrpc_config

    def client(self, node_id: str, prefer: Optional[str] = None) -> MajorityClient:
        return MajorityClient(
            self.sim, self.network, node_id, self.system,
            qrpc_config=self.qrpc_config, prefer=prefer,
        )

    def server(self, node_id: str) -> MajorityServer:
        return next(s for s in self.servers if s.node_id == node_id)


def build_majority_cluster(
    sim: Simulator,
    network: Network,
    server_ids: Sequence[str],
    system: Optional[QuorumSystem] = None,
    qrpc_config: Optional[Dict[str, Any]] = None,
    spec: Optional[SpecLike] = None,
) -> MajorityCluster:
    """Build a majority-quorum register over *server_ids*.

    Pass a *spec* (e.g. ``"grid:3x3"``) or a prebuilt *system* to reuse
    the same server and client logic with a different quorum
    construction; *system* wins when both are given.
    """
    if system is None:
        system = QuorumSpec.parse(spec or "majority").build(server_ids)
    servers = [MajorityServer(sim, network, node_id) for node_id in server_ids]
    return MajorityCluster(sim, network, servers, system, dict(qrpc_config or {}))
