"""Synchronous Read-One/Write-All (ROWA).

* **read** — one round trip to any single replica (the client's nearest,
  via ``prefer``).  Because every completed write reached *every*
  replica synchronously, any single replica is up to date.
* **write** — the value goes to **all** replicas in parallel; the write
  completes when every replica has acknowledged.  One round trip of
  latency, but unavailability of a single replica blocks all writes —
  the classic ROWA trade-off (Figure 8's write-availability cliff).

Writes are stamped with a logical clock derived from the writer's local
real-time clock (see :mod:`repro.protocols.base` for why this preserves
regular semantics under the experiments' drift bounds).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..quorum.qrpc import READ, WRITE, qrpc
from ..quorum.rowa import RowaQuorumSystem
from ..quorum.spec import QuorumSpec
from ..sim.kernel import Simulator
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node
from ..types import ZERO_LC, LogicalClock, ReadResult, WriteResult
from .base import StoreServer, lamport_from_clock

__all__ = ["RowaServer", "RowaClient", "RowaCluster", "build_rowa_cluster"]


class RowaServer(StoreServer):
    """A ROWA replica."""

    def on_rowa_read(self, msg: Message) -> None:
        self.reads_served += 1
        value, lc = self.store.get(msg["obj"])
        self.reply(msg, payload={"obj": msg["obj"], "value": value, "lc": lc})

    def on_rowa_write(self, msg: Message) -> None:
        self.writes_served += 1
        self.store.apply(msg["obj"], msg["value"], msg["lc"])
        self.reply(msg, payload={"obj": msg["obj"], "lc": msg["lc"]})


class RowaClient(Node):
    """Reads one replica; writes all replicas synchronously."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        system: RowaQuorumSystem,
        qrpc_config: Optional[Dict[str, Any]] = None,
        prefer: Optional[str] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.system = system
        self.qrpc_config = dict(qrpc_config or {})
        self.prefer = prefer
        self._lc_floor = ZERO_LC

    def _config(self) -> Dict[str, Any]:
        cfg = dict(self.qrpc_config)
        cfg.setdefault("prefer", self.prefer)
        return cfg

    def _next_lc(self) -> LogicalClock:
        """Real-time-derived clock, forced monotonic per client."""
        lc = lamport_from_clock(self.clock.now(), self.node_id)
        if lc <= self._lc_floor:
            lc = self._lc_floor.next(self.node_id)
        self._lc_floor = lc
        return lc

    def read(self, obj: str, parent=None):
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("read", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            replies = yield from qrpc(
                self, self.system, READ, "rowa_read", {"obj": obj},
                span=span, **self._config()
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        best = max(replies.values(), key=lambda r: r["lc"])
        self._lc_floor = self._lc_floor.merge(best["lc"])
        if span is not None:
            span.finish(status="ok", server=best.src)
        return ReadResult(
            key=obj,
            value=best["value"],
            lc=best["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
            server=best.src,
        )

    def write(self, obj: str, value: Any, parent=None):
        start = self.sim.now
        lc = self._next_lc()
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("write", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            yield from qrpc(
                self, self.system, WRITE, "rowa_write",
                {"obj": obj, "value": value, "lc": lc},
                span=span, **self._config(),
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        if span is not None:
            span.finish(status="ok", lc=str(lc))
        return WriteResult(
            key=obj,
            value=value,
            lc=lc,
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
        )


class RowaCluster:
    """Handles to a ROWA deployment."""

    def __init__(self, sim, network, servers, system, qrpc_config) -> None:
        self.sim = sim
        self.network = network
        self.servers = servers
        self.system = system
        self.qrpc_config = qrpc_config

    def client(self, node_id: str, prefer: Optional[str] = None) -> RowaClient:
        return RowaClient(
            self.sim, self.network, node_id, self.system,
            qrpc_config=self.qrpc_config, prefer=prefer,
        )

    def server(self, node_id: str) -> RowaServer:
        return next(s for s in self.servers if s.node_id == node_id)


def build_rowa_cluster(
    sim: Simulator,
    network: Network,
    server_ids: Sequence[str],
    qrpc_config: Optional[Dict[str, Any]] = None,
) -> RowaCluster:
    """Build a synchronous ROWA deployment over *server_ids*."""
    system = QuorumSpec(kind="rowa").build(server_ids)
    servers = [RowaServer(sim, network, node_id) for node_id in server_ids]
    return RowaCluster(sim, network, servers, system, dict(qrpc_config or {}))
