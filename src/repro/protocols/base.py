"""Shared pieces for the baseline replication protocols.

Every baseline exposes the same client surface as DQVL — ``read(obj)``
and ``write(obj, value)`` generator methods returning
:class:`~repro.types.ReadResult` / :class:`~repro.types.WriteResult` — so
the workload harness and the consistency checker drive all protocols
identically.

Write ordering in the baselines uses totally ordered logical clocks.
Where the paper's prototype would use real-time timestamps (ROWA,
ROWA-Async), we derive the clock from the writer's local drifting clock
plus the node id as a tiebreaker; with the drift bounds used in the
experiments this orders sequential writes correctly, and concurrent
writes may be ordered either way — exactly what regular (or weaker)
semantics permits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..sim.clock import DriftingClock
from ..sim.kernel import Simulator
from ..sim.network import Network
from ..sim.node import Node
from ..types import ZERO_LC, LogicalClock

__all__ = ["VersionedStore", "StoreServer", "lamport_from_clock"]


def lamport_from_clock(clock_reading: float, node_id: str) -> LogicalClock:
    """A logical clock derived from a real-time reading (microsecond
    resolution) — the timestamping scheme of the ROWA-family baselines."""
    return LogicalClock(int(clock_reading * 1000), node_id)


class VersionedStore:
    """A last-writer-wins object store keyed by logical clock."""

    def __init__(self) -> None:
        self._data: Dict[str, Tuple[Any, LogicalClock]] = {}

    def get(self, obj: str) -> Tuple[Any, LogicalClock]:
        """Current (value, clock); ``(None, ZERO_LC)`` when unwritten."""
        return self._data.get(obj, (None, ZERO_LC))

    def apply(self, obj: str, value: Any, lc: LogicalClock) -> bool:
        """Install (value, lc) if it is newer; returns True when applied."""
        _current, current_lc = self.get(obj)
        if lc > current_lc:
            self._data[obj] = (value, lc)
            return True
        return False

    def items(self):
        return self._data.items()

    def keys(self):
        return self._data.keys()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, obj: str) -> bool:
        return obj in self._data


class StoreServer(Node):
    """A replica server holding a :class:`VersionedStore`.

    Subclasses add protocol-specific handlers; the store survives
    crash/recovery (stable storage), matching the availability model in
    which an outage is an inability to communicate, not data loss.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        clock: Optional[DriftingClock] = None,
    ) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.store = VersionedStore()
        self.reads_served = 0
        self.writes_served = 0
